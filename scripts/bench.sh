#!/usr/bin/env bash
# Performance tracking: the criterion wall-clock benches, then the
# machine-readable sweep/build/solver/online measurement that (re)writes
# BENCH_sweep.json and BENCH_dynamic.json at the workspace root, and the
# telemetry overhead gate that writes BENCH_obs_overhead.json (fails when
# enabling telemetry costs more than its bound — 2% by default, see
# DMRA_OBS_OVERHEAD_BOUND_PCT). Extra arguments are forwarded to
# `cargo bench` (e.g. a bench name filter).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p dmra-bench "$@"
cargo run --release -p dmra-bench --bin figures -- bench
cargo run --release -p dmra-bench --bin figures -- obs_overhead
