#!/usr/bin/env bash
# Performance tracking: the criterion wall-clock benches, then the
# machine-readable sweep/build/solver/online measurement that (re)writes
# BENCH_sweep.json and BENCH_dynamic.json at the workspace root, the
# event-engine gate that writes BENCH_dynamic_event.json (fails when the
# event engine's low-load speedup over the epoch loop drops below its
# bound — 5x by default, see DMRA_EVENT_SPEEDUP_MIN), the link-batch
# gate that writes BENCH_linkbatch.json (fails when the batched kernel /
# row-cached mobility loop drops below its bound — 1.5x by default, see
# DMRA_LINKBATCH_SPEEDUP_MIN), the shard gate that writes
# BENCH_shard.json (asserts sharded == unsharded outcomes, then fails
# when 4 shards beat 1 shard by less than DMRA_SHARD_SPEEDUP_MIN — 2x by
# default — on hosts with >= 4 hardware threads; recorded as skipped on
# smaller hosts), the component-solve gate that writes BENCH_solve.json
# (asserts component-decomposed == monolithic DMRA outcomes, then fails
# when 4 solve threads beat the monolithic path by less than
# DMRA_SOLVE_SPEEDUP_MIN — 1.5x by default — on hosts with >= 4 hardware
# threads; skipped likewise), the telemetry overhead gate that writes
# BENCH_obs_overhead.json (fails when enabling telemetry costs more than
# its bound — 2% by default, see DMRA_OBS_OVERHEAD_BOUND_PCT), and the
# protocol degradation gate that writes BENCH_proto.json (asserts the
# fault-free protocol-backed engine bit-identical to the incremental
# engine before any timing, then sweeps a drop x delay x crash grid and
# fails when worst-case profit loss exceeds
# DMRA_PROTO_MAX_PROFIT_LOSS_PCT — 60% by default), and the delta-solve
# gate that writes BENCH_delta.json (asserts `--solve delta` outcomes
# bit-identical on the 90%-stationary island mobility loop and the
# metro churn loop before timing, then fails when either speedup over
# the scratch epoch loop drops below DMRA_DELTA_SPEEDUP_MIN — 2x by
# default).
# Extra arguments are forwarded to `cargo bench` (e.g. a bench name
# filter).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p dmra-bench "$@"
cargo run --release -p dmra-bench --bin figures -- bench
cargo run --release -p dmra-bench --bin figures -- bench_event
cargo run --release -p dmra-bench --bin figures -- bench_linkbatch
cargo run --release -p dmra-bench --bin figures -- bench_shard
cargo run --release -p dmra-bench --bin figures -- bench_solve
cargo run --release -p dmra-bench --bin figures -- bench_proto
cargo run --release -p dmra-bench --bin figures -- bench_delta
cargo run --release -p dmra-bench --bin figures -- obs_overhead
