#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and the whole-workspace
# test suite. CI and pre-commit should both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy -q --workspace --all-targets -- -D warnings
cargo test --workspace -q
# The telemetry compile-out configuration must keep building: every
# dmra-obs dependent forwards a `telemetry` feature, and this catches a
# crate growing an unconditional dependency on instrumented APIs.
cargo build -q --workspace --no-default-features

# Flight-recorder + /metrics smoke: run the dynamic simulator with a JSONL
# flight record and a live metrics endpoint, scrape the endpoint mid-run
# over bash's /dev/tcp (no curl in the gate), then validate the record's
# schema. The long horizon keeps the run alive for a few seconds so the
# scrape genuinely happens while epochs are still being recorded.
cargo build -q -p dmra-cli
record="$(mktemp /tmp/dmra-smoke-XXXXXX.jsonl)"
stderr_log="$(mktemp /tmp/dmra-smoke-XXXXXX.log)"
proto_record="$(mktemp /tmp/dmra-smoke-proto-XXXXXX.jsonl)"
delta_record="$(mktemp /tmp/dmra-smoke-delta-XXXXXX.jsonl)"
delta_base="$(mktemp /tmp/dmra-smoke-deltabase-XXXXXX.jsonl)"
trap 'rm -f "$record" "$stderr_log" "$proto_record" "$delta_record" "$delta_base"' EXIT
./target/debug/dmra dynamic --rate 120 --epochs 8000 \
    --record "$record" --metrics-addr 127.0.0.1:0 \
    >/dev/null 2>"$stderr_log" &
smoke_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's|.*serving metrics on http://\([0-9.:]*\)/metrics.*|\1|p' "$stderr_log" | head -n1)"
    [[ -n "$addr" ]] && break
    kill -0 "$smoke_pid" 2>/dev/null || { echo "smoke run exited before binding the metrics server" >&2; cat "$stderr_log" >&2; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "metrics server address never appeared on stderr" >&2; cat "$stderr_log" >&2; exit 1; }

scrape=""
for _ in $(seq 1 20); do
    scrape="$(exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}" \
        && printf 'GET /metrics HTTP/1.0\r\nHost: %s\r\n\r\n' "$addr" >&3 \
        && cat <&3; exec 3<&- 3>&-)" || scrape=""
    grep -q '^# TYPE ' <<<"$scrape" && break
    sleep 0.1
done
grep -q '^HTTP/1.0 200 OK' <<<"$scrape" || { echo "metrics scrape did not return 200" >&2; exit 1; }
grep -q '^# TYPE dmra_' <<<"$scrape" || { echo "metrics scrape carried no dmra_ series" >&2; exit 1; }
grep -Eq '^dmra_sim_epochs(_total)? [1-9]' <<<"$scrape" || { echo "mid-run scrape saw no epoch progress" >&2; exit 1; }

wait "$smoke_pid" || { echo "smoke run failed" >&2; cat "$stderr_log" >&2; exit 1; }
[[ -s "$record" ]] || { echo "flight record $record is empty" >&2; exit 1; }
bad=$(grep -cv '^{"schema": "dmra-flight/1", "stream": "sim.epoch", "index": [0-9]*, "det": {.*}, "aux": {.*}}$' "$record" || true)
[[ "$bad" -eq 0 ]] || { echo "$bad flight-record lines failed schema validation" >&2; head -n3 "$record" >&2; exit 1; }
[[ "$(wc -l <"$record")" -eq 8000 ]] || { echo "expected 8000 flight records, got $(wc -l <"$record")" >&2; exit 1; }
grep -q '"digest": ' "$record" || { echo "flight records carry no outcome digest" >&2; exit 1; }
echo "flight-recorder smoke OK ($(wc -l <"$record") records, scraped $addr mid-run)"

# Protocol-engine smoke: the message-passing engine under 10% loss still
# writes a schema-valid flight record — per-epoch `sim.epoch` lines (with
# the degradation aux fields) interleaved with the round engine's
# per-round `proto.round` lines, both through the process-global slot.
./target/debug/dmra dynamic --engine proto --drop 10 --rate 20 --epochs 40 \
    --record "$proto_record" >/dev/null
[[ -s "$proto_record" ]] || { echo "proto flight record $proto_record is empty" >&2; exit 1; }
bad=$(grep -cv '^{"schema": "dmra-flight/1", "stream": "\(sim\.epoch\|proto\.round\)", "index": [0-9]*, "det": {.*}, "aux": {.*}}$' "$proto_record" || true)
[[ "$bad" -eq 0 ]] || { echo "$bad proto flight-record lines failed schema validation" >&2; head -n3 "$proto_record" >&2; exit 1; }
[[ "$(grep -c '"stream": "sim.epoch"' "$proto_record")" -eq 40 ]] || { echo "expected 40 sim.epoch records in the proto run" >&2; exit 1; }
grep -q '"stream": "proto.round"' "$proto_record" || { echo "proto run recorded no proto.round stream" >&2; exit 1; }
grep -q '"proto_dropped":' "$proto_record" || { echo "proto epochs carry no degradation aux fields" >&2; exit 1; }
grep -q '"oracle_profit_gap":' "$proto_record" || { echo "proto epochs carry no oracle gap" >&2; exit 1; }
echo "proto-engine smoke OK ($(wc -l <"$proto_record") records)"

# Delta-solve smoke: the cross-epoch delta solver must leave an epoch
# digest trail bit-identical to the incremental engine's default solve
# path — same workload, same flight-record schema, only the solver
# differs. The nondeterministic "aux" halves (wall-clock timings) are
# stripped before comparing.
./target/debug/dmra dynamic --rate 40 --epochs 200 --solve delta \
    --record "$delta_record" >/dev/null
./target/debug/dmra dynamic --rate 40 --epochs 200 \
    --record "$delta_base" >/dev/null
[[ "$(wc -l <"$delta_record")" -eq 200 ]] || { echo "expected 200 delta flight records, got $(wc -l <"$delta_record")" >&2; exit 1; }
cmp -s <(sed 's/, "aux": {.*}}$//' "$delta_record") \
       <(sed 's/, "aux": {.*}}$//' "$delta_base") \
    || { echo "--solve delta epoch digests diverged from the incremental engine" >&2; exit 1; }
echo "delta-solve smoke OK (200 epoch digests identical)"
