#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and the whole-workspace
# test suite. CI and pre-commit should both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy -q --workspace --all-targets -- -D warnings
cargo test --workspace -q
# The telemetry compile-out configuration must keep building: every
# dmra-obs dependent forwards a `telemetry` feature, and this catches a
# crate growing an unconditional dependency on instrumented APIs.
cargo build -q --workspace --no-default-features
