//! The BS price rule of Eqs. (9)–(10) and the constraint-(16) validator.

use dmra_types::{Error, Meters, Money, Result, SpSpec};
use serde::{Deserialize, Serialize};

/// Distances below one meter are clamped before exponentiation: `0^σ = 0`
/// would make a co-located BS *cheaper* than the base price, which the
/// model does not intend.
const MIN_PRICE_DISTANCE_M: f64 = 1.0;

/// Constants of the pricing rule.
///
/// The paper fixes `σ = 0.01` and sweeps `ι ∈ {1.1, 2}`; `b` and the SP
/// constants `m_k`, `m_k^o` are never given numerically, so we default them
/// to values satisfying constraint (16) (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingConfig {
    /// `b`: base price of one CRU.
    pub base_price: Money,
    /// `ι`: markup on the computing term when UE and BS belong to
    /// different SPs. Must exceed 1.
    pub cross_sp_markup: f64,
    /// `σ`: exponent of the distance (transmission-cost) term.
    pub distance_exponent: f64,
}

impl PricingConfig {
    /// The defaults used throughout the figures: `b = 2`, `ι = 2`,
    /// `σ = 0.01` (see DESIGN.md §2 for how `b` was chosen).
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            base_price: Money::new(2.0),
            cross_sp_markup: 2.0,
            distance_exponent: 0.01,
        }
    }

    /// Returns a copy with a different `ι` (the knob Figs. 2–5 sweep).
    #[must_use]
    pub fn with_markup(mut self, iota: f64) -> Self {
        self.cross_sp_markup = iota;
        self
    }

    /// Checks the structural requirements: `b > 0`, `ι > 1`, `σ ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.base_price.get() <= 0.0 {
            return Err(Error::InvalidConfig(format!(
                "base price b must be positive, got {}",
                self.base_price
            )));
        }
        if self.cross_sp_markup <= 1.0 {
            return Err(Error::InvalidConfig(format!(
                "cross-SP markup ι must exceed 1, got {}",
                self.cross_sp_markup
            )));
        }
        if self.distance_exponent < 0.0 {
            return Err(Error::InvalidConfig(format!(
                "distance exponent σ must be non-negative, got {}",
                self.distance_exponent
            )));
        }
        Ok(())
    }

    /// `p_{i,u}`: the per-CRU price BS `i` charges for UE `u`
    /// (Eqs. (9)–(10)).
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmra_econ::PricingConfig;
    /// # use dmra_types::Meters;
    /// let p = PricingConfig::paper_defaults();
    /// let same = p.bs_cru_price(true, Meters::new(300.0));
    /// // b + 300^0.01·b ≈ 2 + 2.1174 = 4.1174
    /// assert!((same.get() - 4.1174).abs() < 1e-3);
    /// let cross = p.bs_cru_price(false, Meters::new(300.0));
    /// // ι·b + 300^0.01·b ≈ 4 + 2.1174 = 6.1174
    /// assert!((cross.get() - 6.1174).abs() < 1e-3);
    /// ```
    #[must_use]
    pub fn bs_cru_price(&self, same_sp: bool, distance: Meters) -> Money {
        let b = self.base_price.get();
        let computing = if same_sp { b } else { self.cross_sp_markup * b };
        let d = distance.get().max(MIN_PRICE_DISTANCE_M);
        let transmission = d.powf(self.distance_exponent) * b;
        Money::new(computing + transmission)
    }

    /// The most any BS can charge within `max_distance`: the cross-SP price
    /// at the longest possible link.
    #[must_use]
    pub fn worst_case_price(&self, max_distance: Meters) -> Money {
        self.bs_cru_price(false, max_distance)
    }

    /// Validates constraint (16) — `m_k > p_{i,u} + m_k^o` for every SP
    /// `k` and every price reachable within `max_distance`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnprofitablePricing`] naming the first SP whose
    /// margin is insufficient.
    pub fn validate_margin(&self, sps: &[SpSpec], max_distance: Meters) -> Result<()> {
        let worst = self.worst_case_price(max_distance);
        for sp in sps {
            if sp.gross_margin() <= worst {
                return Err(Error::UnprofitablePricing {
                    sp: sp.id,
                    detail: format!(
                        "worst-case BS price {worst} at {max_distance} \
                         but m_k - m_k^o = {}",
                        sp.gross_margin()
                    ),
                });
            }
        }
        Ok(())
    }
}

impl Default for PricingConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmra_types::SpId;
    use proptest::prelude::*;

    #[test]
    fn same_sp_is_always_cheaper() {
        let p = PricingConfig::paper_defaults();
        for d in [1.0, 50.0, 300.0, 1200.0] {
            let d = Meters::new(d);
            assert!(p.bs_cru_price(true, d) < p.bs_cru_price(false, d));
        }
    }

    #[test]
    fn price_difference_is_exactly_the_markup() {
        let p = PricingConfig::paper_defaults();
        let d = Meters::new(420.0);
        let gap = p.bs_cru_price(false, d) - p.bs_cru_price(true, d);
        // (ι − 1)·b = 2.0
        assert!((gap.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_iota_shrinks_cross_sp_penalty() {
        let hi = PricingConfig::paper_defaults(); // ι = 2
        let lo = PricingConfig::paper_defaults().with_markup(1.1);
        let d = Meters::new(300.0);
        assert!(lo.bs_cru_price(false, d) < hi.bs_cru_price(false, d));
        assert_eq!(lo.bs_cru_price(true, d), hi.bs_cru_price(true, d));
    }

    #[test]
    fn price_grows_with_distance() {
        let p = PricingConfig::paper_defaults();
        let near = p.bs_cru_price(true, Meters::new(10.0));
        let far = p.bs_cru_price(true, Meters::new(1000.0));
        assert!(far > near);
    }

    #[test]
    fn zero_distance_is_clamped() {
        let p = PricingConfig::paper_defaults();
        assert_eq!(
            p.bs_cru_price(true, Meters::new(0.0)),
            p.bs_cru_price(true, Meters::new(1.0))
        );
    }

    #[test]
    fn validate_rejects_bad_constants() {
        let mut p = PricingConfig::paper_defaults();
        p.cross_sp_markup = 1.0;
        assert!(p.validate().is_err());
        let mut p = PricingConfig::paper_defaults();
        p.base_price = Money::new(0.0);
        assert!(p.validate().is_err());
        let mut p = PricingConfig::paper_defaults();
        p.distance_exponent = -0.5;
        assert!(p.validate().is_err());
        assert!(PricingConfig::paper_defaults().validate().is_ok());
    }

    #[test]
    fn margin_validation_accepts_paper_defaults() {
        let sps = vec![SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0))];
        let p = PricingConfig::paper_defaults();
        assert!(p.validate_margin(&sps, Meters::new(1700.0)).is_ok());
    }

    #[test]
    fn margin_validation_rejects_thin_margin() {
        let sps = vec![SpSpec::new(SpId::new(3), Money::new(3.0), Money::new(1.0))];
        let p = PricingConfig::paper_defaults();
        let err = p.validate_margin(&sps, Meters::new(1700.0)).unwrap_err();
        assert!(err.to_string().contains("sp3"), "{err}");
    }

    proptest! {
        #[test]
        fn prop_cross_sp_never_cheaper(
            d in 0.0f64..5000.0,
            iota in 1.01f64..10.0,
            sigma in 0.0f64..1.0,
        ) {
            let p = PricingConfig {
                base_price: Money::new(1.0),
                cross_sp_markup: iota,
                distance_exponent: sigma,
            };
            let d = Meters::new(d);
            prop_assert!(p.bs_cru_price(false, d) > p.bs_cru_price(true, d));
        }

        #[test]
        fn prop_price_monotone_in_distance(
            d1 in 1.0f64..5000.0,
            d2 in 1.0f64..5000.0,
        ) {
            let p = PricingConfig::paper_defaults();
            if d1 <= d2 {
                prop_assert!(
                    p.bs_cru_price(true, Meters::new(d1))
                        <= p.bs_cru_price(true, Meters::new(d2))
                );
            }
        }
    }
}
