//! Pricing and SP utility accounting (Sections III-D and IV of the paper).
//!
//! Money flows in the model: UEs pay their SP `m_k` per CRU; the SP pays
//! the serving BS `p_{i,u}` per CRU and bears an overhead `m_k^o` per CRU.
//! The BS price (Eqs. (9)–(10)) depends on whether UE and BS share an SP
//! and on their distance:
//!
//! ```text
//! p_{i,u} = b + d^σ·b        same SP
//! p_{i,u} = ι·b + d^σ·b      different SPs   (ι > 1)
//! ```
//!
//! The MEC-layer utility of SP `k` (Eqs. (5)–(8)) sums over its
//! edge-served subscribers `U_k` only; cloud-forwarded tasks earn nothing
//! at the MEC layer. Constraint (16), `m_k > p_{i,u} + m_k^o`, guarantees
//! every edge assignment is profitable; [`PricingConfig::validate_margin`]
//! checks it against the worst-case link distance at scenario build time.
//!
//! # Examples
//!
//! ```
//! use dmra_econ::{PricingConfig, ProfitLedger};
//! use dmra_types::{Cru, Meters, Money, SpId, SpSpec};
//!
//! let pricing = PricingConfig::paper_defaults(); // b = 2, ι = 2, σ = 0.01
//! let own = pricing.bs_cru_price(true, Meters::new(300.0));
//! let rival = pricing.bs_cru_price(false, Meters::new(300.0));
//! assert!(rival > own); // using another SP's BS costs more
//!
//! let sps = vec![SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0))];
//! let mut ledger = ProfitLedger::new(&sps);
//! ledger.record_edge_service(SpId::new(0), Cru::new(4), own);
//! assert!(ledger.report().total_profit().get() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ledger;
mod pricing;

pub use ledger::{ProfitLedger, ProfitReport, SpProfit};
pub use pricing::PricingConfig;
