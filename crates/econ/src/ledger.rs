//! The SP utility ledger implementing Eqs. (5)–(8).

use dmra_types::{Cru, Money, SpId, SpSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-SP accumulator of the three utility terms.
///
/// `W_k = W_k^r − W_k^B − W_k^S` where, over the SP's edge-served
/// subscribers `U_k`:
///
/// * `W_k^r = Σ c_j^u · m_k` — subscriber revenue (Eq. (6)),
/// * `W_k^B = Σ a_{u,i} · p_{i,u} · c_j^u` — payments to BSs (Eq. (7)),
/// * `W_k^S = Σ c_j^u · m_k^o` — other serving costs (Eq. (8)).
///
/// Cloud-forwarded tasks are *not* part of `U_k` and are recorded only as
/// counters for the traffic-load metric.
#[derive(Debug, Clone)]
pub struct ProfitLedger {
    sps: Vec<SpSpec>,
    revenue: Vec<Money>,
    bs_payment: Vec<Money>,
    other_cost: Vec<Money>,
    edge_served: Vec<u64>,
    cloud_forwarded: Vec<u64>,
}

impl ProfitLedger {
    /// Creates an empty ledger for the given SPs.
    ///
    /// # Panics
    ///
    /// Panics if SP ids are not the dense range `0..sps.len()` — the ledger
    /// indexes its accumulators by id.
    #[must_use]
    pub fn new(sps: &[SpSpec]) -> Self {
        for (i, sp) in sps.iter().enumerate() {
            assert!(
                sp.id.as_usize() == i,
                "SP ids must be dense and ordered, found {} at position {i}",
                sp.id
            );
        }
        let n = sps.len();
        Self {
            sps: sps.to_vec(),
            revenue: vec![Money::new(0.0); n],
            bs_payment: vec![Money::new(0.0); n],
            other_cost: vec![Money::new(0.0); n],
            edge_served: vec![0; n],
            cloud_forwarded: vec![0; n],
        }
    }

    /// Records one UE of SP `sp` served at the edge for `cru` CRUs at BS
    /// price `bs_price` per CRU.
    ///
    /// # Panics
    ///
    /// Panics if `sp` is not one of the ledger's SPs.
    pub fn record_edge_service(&mut self, sp: SpId, cru: Cru, bs_price: Money) {
        let k = sp.as_usize();
        let spec = self.sps[k];
        self.revenue[k] += spec.cru_price * cru;
        self.bs_payment[k] += bs_price * cru;
        self.other_cost[k] += spec.other_cost * cru;
        self.edge_served[k] += 1;
    }

    /// Records one UE of SP `sp` forwarded to the remote cloud (no
    /// MEC-layer profit; counted for the forwarded-traffic metric).
    ///
    /// # Panics
    ///
    /// Panics if `sp` is not one of the ledger's SPs.
    pub fn record_cloud_forward(&mut self, sp: SpId) {
        self.cloud_forwarded[sp.as_usize()] += 1;
    }

    /// Produces the immutable profit report.
    #[must_use]
    pub fn report(&self) -> ProfitReport {
        let per_sp = self
            .sps
            .iter()
            .enumerate()
            .map(|(k, sp)| SpProfit {
                sp: sp.id,
                revenue: self.revenue[k],
                bs_payment: self.bs_payment[k],
                other_cost: self.other_cost[k],
                edge_served: self.edge_served[k],
                cloud_forwarded: self.cloud_forwarded[k],
            })
            .collect();
        ProfitReport { per_sp }
    }
}

/// The utility breakdown of one SP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpProfit {
    /// The SP this row describes.
    pub sp: SpId,
    /// `W_k^r`: revenue from subscribers.
    pub revenue: Money,
    /// `W_k^B`: payments to BSs.
    pub bs_payment: Money,
    /// `W_k^S`: other serving costs.
    pub other_cost: Money,
    /// Number of subscribers served at the edge (`|U_k|`).
    pub edge_served: u64,
    /// Number of subscribers forwarded to the remote cloud.
    pub cloud_forwarded: u64,
}

impl SpProfit {
    /// `W_k`: the SP's MEC-layer profit (Eq. (5)).
    #[must_use]
    pub fn profit(&self) -> Money {
        self.revenue - self.bs_payment - self.other_cost
    }
}

/// The full profit report across SPs — the quantity Figs. 2–6 plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfitReport {
    /// One row per SP, ordered by id.
    pub per_sp: Vec<SpProfit>,
}

impl ProfitReport {
    /// `Σ_k W_k`: the TPM objective (Eq. (11)).
    #[must_use]
    pub fn total_profit(&self) -> Money {
        self.per_sp.iter().map(SpProfit::profit).sum()
    }

    /// Total UEs served at the edge across SPs.
    #[must_use]
    pub fn total_edge_served(&self) -> u64 {
        self.per_sp.iter().map(|p| p.edge_served).sum()
    }

    /// Total UEs forwarded to the remote cloud across SPs.
    #[must_use]
    pub fn total_cloud_forwarded(&self) -> u64 {
        self.per_sp.iter().map(|p| p.cloud_forwarded).sum()
    }
}

impl fmt::Display for ProfitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>12} {:>12} {:>12} {:>12} {:>6} {:>6}",
            "sp", "revenue", "bs_payment", "other_cost", "profit", "edge", "cloud"
        )?;
        for p in &self.per_sp {
            writeln!(
                f,
                "{:<6} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>6} {:>6}",
                p.sp.to_string(),
                p.revenue.get(),
                p.bs_payment.get(),
                p.other_cost.get(),
                p.profit().get(),
                p.edge_served,
                p.cloud_forwarded
            )?;
        }
        write!(f, "total profit: {:.2}", self.total_profit().get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sps(n: u32) -> Vec<SpSpec> {
        (0..n)
            .map(|k| SpSpec::new(SpId::new(k), Money::new(10.0), Money::new(1.0)))
            .collect()
    }

    #[test]
    fn edge_service_books_all_three_terms() {
        let mut ledger = ProfitLedger::new(&sps(2));
        ledger.record_edge_service(SpId::new(1), Cru::new(4), Money::new(2.5));
        let r = ledger.report();
        let p = r.per_sp[1];
        assert!((p.revenue.get() - 40.0).abs() < 1e-12); // 4 × m_k
        assert!((p.bs_payment.get() - 10.0).abs() < 1e-12); // 4 × 2.5
        assert!((p.other_cost.get() - 4.0).abs() < 1e-12); // 4 × m_k^o
        assert!((p.profit().get() - 26.0).abs() < 1e-12);
        assert_eq!(p.edge_served, 1);
        // The other SP is untouched.
        assert_eq!(r.per_sp[0].profit().get(), 0.0);
    }

    #[test]
    fn cloud_forward_earns_nothing() {
        let mut ledger = ProfitLedger::new(&sps(1));
        ledger.record_cloud_forward(SpId::new(0));
        let r = ledger.report();
        assert_eq!(r.total_profit().get(), 0.0);
        assert_eq!(r.total_cloud_forwarded(), 1);
        assert_eq!(r.total_edge_served(), 0);
    }

    #[test]
    fn totals_sum_over_sps() {
        let mut ledger = ProfitLedger::new(&sps(3));
        ledger.record_edge_service(SpId::new(0), Cru::new(3), Money::new(2.0));
        ledger.record_edge_service(SpId::new(2), Cru::new(5), Money::new(3.0));
        ledger.record_cloud_forward(SpId::new(1));
        let r = ledger.report();
        // sp0: 3·(10−1−2) = 21; sp2: 5·(10−1−3) = 30.
        assert!((r.total_profit().get() - 51.0).abs() < 1e-12);
        assert_eq!(r.total_edge_served(), 2);
        assert_eq!(r.total_cloud_forwarded(), 1);
    }

    #[test]
    fn constraint_16_implies_positive_profit_per_service() {
        // Any price below m_k − m_k^o yields positive per-UE profit.
        let mut ledger = ProfitLedger::new(&sps(1));
        ledger.record_edge_service(SpId::new(0), Cru::new(3), Money::new(8.99));
        assert!(ledger.report().total_profit().get() > 0.0);
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn non_dense_sp_ids_panic() {
        let bad = vec![SpSpec::new(SpId::new(1), Money::new(10.0), Money::new(1.0))];
        let _ = ProfitLedger::new(&bad);
    }

    #[test]
    fn display_contains_total() {
        let ledger = ProfitLedger::new(&sps(2));
        let text = ledger.report().to_string();
        assert!(text.contains("total profit: 0.00"));
        assert!(text.contains("sp0"));
    }

    proptest! {
        #[test]
        fn prop_profit_formula_matches_paper(
            services in proptest::collection::vec((0u32..3, 1u32..10, 1.0f64..8.0), 0..40)
        ) {
            let specs = sps(3);
            let mut ledger = ProfitLedger::new(&specs);
            let mut expected = 0.0;
            for (k, cru, price) in services {
                ledger.record_edge_service(SpId::new(k), Cru::new(cru), Money::new(price));
                expected += f64::from(cru) * (10.0 - 1.0 - price);
            }
            let total = ledger.report().total_profit().get();
            prop_assert!((total - expected).abs() < 1e-9 * (1.0 + expected.abs()));
        }
    }
}
