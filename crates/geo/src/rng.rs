//! Deterministic seed derivation.
//!
//! Every randomized component of the reproduction (BS placement, UE
//! placement, workload draws, shadowing, fault injection, the random
//! baseline) owns an independent RNG stream derived from the scenario's
//! master seed and a component label. Deriving sub-seeds — rather than
//! sharing one RNG — means adding or reordering components never perturbs
//! the draws of the others, which keeps figure data stable across refactors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a 64-bit value with the splitmix64 finalizer.
///
/// splitmix64 is the standard generator for seeding other PRNGs; its
/// finalizer is a high-quality 64→64 bit mixer with no fixed point at zero
/// once an odd constant is added.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a component sub-seed from a master seed and a label.
///
/// The label is folded in bytewise so that distinct labels give independent
/// streams even when the master seed is small (0, 1, 2, …).
///
/// # Examples
///
/// ```
/// # use dmra_geo::rng::sub_seed;
/// assert_ne!(sub_seed(42, "bs-placement"), sub_seed(42, "ue-placement"));
/// assert_eq!(sub_seed(42, "bs-placement"), sub_seed(42, "bs-placement"));
/// ```
#[must_use]
pub fn sub_seed(master: u64, label: &str) -> u64 {
    let mut h = splitmix64(master);
    for &b in label.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// Creates a seeded [`StdRng`] for a component.
#[must_use]
pub fn component_rng(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(sub_seed(master, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Low-entropy inputs should produce well-spread outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a >> 32, b >> 32);
    }

    #[test]
    fn sub_seed_separates_labels_and_masters() {
        assert_ne!(sub_seed(7, "a"), sub_seed(7, "b"));
        assert_ne!(sub_seed(7, "a"), sub_seed(8, "a"));
        // Labels that are prefixes of each other must still differ.
        assert_ne!(sub_seed(7, "ue"), sub_seed(7, "ue-placement"));
    }

    #[test]
    fn component_rng_streams_are_reproducible() {
        let mut r1 = component_rng(99, "workload");
        let mut r2 = component_rng(99, "workload");
        let a: [u64; 4] = std::array::from_fn(|_| r1.random());
        let b: [u64; 4] = std::array::from_fn(|_| r2.random());
        assert_eq!(a, b);
    }

    #[test]
    fn component_rng_streams_are_independent() {
        let mut r1 = component_rng(99, "workload");
        let mut r2 = component_rng(99, "shadowing");
        let a: u64 = r1.random();
        let b: u64 = r2.random();
        assert_ne!(a, b);
    }
}
