//! Deployment geometry for the DMRA reproduction.
//!
//! This crate turns the paper's two deployment styles into code:
//!
//! * **Regular placement** — BSs on a square grid with a configurable
//!   inter-site distance (the paper uses 300 m), see
//!   [`placement::regular_grid`].
//! * **Random placement** — BSs uniformly random in a rectangle (the paper
//!   uses 1200 m × 1200 m), see [`placement::uniform_random`].
//! * **Hexagonal placement** — a classical cellular lattice
//!   ([`placement::hex_grid`]), provided as an extension.
//!
//! UEs are placed uniformly at random or with a hotspot mixture
//! ([`placement::hotspot_mixture`]) to model popular areas. A uniform-grid
//! spatial index ([`GridIndex`]) answers "which BSs are within coverage
//! radius of this UE" queries in expected O(1) per candidate.
//!
//! All randomness is driven by explicit seeds through [`rng::sub_seed`], so
//! scenario generation is deterministic and component-independent.
//!
//! # Examples
//!
//! ```
//! use dmra_geo::{placement, GridIndex};
//! use dmra_types::{Meters, Rect};
//!
//! let sites = placement::regular_grid(5, 5, Meters::new(300.0), Rect::default());
//! assert_eq!(sites.len(), 25);
//!
//! let index = GridIndex::build(&sites, Meters::new(300.0));
//! let near = index.query_within(sites[12], Meters::new(301.0));
//! // The center site sees itself and its four grid neighbours.
//! assert_eq!(near.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod index;
pub mod placement;
pub mod rng;

pub use index::GridIndex;
pub use placement::SpAssignment;
