//! A uniform-grid spatial index over a fixed set of points.
//!
//! Coverage queries — "which BSs lie within radius `r` of UE `u`" — are the
//! hot inner loop of scenario construction (`|U| × |B|` pairs at up to 1000
//! UEs × 25 BSs in the paper, and far more in scaling benches). Bucketing
//! sites into cells of the query radius keeps candidate generation local.

use dmra_types::{Meters, Point};

/// A uniform-grid spatial index over an immutable slice of points.
///
/// Build once with [`GridIndex::build`], then run any number of
/// [`GridIndex::query_within`] radius queries. Indices returned by queries
/// refer to positions in the original slice.
///
/// Cells are stored dense (CSR over the points' cell bounding box) so a
/// query touches a handful of array slices rather than hashing cell
/// coordinates — the per-UE query is the hot inner loop of the online
/// engine's epoch rebuild.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    /// Cell-coordinate origin and extent of the dense grid.
    min_cx: i64,
    min_cy: i64,
    nx: usize,
    ny: usize,
    /// CSR layout: `entries[cell_start[c]..cell_start[c + 1]]` are the
    /// point indices in dense cell `c = row * nx + col`, ascending.
    cell_start: Vec<usize>,
    entries: Vec<usize>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index with the given cell size (typically the most common
    /// query radius).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    #[must_use]
    pub fn build(points: &[Point], cell_size: Meters) -> Self {
        assert!(
            cell_size.get() > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite"
        );
        let cell = cell_size.get();
        let coords: Vec<(i64, i64)> = points.iter().map(|&p| Self::cell_of(p, cell)).collect();
        let (min_cx, min_cy, nx, ny) = match (
            coords
                .iter()
                .map(|c| c.0)
                .min()
                .zip(coords.iter().map(|c| c.0).max()),
            coords
                .iter()
                .map(|c| c.1)
                .min()
                .zip(coords.iter().map(|c| c.1).max()),
        ) {
            (Some((x0, x1)), Some((y0, y1))) => (
                x0,
                y0,
                usize::try_from(x1 - x0 + 1).expect("grid width fits usize"),
                usize::try_from(y1 - y0 + 1).expect("grid height fits usize"),
            ),
            _ => (0, 0, 0, 0),
        };
        let n_cells = nx * ny;
        let mut cell_start = vec![0usize; n_cells + 1];
        for &(cx, cy) in &coords {
            let c = (cy - min_cy) as usize * nx + (cx - min_cx) as usize;
            cell_start[c + 1] += 1;
        }
        for c in 0..n_cells {
            cell_start[c + 1] += cell_start[c];
        }
        // Filling in point order keeps each cell's entries ascending.
        let mut cursor = cell_start.clone();
        let mut entries = vec![0usize; points.len()];
        for (i, &(cx, cy)) in coords.iter().enumerate() {
            let c = (cy - min_cy) as usize * nx + (cx - min_cx) as usize;
            entries[cursor[c]] = i;
            cursor[c] += 1;
        }
        Self {
            cell_size: cell,
            min_cx,
            min_cy,
            nx,
            ny,
            cell_start,
            entries,
            points: points.to_vec(),
        }
    }

    fn cell_of(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// The clamped dense-grid column/row ranges a radius-`r` query around
    /// `center` must visit, or `None` when the disk misses the grid.
    #[allow(clippy::similar_names)]
    fn cell_range(&self, center: Point, r: f64) -> Option<(usize, usize, usize, usize)> {
        if self.nx == 0 {
            return None;
        }
        let span = (r / self.cell_size).ceil() as i64;
        let (cx, cy) = Self::cell_of(center, self.cell_size);
        let x_lo = cx.saturating_sub(span).max(self.min_cx) - self.min_cx;
        let x_hi = cx
            .saturating_add(span)
            .min(self.min_cx + self.nx as i64 - 1)
            - self.min_cx;
        let y_lo = cy.saturating_sub(span).max(self.min_cy) - self.min_cy;
        let y_hi = cy
            .saturating_add(span)
            .min(self.min_cy + self.ny as i64 - 1)
            - self.min_cy;
        if x_lo > x_hi || y_lo > y_hi {
            return None;
        }
        #[allow(clippy::cast_sign_loss)]
        Some((x_lo as usize, x_hi as usize, y_lo as usize, y_hi as usize))
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no points are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the indices of all points within `radius` of `center`
    /// (inclusive), in ascending index order.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmra_geo::GridIndex;
    /// # use dmra_types::{Meters, Point};
    /// let pts = [Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(500.0, 0.0)];
    /// let idx = GridIndex::build(&pts, Meters::new(200.0));
    /// assert_eq!(idx.query_within(Point::new(0.0, 0.0), Meters::new(150.0)), vec![0, 1]);
    /// ```
    #[must_use]
    pub fn query_within(&self, center: Point, radius: Meters) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_within_into(center, radius, &mut out);
        out
    }

    /// [`GridIndex::query_within`] writing into a caller-owned buffer, for
    /// hot loops that run one query per UE and would otherwise allocate a
    /// fresh `Vec` each time.
    ///
    /// `out` is cleared first; on return it holds the indices of all points
    /// within `radius` of `center` (inclusive), in **ascending index
    /// order** — the same order a brute-force scan over the original slice
    /// would visit them, which is what lets callers substitute a pruned
    /// query for an exhaustive loop without reordering anything.
    pub fn query_within_into(&self, center: Point, radius: Meters, out: &mut Vec<usize>) {
        out.clear();
        let r = radius.get();
        if r < 0.0 {
            return;
        }
        self.for_each_within(center, r, |i, _| out.push(i));
        out.sort_unstable();
    }

    /// [`GridIndex::query_within_into`] carrying each match's exact
    /// distance — computed by the same `Point::distance` the caller would
    /// use, so hot loops that need the distance anyway (candidate link
    /// generation evaluates path loss at it) never compute it twice.
    ///
    /// `out` is cleared first; entries come out in ascending index order.
    pub fn query_within_dist_into(
        &self,
        center: Point,
        radius: Meters,
        out: &mut Vec<(usize, Meters)>,
    ) {
        out.clear();
        let r = radius.get();
        if r < 0.0 {
            return;
        }
        self.for_each_within(center, r, |i, d| out.push((i, d)));
        out.sort_unstable_by_key(|&(i, _)| i);
    }

    /// Counts the points within `radius` of `center` without allocating the
    /// index list — used for the paper's `f_u` statistic when only the count
    /// matters.
    #[must_use]
    pub fn count_within(&self, center: Point, radius: Meters) -> usize {
        let r = radius.get();
        if r < 0.0 {
            return 0;
        }
        let mut n = 0;
        self.for_each_within(center, r, |_, _| n += 1);
        n
    }

    /// Derives an index over the subset of points selected by `keep`,
    /// reusing this index's CSR layout: same cell size, same dense-grid
    /// origin and extents, entries filtered by the mask in one pass — no
    /// re-bucketing and no re-validation of the placement. Query results
    /// still refer to positions in the **parent's** original slice (the
    /// kept indices), so a subset query equals the parent query filtered
    /// to kept points; [`GridIndex::len`] keeps reporting the parent's
    /// point count. The shard runtime builds one subset per spatial shard
    /// (shard rectangle plus a coverage-radius halo).
    ///
    /// # Panics
    ///
    /// Panics if `keep.len()` differs from the number of indexed points.
    #[must_use]
    pub fn subset(&self, keep: &[bool]) -> Self {
        assert_eq!(
            keep.len(),
            self.points.len(),
            "keep mask must cover every indexed point"
        );
        let n_cells = self.nx * self.ny;
        let mut cell_start = Vec::with_capacity(n_cells + 1);
        cell_start.push(0usize);
        let mut entries = Vec::with_capacity(keep.iter().filter(|&&k| k).count());
        for c in 0..n_cells {
            entries.extend(
                self.entries[self.cell_start[c]..self.cell_start[c + 1]]
                    .iter()
                    .copied()
                    .filter(|&i| keep[i]),
            );
            cell_start.push(entries.len());
        }
        Self {
            cell_size: self.cell_size,
            min_cx: self.min_cx,
            min_cy: self.min_cy,
            nx: self.nx,
            ny: self.ny,
            cell_start,
            entries,
            points: self.points.clone(),
        }
    }

    /// Visits every point with `distance(center) ≤ r`, passing its index
    /// and exact distance, in cell order (not index order).
    ///
    /// A squared-distance cull with a bound nudged a few ULPs up rejects
    /// the bulk of out-of-range cell occupants before the exact (and
    /// comparatively costly) `hypot`; the cull can only pass extra
    /// near-boundary points, never drop one the exact predicate accepts,
    /// so the visited set is exactly the `distance ≤ r` set.
    fn for_each_within(&self, center: Point, r: f64, mut visit: impl FnMut(usize, Meters)) {
        let Some((x_lo, x_hi, y_lo, y_hi)) = self.cell_range(center, r) else {
            return;
        };
        let r2 = r * r * (1.0 + 1e-9);
        for row in y_lo..=y_hi {
            let base = row * self.nx;
            let from = self.cell_start[base + x_lo];
            let to = self.cell_start[base + x_hi + 1];
            for &i in &self.entries[from..to] {
                let p = self.points[i];
                let (dx, dy) = (p.x - center.x, p.y - center.y);
                if dx * dx + dy * dy <= r2 {
                    let d = center.distance(p);
                    if d.get() <= r {
                        visit(i, d);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::uniform_random;
    use crate::rng::component_rng;
    use dmra_types::Rect;
    use proptest::prelude::*;

    fn brute_force(points: &[Point], center: Point, radius: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(center).get() <= radius)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn query_matches_brute_force_on_random_points() {
        let mut rng = component_rng(11, "index");
        let pts = uniform_random(400, Rect::default(), &mut rng);
        let idx = GridIndex::build(&pts, Meters::new(150.0));
        for &(x, y, r) in &[
            (600.0, 600.0, 200.0),
            (0.0, 0.0, 500.0),
            (1200.0, 1200.0, 50.0),
            (300.0, 900.0, 0.0),
        ] {
            let c = Point::new(x, y);
            assert_eq!(idx.query_within(c, Meters::new(r)), brute_force(&pts, c, r));
        }
    }

    #[test]
    fn query_into_reuses_buffer_and_matches_query() {
        let mut rng = component_rng(13, "index");
        let pts = uniform_random(300, Rect::default(), &mut rng);
        let idx = GridIndex::build(&pts, Meters::new(120.0));
        let mut buf = vec![usize::MAX; 64]; // stale content must be cleared
        for &(x, y, r) in &[(100.0, 100.0, 250.0), (900.0, 400.0, 80.0), (0.0, 0.0, 0.0)] {
            let c = Point::new(x, y);
            idx.query_within_into(c, Meters::new(r), &mut buf);
            assert_eq!(buf, idx.query_within(c, Meters::new(r)));
            assert_eq!(buf, brute_force(&pts, c, r));
        }
    }

    #[test]
    fn distance_query_matches_query_and_recomputed_distances() {
        let mut rng = component_rng(17, "index");
        let pts = uniform_random(350, Rect::default(), &mut rng);
        let idx = GridIndex::build(&pts, Meters::new(300.0));
        let mut with_dist = Vec::new();
        for &(x, y, r) in &[
            (600.0, 600.0, 300.0),
            (0.0, 0.0, 450.0),
            (1199.0, 3.0, 120.0),
            (250.0, 980.0, 0.0),
        ] {
            let c = Point::new(x, y);
            idx.query_within_dist_into(c, Meters::new(r), &mut with_dist);
            let indices: Vec<usize> = with_dist.iter().map(|&(i, _)| i).collect();
            assert_eq!(indices, idx.query_within(c, Meters::new(r)));
            for &(i, d) in &with_dist {
                // Bit-identical to what the caller would compute itself.
                assert_eq!(d, c.distance(pts[i]), "carried distance differs for {i}");
            }
        }
    }

    #[test]
    fn count_matches_query_length() {
        let mut rng = component_rng(12, "index");
        let pts = uniform_random(200, Rect::default(), &mut rng);
        let idx = GridIndex::build(&pts, Meters::new(100.0));
        let c = Point::new(500.0, 700.0);
        assert_eq!(
            idx.count_within(c, Meters::new(333.0)),
            idx.query_within(c, Meters::new(333.0)).len()
        );
    }

    #[test]
    fn radius_is_inclusive() {
        let pts = [Point::new(0.0, 0.0), Point::new(300.0, 0.0)];
        let idx = GridIndex::build(&pts, Meters::new(300.0));
        assert_eq!(
            idx.query_within(Point::new(0.0, 0.0), Meters::new(300.0)),
            vec![0, 1]
        );
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = GridIndex::build(&[], Meters::new(100.0));
        assert!(idx.is_empty());
        assert!(idx
            .query_within(Point::new(0.0, 0.0), Meters::new(1e6))
            .is_empty());
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let pts = [Point::new(-250.0, -250.0), Point::new(250.0, 250.0)];
        let idx = GridIndex::build(&pts, Meters::new(100.0));
        assert_eq!(
            idx.query_within(Point::new(-240.0, -240.0), Meters::new(50.0)),
            vec![0]
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::build(&[], Meters::new(0.0));
    }

    #[test]
    fn subset_queries_match_filtered_full_index_queries() {
        let mut rng = component_rng(19, "index-subset");
        let pts = uniform_random(350, Rect::default(), &mut rng);
        let idx = GridIndex::build(&pts, Meters::new(150.0));
        // A few deterministic masks: every 3rd point, one half-plane, none.
        let masks: Vec<Vec<bool>> = vec![
            (0..pts.len()).map(|i| i % 3 == 0).collect(),
            pts.iter().map(|p| p.x < 600.0).collect(),
            vec![false; pts.len()],
        ];
        for keep in &masks {
            let sub = idx.subset(keep);
            assert_eq!(sub.len(), idx.len(), "subset reports the parent count");
            for &(x, y, r) in &[
                (600.0, 600.0, 200.0),
                (0.0, 0.0, 500.0),
                (1200.0, 300.0, 90.0),
                (300.0, 900.0, 0.0),
            ] {
                let c = Point::new(x, y);
                let expect: Vec<usize> = idx
                    .query_within(c, Meters::new(r))
                    .into_iter()
                    .filter(|&i| keep[i])
                    .collect();
                assert_eq!(sub.query_within(c, Meters::new(r)), expect);
                let mut with_dist = Vec::new();
                sub.query_within_dist_into(c, Meters::new(r), &mut with_dist);
                let indices: Vec<usize> = with_dist.iter().map(|&(i, _)| i).collect();
                assert_eq!(indices, expect);
                for &(i, d) in &with_dist {
                    assert_eq!(d, c.distance(pts[i]), "carried distance differs for {i}");
                }
            }
        }
    }

    #[test]
    fn subset_with_all_true_mask_behaves_like_the_parent() {
        let mut rng = component_rng(23, "index-subset");
        let pts = uniform_random(200, Rect::default(), &mut rng);
        let idx = GridIndex::build(&pts, Meters::new(300.0));
        let sub = idx.subset(&vec![true; pts.len()]);
        for &(x, y, r) in &[(100.0, 100.0, 400.0), (900.0, 400.0, 80.0)] {
            let c = Point::new(x, y);
            assert_eq!(
                sub.query_within(c, Meters::new(r)),
                idx.query_within(c, Meters::new(r))
            );
        }
    }

    #[test]
    fn subset_of_empty_index_is_empty() {
        let idx = GridIndex::build(&[], Meters::new(100.0));
        let sub = idx.subset(&[]);
        assert!(sub
            .query_within(Point::new(0.0, 0.0), Meters::new(1e6))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "keep mask")]
    fn subset_rejects_wrong_mask_length() {
        let pts = [Point::new(0.0, 0.0)];
        let _ = GridIndex::build(&pts, Meters::new(100.0)).subset(&[true, false]);
    }

    proptest! {
        #[test]
        fn prop_subset_equals_filtered_brute_force(
            seed in 0u64..100,
            n in 0usize..100,
            x in 0.0f64..1200.0,
            y in 0.0f64..1200.0,
            r in 0.0f64..900.0,
            modulus in 1usize..5,
        ) {
            let mut rng = component_rng(seed, "prop-index-subset");
            let pts = uniform_random(n, Rect::default(), &mut rng);
            let keep: Vec<bool> = (0..n).map(|i| i % modulus == 0).collect();
            let idx = GridIndex::build(&pts, Meters::new(150.0));
            let c = Point::new(x, y);
            let expect: Vec<usize> = brute_force(&pts, c, r)
                .into_iter()
                .filter(|&i| keep[i])
                .collect();
            prop_assert_eq!(idx.subset(&keep).query_within(c, Meters::new(r)), expect);
        }

        #[test]
        fn prop_index_equals_brute_force(
            seed in 0u64..200,
            n in 0usize..120,
            x in 0.0f64..1200.0,
            y in 0.0f64..1200.0,
            r in 0.0f64..900.0,
            cell in 20.0f64..600.0,
        ) {
            let mut rng = component_rng(seed, "prop-index");
            let pts = uniform_random(n, Rect::default(), &mut rng);
            let idx = GridIndex::build(&pts, Meters::new(cell));
            let c = Point::new(x, y);
            prop_assert_eq!(
                idx.query_within(c, Meters::new(r)),
                brute_force(&pts, c, r)
            );
        }
    }
}
