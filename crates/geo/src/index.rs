//! A uniform-grid spatial index over a fixed set of points.
//!
//! Coverage queries — "which BSs lie within radius `r` of UE `u`" — are the
//! hot inner loop of scenario construction (`|U| × |B|` pairs at up to 1000
//! UEs × 25 BSs in the paper, and far more in scaling benches). Bucketing
//! sites into cells of the query radius keeps candidate generation local.

use dmra_types::{Meters, Point};
use std::collections::HashMap;

/// A uniform-grid spatial index over an immutable slice of points.
///
/// Build once with [`GridIndex::build`], then run any number of
/// [`GridIndex::query_within`] radius queries. Indices returned by queries
/// refer to positions in the original slice.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index with the given cell size (typically the most common
    /// query radius).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    #[must_use]
    pub fn build(points: &[Point], cell_size: Meters) -> Self {
        assert!(
            cell_size.get() > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite"
        );
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            cells
                .entry(Self::cell_of(p, cell_size.get()))
                .or_default()
                .push(i);
        }
        Self {
            cell_size: cell_size.get(),
            cells,
            points: points.to_vec(),
        }
    }

    fn cell_of(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no points are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the indices of all points within `radius` of `center`
    /// (inclusive), in ascending index order.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmra_geo::GridIndex;
    /// # use dmra_types::{Meters, Point};
    /// let pts = [Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(500.0, 0.0)];
    /// let idx = GridIndex::build(&pts, Meters::new(200.0));
    /// assert_eq!(idx.query_within(Point::new(0.0, 0.0), Meters::new(150.0)), vec![0, 1]);
    /// ```
    #[must_use]
    pub fn query_within(&self, center: Point, radius: Meters) -> Vec<usize> {
        let r = radius.get();
        if r < 0.0 {
            return Vec::new();
        }
        let span = (r / self.cell_size).ceil() as i64;
        let (cx, cy) = Self::cell_of(center, self.cell_size);
        let mut out = Vec::new();
        for dx in -span..=span {
            for dy in -span..=span {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in bucket {
                        if self.points[i].distance(center).get() <= r {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Counts the points within `radius` of `center` without allocating the
    /// index list — used for the paper's `f_u` statistic when only the count
    /// matters.
    #[must_use]
    pub fn count_within(&self, center: Point, radius: Meters) -> usize {
        let r = radius.get();
        if r < 0.0 {
            return 0;
        }
        let span = (r / self.cell_size).ceil() as i64;
        let (cx, cy) = Self::cell_of(center, self.cell_size);
        let mut n = 0;
        for dx in -span..=span {
            for dy in -span..=span {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    n += bucket
                        .iter()
                        .filter(|&&i| self.points[i].distance(center).get() <= r)
                        .count();
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::uniform_random;
    use crate::rng::component_rng;
    use dmra_types::Rect;
    use proptest::prelude::*;

    fn brute_force(points: &[Point], center: Point, radius: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(center).get() <= radius)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn query_matches_brute_force_on_random_points() {
        let mut rng = component_rng(11, "index");
        let pts = uniform_random(400, Rect::default(), &mut rng);
        let idx = GridIndex::build(&pts, Meters::new(150.0));
        for &(x, y, r) in &[
            (600.0, 600.0, 200.0),
            (0.0, 0.0, 500.0),
            (1200.0, 1200.0, 50.0),
            (300.0, 900.0, 0.0),
        ] {
            let c = Point::new(x, y);
            assert_eq!(idx.query_within(c, Meters::new(r)), brute_force(&pts, c, r));
        }
    }

    #[test]
    fn count_matches_query_length() {
        let mut rng = component_rng(12, "index");
        let pts = uniform_random(200, Rect::default(), &mut rng);
        let idx = GridIndex::build(&pts, Meters::new(100.0));
        let c = Point::new(500.0, 700.0);
        assert_eq!(
            idx.count_within(c, Meters::new(333.0)),
            idx.query_within(c, Meters::new(333.0)).len()
        );
    }

    #[test]
    fn radius_is_inclusive() {
        let pts = [Point::new(0.0, 0.0), Point::new(300.0, 0.0)];
        let idx = GridIndex::build(&pts, Meters::new(300.0));
        assert_eq!(
            idx.query_within(Point::new(0.0, 0.0), Meters::new(300.0)),
            vec![0, 1]
        );
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = GridIndex::build(&[], Meters::new(100.0));
        assert!(idx.is_empty());
        assert!(idx
            .query_within(Point::new(0.0, 0.0), Meters::new(1e6))
            .is_empty());
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let pts = [Point::new(-250.0, -250.0), Point::new(250.0, 250.0)];
        let idx = GridIndex::build(&pts, Meters::new(100.0));
        assert_eq!(
            idx.query_within(Point::new(-240.0, -240.0), Meters::new(50.0)),
            vec![0]
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::build(&[], Meters::new(0.0));
    }

    proptest! {
        #[test]
        fn prop_index_equals_brute_force(
            seed in 0u64..200,
            n in 0usize..120,
            x in 0.0f64..1200.0,
            y in 0.0f64..1200.0,
            r in 0.0f64..900.0,
            cell in 20.0f64..600.0,
        ) {
            let mut rng = component_rng(seed, "prop-index");
            let pts = uniform_random(n, Rect::default(), &mut rng);
            let idx = GridIndex::build(&pts, Meters::new(cell));
            let c = Point::new(x, y);
            prop_assert_eq!(
                idx.query_within(c, Meters::new(r)),
                brute_force(&pts, c, r)
            );
        }
    }
}
