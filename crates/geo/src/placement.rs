//! BS and UE placement generators.
//!
//! The paper evaluates two BS deployments — a regular grid with 300 m
//! inter-site distance and uniform-random placement in a 1200 m × 1200 m
//! square — with 5 SPs deploying 5 BSs each. UEs are "distributed randomly
//! in the network"; we additionally provide a hotspot mixture to model the
//! "popular areas" the introduction motivates.

use dmra_types::{Meters, Point, Rect, SpId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How grid/random BS sites are divided among SPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SpAssignment {
    /// Site `s` belongs to SP `s mod n_sps`. On a regular grid this
    /// interleaves SPs so every neighbourhood mixes operators — the
    /// densely-overlapped multi-SP coverage the paper assumes.
    #[default]
    RoundRobin,
    /// Sites are assigned to SPs by a seeded random shuffle (balanced:
    /// each SP still gets the same number of sites).
    Shuffled,
}

impl SpAssignment {
    /// Produces the SP owning each of `n_sites` sites, split evenly among
    /// `n_sps` providers.
    ///
    /// # Panics
    ///
    /// Panics if `n_sps` is zero or `n_sites` is not a multiple of
    /// `n_sps` (the paper's 25 = 5 × 5 split is exact; uneven splits would
    /// silently bias per-SP profit).
    #[must_use]
    pub fn assign<R: Rng>(self, n_sites: usize, n_sps: u32, rng: &mut R) -> Vec<SpId> {
        assert!(n_sps > 0, "need at least one SP");
        assert!(
            n_sites.is_multiple_of(n_sps as usize),
            "sites ({n_sites}) must divide evenly among SPs ({n_sps})"
        );
        let mut owners: Vec<SpId> = (0..n_sites)
            .map(|s| SpId::new((s % n_sps as usize) as u32))
            .collect();
        if self == SpAssignment::Shuffled {
            // Fisher–Yates with the caller's RNG keeps this deterministic
            // under the scenario seed.
            for i in (1..owners.len()).rev() {
                let j = rng.random_range(0..=i);
                owners.swap(i, j);
            }
        }
        owners
    }
}

/// Places `rows × cols` sites on a square grid with the given inter-site
/// distance, centered inside `region`.
///
/// This is the paper's *regular* placement: 5 × 5 sites, 300 m apart.
///
/// # Examples
///
/// ```
/// # use dmra_geo::placement::regular_grid;
/// # use dmra_types::{Meters, Rect};
/// let sites = regular_grid(5, 5, Meters::new(300.0), Rect::default());
/// assert_eq!(sites.len(), 25);
/// // Neighbouring sites are exactly one inter-site distance apart.
/// let d = sites[0].distance(sites[1]);
/// assert!((d.get() - 300.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn regular_grid(rows: u32, cols: u32, isd: Meters, region: Rect) -> Vec<Point> {
    let center = region.center();
    let width = f64::from(cols.saturating_sub(1)) * isd.get();
    let height = f64::from(rows.saturating_sub(1)) * isd.get();
    let origin = Point::new(center.x - width / 2.0, center.y - height / 2.0);
    let mut sites = Vec::with_capacity((rows * cols) as usize);
    for r in 0..rows {
        for c in 0..cols {
            sites.push(Point::new(
                origin.x + f64::from(c) * isd.get(),
                origin.y + f64::from(r) * isd.get(),
            ));
        }
    }
    sites
}

/// Places `rows × cols` sites on a hexagonal lattice (odd rows shifted by
/// half the inter-site distance, row spacing `isd·√3/2`), centered inside
/// `region` — the classical cellular layout, provided as an extension
/// beyond the paper's square grid.
///
/// # Examples
///
/// ```
/// # use dmra_geo::placement::hex_grid;
/// # use dmra_types::{Meters, Rect};
/// let sites = hex_grid(3, 3, Meters::new(300.0), Rect::default());
/// assert_eq!(sites.len(), 9);
/// // Nearest neighbours across rows are exactly one ISD apart.
/// let d = sites[0].distance(sites[3]);
/// assert!((d.get() - 300.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn hex_grid(rows: u32, cols: u32, isd: Meters, region: Rect) -> Vec<Point> {
    let center = region.center();
    let row_spacing = isd.get() * 3f64.sqrt() / 2.0;
    let width = f64::from(cols.saturating_sub(1)) * isd.get();
    let height = f64::from(rows.saturating_sub(1)) * row_spacing;
    let origin = Point::new(center.x - width / 2.0, center.y - height / 2.0);
    let mut sites = Vec::with_capacity((rows * cols) as usize);
    for r in 0..rows {
        let shift = if r % 2 == 1 { isd.get() / 2.0 } else { 0.0 };
        for c in 0..cols {
            sites.push(Point::new(
                origin.x + f64::from(c) * isd.get() + shift,
                origin.y + f64::from(r) * row_spacing,
            ));
        }
    }
    sites
}

/// Places `n` sites uniformly at random inside `region`.
///
/// This is the paper's *random* placement (1200 m × 1200 m rectangle).
#[must_use]
pub fn uniform_random<R: Rng>(n: usize, region: Rect, rng: &mut R) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.random_range(region.min.x..=region.max.x),
                rng.random_range(region.min.y..=region.max.y),
            )
        })
        .collect()
}

/// Places `n` points with a hotspot mixture: with probability
/// `hotspot_fraction` a point is drawn from a Gaussian around a random
/// hotspot center (clamped to the region), otherwise uniformly.
///
/// Models the "popular areas" of the paper's introduction, where SPs
/// overlap their deployments. `std_dev` controls hotspot tightness.
///
/// # Panics
///
/// Panics if `hotspot_fraction` is outside `[0, 1]` or `centers` is empty
/// while `hotspot_fraction > 0`.
#[must_use]
pub fn hotspot_mixture<R: Rng>(
    n: usize,
    region: Rect,
    centers: &[Point],
    std_dev: Meters,
    hotspot_fraction: f64,
    rng: &mut R,
) -> Vec<Point> {
    assert!(
        (0.0..=1.0).contains(&hotspot_fraction),
        "hotspot_fraction must be within [0, 1]"
    );
    assert!(
        hotspot_fraction == 0.0 || !centers.is_empty(),
        "hotspot placement requires at least one center"
    );
    (0..n)
        .map(|_| {
            if rng.random_range(0.0..1.0) < hotspot_fraction {
                let c = centers[rng.random_range(0..centers.len())];
                let p = Point::new(
                    c.x + gaussian(rng) * std_dev.get(),
                    c.y + gaussian(rng) * std_dev.get(),
                );
                clamp_to(p, region)
            } else {
                Point::new(
                    rng.random_range(region.min.x..=region.max.x),
                    rng.random_range(region.min.y..=region.max.y),
                )
            }
        })
        .collect()
}

/// A standard-normal draw via Box–Muller (avoids pulling `rand_distr`).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random_range(0.0..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn clamp_to(p: Point, region: Rect) -> Point {
    Point::new(
        p.x.clamp(region.min.x, region.max.x),
        p.y.clamp(region.min.y, region.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::component_rng;
    use proptest::prelude::*;

    #[test]
    fn grid_is_centered_in_region() {
        let region = Rect::default(); // 1200 × 1200
        let sites = regular_grid(5, 5, Meters::new(300.0), region);
        let cx = sites.iter().map(|p| p.x).sum::<f64>() / sites.len() as f64;
        let cy = sites.iter().map(|p| p.y).sum::<f64>() / sites.len() as f64;
        assert!((cx - 600.0).abs() < 1e-9);
        assert!((cy - 600.0).abs() < 1e-9);
    }

    #[test]
    fn grid_single_site_sits_at_center() {
        let sites = regular_grid(1, 1, Meters::new(300.0), Rect::default());
        assert_eq!(sites.len(), 1);
        assert!((sites[0].x - 600.0).abs() < 1e-9);
    }

    #[test]
    fn grid_isd_is_exact_between_row_neighbours() {
        let sites = regular_grid(3, 4, Meters::new(250.0), Rect::default());
        assert_eq!(sites.len(), 12);
        // Row-major: sites[4] starts the second row.
        let d = sites[0].distance(sites[4]).get();
        assert!((d - 250.0).abs() < 1e-9);
    }

    #[test]
    fn hex_grid_geometry() {
        let sites = hex_grid(3, 3, Meters::new(300.0), Rect::default());
        assert_eq!(sites.len(), 9);
        // In-row neighbours: exactly one ISD.
        assert!((sites[0].distance(sites[1]).get() - 300.0).abs() < 1e-9);
        // Cross-row nearest neighbour (the shifted site): also one ISD.
        assert!((sites[0].distance(sites[3]).get() - 300.0).abs() < 1e-9);
        // Row spacing is isd·√3/2 ≈ 259.81 m.
        assert!((sites[3].y - sites[0].y - 259.807).abs() < 1e-2);
        // Centered: mean position is the region center.
        let cx = sites.iter().map(|p| p.x).sum::<f64>() / 9.0;
        assert!((cx - 600.0).abs() < 60.0); // odd-row shift skews slightly
    }

    #[test]
    fn hex_single_row_reduces_to_line() {
        let sites = hex_grid(1, 4, Meters::new(100.0), Rect::default());
        assert!(sites
            .windows(2)
            .all(|w| (w[0].distance(w[1]).get() - 100.0).abs() < 1e-9));
    }

    #[test]
    fn uniform_random_stays_in_region_and_is_seeded() {
        let region = Rect::default();
        let mut r1 = component_rng(5, "bs");
        let mut r2 = component_rng(5, "bs");
        let a = uniform_random(100, region, &mut r1);
        let b = uniform_random(100, region, &mut r2);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| region.contains(p)));
    }

    #[test]
    fn round_robin_assignment_interleaves() {
        let mut rng = component_rng(0, "assign");
        let owners = SpAssignment::RoundRobin.assign(10, 5, &mut rng);
        assert_eq!(owners[0], SpId::new(0));
        assert_eq!(owners[4], SpId::new(4));
        assert_eq!(owners[5], SpId::new(0));
    }

    #[test]
    fn shuffled_assignment_is_balanced() {
        let mut rng = component_rng(1, "assign");
        let owners = SpAssignment::Shuffled.assign(25, 5, &mut rng);
        for k in 0..5 {
            let count = owners.iter().filter(|o| o.index() == k).count();
            assert_eq!(count, 5, "sp{k} should own exactly 5 sites");
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_assignment_panics() {
        let mut rng = component_rng(0, "assign");
        let _ = SpAssignment::RoundRobin.assign(7, 5, &mut rng);
    }

    #[test]
    fn hotspot_mixture_respects_region() {
        let region = Rect::default();
        let centers = [Point::new(100.0, 100.0), Point::new(1100.0, 1100.0)];
        let mut rng = component_rng(3, "ue");
        let pts = hotspot_mixture(500, region, &centers, Meters::new(50.0), 0.7, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|&p| region.contains(p)));
    }

    #[test]
    fn hotspot_fraction_one_clusters_points() {
        let region = Rect::default();
        let centers = [Point::new(600.0, 600.0)];
        let mut rng = component_rng(4, "ue");
        let pts = hotspot_mixture(300, region, &centers, Meters::new(30.0), 1.0, &mut rng);
        let near = pts
            .iter()
            .filter(|p| p.distance(centers[0]).get() < 150.0)
            .count();
        // ~5 sigma: essentially all points should be near the hotspot.
        assert!(near > 290, "only {near}/300 points near hotspot");
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn hotspot_without_centers_panics() {
        let mut rng = component_rng(0, "ue");
        let _ = hotspot_mixture(10, Rect::default(), &[], Meters::new(10.0), 0.5, &mut rng);
    }

    proptest! {
        #[test]
        fn prop_uniform_points_inside_region(seed in 0u64..500, n in 1usize..200) {
            let region = Rect::default();
            let mut rng = component_rng(seed, "prop");
            let pts = uniform_random(n, region, &mut rng);
            prop_assert_eq!(pts.len(), n);
            prop_assert!(pts.iter().all(|&p| region.contains(p)));
        }

        #[test]
        fn prop_grid_size(rows in 1u32..8, cols in 1u32..8) {
            let sites = regular_grid(rows, cols, Meters::new(100.0), Rect::default());
            prop_assert_eq!(sites.len(), (rows * cols) as usize);
        }
    }
}
