//! The comparison algorithms of the paper's evaluation, plus sanity
//! baselines.
//!
//! * [`Dcsp`] — *Decentralized Collaboration Service Placement* (Yu et al.,
//!   GLOBECOM 2018, as summarised in the DMRA paper): UEs propose to the
//!   candidate BS with the **lowest resource occupation**; BSs prefer the
//!   proposer covered by the **fewest BSs** (`f_u`), tie-breaking by least
//!   radio consumption. No SP awareness, no price awareness.
//! * [`NonCo`] — *Non-Collaboration*: UEs propose to the **max-SINR**
//!   candidate; BSs prefer the proposer consuming the **fewest RRBs**. No
//!   collaboration between BSs at all.
//! * [`GreedyProfit`] — a centralized profit-density greedy assigner: an
//!   informative upper-ish reference the paper does not plot.
//! * [`ExactOptimal`] — a branch-and-bound exact TPM solver for small
//!   instances (optimality-gap measurements).
//! * [`RandomAllocator`] — seeded random feasible assignment (noise floor).
//! * [`CloudOnly`] — forwards everything (the zero-profit floor).
//!
//! Every algorithm implements [`dmra_core::Allocator`] and is exercised by
//! shared conformance tests: allocations must validate against the
//! instance, and the orderings the paper claims (DMRA ≥ DCSP, DMRA ≥
//! NonCo on total profit) are asserted at the workspace level.
//!
//! # Examples
//!
//! ```
//! use dmra_baselines::{Dcsp, NonCo};
//! use dmra_core::Allocator;
//!
//! assert_eq!(Dcsp::default().name(), "DCSP");
//! assert_eq!(NonCo::default().name(), "NonCo");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dcsp;
mod exact;
mod greedy;
mod matching;
mod nonco;
mod random;

pub use dcsp::Dcsp;
pub use exact::ExactOptimal;
pub use greedy::{CloudOnly, GreedyProfit};
pub use nonco::NonCo;
pub use random::RandomAllocator;

#[cfg(test)]
mod test_support;
