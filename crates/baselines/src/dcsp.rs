//! DCSP — Decentralized Collaboration Service Placement (Yu et al.,
//! GLOBECOM 2018), as characterised in Section VI-B of the DMRA paper.

use crate::matching::{self, Preferences, ResourcePool};
use dmra_core::{Allocation, Allocator, CandidateLink, ProblemInstance};
use dmra_types::{BsId, UeId};

/// The DCSP baseline.
///
/// * **UE side:** propose to the candidate BS with the *lowest resource
///   occupation* (fraction of the requested service's CRUs plus the uplink
///   RRBs already committed).
/// * **BS side:** prefer the proposer that the *fewest* BSs can cover
///   (smallest `f_u`), tie-breaking by least radio consumption
///   (`n_{u,i}`), then by UE id for determinism.
///
/// DCSP balances load well but is blind to SP boundaries and prices, which
/// is exactly where DMRA gains its profit edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dcsp {
    whole_bs_occupancy: bool,
}

impl Dcsp {
    /// Creates the DCSP baseline (per-service occupancy reading).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The DMRA paper's one-line description of DCSP ("lowest resource
    /// occupation") is ambiguous between the occupancy of the requested
    /// service and of the whole BS. This constructor selects the
    /// whole-BS reading; the default is per-service.
    #[must_use]
    pub fn with_whole_bs_occupancy() -> Self {
        Self {
            whole_bs_occupancy: true,
        }
    }
}

impl Preferences for Dcsp {
    fn ue_score(
        &self,
        instance: &ProblemInstance,
        pool: &ResourcePool,
        ue: UeId,
        link: &CandidateLink,
    ) -> f64 {
        if self.whole_bs_occupancy {
            return pool.total_occupancy(link.bs);
        }
        let service_idx = instance.ues()[ue.as_usize()].service.as_usize();
        pool.occupancy(link.bs, service_idx)
    }

    fn bs_key(&self, instance: &ProblemInstance, bs: BsId, ue: UeId) -> (u64, u64, u64) {
        let link = instance.link(ue, bs).expect("proposer is candidate");
        matching::smaller_is_better(instance.f_u(ue), link.n_rrbs.get(), ue.index())
    }
}

impl Allocator for Dcsp {
    fn name(&self) -> &str {
        "DCSP"
    }

    fn allocate(&self, instance: &ProblemInstance) -> Allocation {
        matching::run(instance, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_grid_instance;

    #[test]
    fn dcsp_allocations_validate() {
        let inst = small_grid_instance(40, 7);
        let alloc = Dcsp::new().allocate(&inst);
        alloc.validate(&inst).unwrap();
        assert!(alloc.edge_served() > 0);
    }

    #[test]
    fn dcsp_is_deterministic() {
        let inst = small_grid_instance(30, 3);
        assert_eq!(Dcsp::new().allocate(&inst), Dcsp::new().allocate(&inst));
    }

    #[test]
    fn whole_bs_occupancy_reading_also_validates() {
        let inst = small_grid_instance(40, 7);
        let alloc = Dcsp::with_whole_bs_occupancy().allocate(&inst);
        alloc.validate(&inst).unwrap();
    }

    #[test]
    fn occupancy_scoring_serves_most_covered_ues() {
        // Some random UEs fall outside every BS's coverage and must go to the
        // cloud; among *covered* UEs DCSP should serve the large majority
        // when capacity is plentiful.
        let inst = small_grid_instance(20, 11);
        let alloc = Dcsp::new().allocate(&inst);
        let covered = inst.ues().iter().filter(|u| inst.f_u(u.id) > 0).count();
        assert!(covered > 0);
        let served = alloc.edge_served();
        assert!(
            served as f64 >= 0.7 * covered as f64,
            "served {served} of {covered} covered UEs"
        );
    }
}
