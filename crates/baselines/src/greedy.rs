//! Centralized sanity baselines: profit-greedy and cloud-only.

use dmra_core::{Allocation, Allocator, ProblemInstance};
use dmra_types::{Cru, RrbCount, UeId};

/// A centralized, profit-greedy assigner.
///
/// Sorts every candidate `(UE, BS)` pair by *profit density* — the SP
/// profit the pair would generate, `c_j^u · (m_k − m_k^o − p_{i,u})`,
/// divided by the RRBs it would consume (the binding resource at paper
/// scale) — and commits pairs greedily while resources allow. Not part of
/// the paper's evaluation; it serves as an informative near-upper
/// reference for the figures (density greedy is the classical knapsack
/// heuristic; no decentralized scheme should beat it by much).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyProfit {
    _private: (),
}

impl GreedyProfit {
    /// Creates the greedy baseline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Allocator for GreedyProfit {
    fn name(&self) -> &str {
        "GreedyProfit"
    }

    fn allocate(&self, instance: &ProblemInstance) -> Allocation {
        // Collect (density, ue, bs, n_rrbs) for every candidate link.
        let mut edges: Vec<(f64, UeId, u32, RrbCount)> = Vec::new();
        for ue in instance.ues() {
            let sp = &instance.sps()[ue.sp.as_usize()];
            let margin = sp.gross_margin();
            for link in instance.candidates(ue.id) {
                let profit = ue.cru_demand.as_f64() * (margin - link.price).get();
                let density = profit / f64::from(link.n_rrbs.get().max(1));
                edges.push((density, ue.id, link.bs.index(), link.n_rrbs));
            }
        }
        // Highest density first; deterministic tie-break on (ue, bs).
        edges.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });

        let mut rem_cru: Vec<Vec<Cru>> = instance
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let mut rem_rrb: Vec<RrbCount> = instance.bss().iter().map(|b| b.rrb_budget).collect();
        let mut alloc = Allocation::all_cloud(instance.n_ues());
        let mut done = vec![false; instance.n_ues()];
        for (_, ue_id, bs_idx, n_rrbs) in edges {
            if done[ue_id.as_usize()] {
                continue;
            }
            let spec = &instance.ues()[ue_id.as_usize()];
            let svc = spec.service.as_usize();
            let i = bs_idx as usize;
            if rem_cru[i][svc] >= spec.cru_demand && rem_rrb[i] >= n_rrbs {
                rem_cru[i][svc] -= spec.cru_demand;
                rem_rrb[i] -= n_rrbs;
                alloc.assign(ue_id, dmra_types::BsId::new(bs_idx));
                done[ue_id.as_usize()] = true;
            }
        }
        alloc
    }
}

/// Forwards every task to the remote cloud — the zero-profit floor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CloudOnly {
    _private: (),
}

impl CloudOnly {
    /// Creates the cloud-only baseline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Allocator for CloudOnly {
    fn name(&self) -> &str {
        "CloudOnly"
    }

    fn allocate(&self, instance: &ProblemInstance) -> Allocation {
        Allocation::all_cloud(instance.n_ues())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_grid_instance;
    use crate::{Dcsp, NonCo};

    #[test]
    fn greedy_validates_and_earns() {
        let inst = small_grid_instance(40, 17);
        let alloc = GreedyProfit::new().allocate(&inst);
        alloc.validate(&inst).unwrap();
        assert!(inst.total_profit(&alloc).get() > 0.0);
    }

    #[test]
    fn greedy_beats_or_matches_load_oblivious_baselines() {
        // Not a theorem, but on well-provisioned instances the profit-aware
        // centralized greedy should never lose to SP-oblivious matchers.
        let inst = small_grid_instance(60, 19);
        let g = inst.total_profit(&GreedyProfit::new().allocate(&inst));
        let d = inst.total_profit(&Dcsp::new().allocate(&inst));
        let n = inst.total_profit(&NonCo::new().allocate(&inst));
        assert!(g.get() >= d.get() - 1e-9, "greedy {g} < dcsp {d}");
        assert!(g.get() >= n.get() - 1e-9, "greedy {g} < nonco {n}");
    }

    #[test]
    fn cloud_only_serves_nothing() {
        let inst = small_grid_instance(10, 23);
        let alloc = CloudOnly::new().allocate(&inst);
        alloc.validate(&inst).unwrap();
        assert_eq!(alloc.edge_served(), 0);
        assert_eq!(inst.total_profit(&alloc).get(), 0.0);
    }
}
