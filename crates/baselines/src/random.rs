//! The seeded random-assignment noise floor.

use dmra_core::{Allocation, Allocator, ProblemInstance};
use dmra_geo::rng::component_rng;
use dmra_types::{Cru, RrbCount, UeId};
use rand::Rng;

/// Assigns each UE (in random order) to a uniformly random *feasible*
/// candidate BS, forwarding to the cloud when none remains feasible.
///
/// Useful as a noise floor in the figures: any algorithm worth plotting
/// should clear it comfortably.
#[derive(Debug, Clone, Copy)]
pub struct RandomAllocator {
    seed: u64,
}

impl RandomAllocator {
    /// Creates the baseline with an explicit seed (determinism contract of
    /// [`Allocator`] implementations).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this baseline was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for RandomAllocator {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Allocator for RandomAllocator {
    fn name(&self) -> &str {
        "Random"
    }

    fn allocate(&self, instance: &ProblemInstance) -> Allocation {
        let mut rng = component_rng(self.seed, "random-allocator");
        let mut order: Vec<usize> = (0..instance.n_ues()).collect();
        // Fisher–Yates so arrival order does not systematically favour
        // low-id UEs.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut rem_cru: Vec<Vec<Cru>> = instance
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let mut rem_rrb: Vec<RrbCount> = instance.bss().iter().map(|b| b.rrb_budget).collect();
        let mut alloc = Allocation::all_cloud(instance.n_ues());
        for u in order {
            let ue = UeId::new(u as u32);
            let spec = &instance.ues()[u];
            let svc = spec.service.as_usize();
            let feasible: Vec<_> = instance
                .candidates(ue)
                .iter()
                .filter(|l| {
                    rem_cru[l.bs.as_usize()][svc] >= spec.cru_demand
                        && rem_rrb[l.bs.as_usize()] >= l.n_rrbs
                })
                .collect();
            if feasible.is_empty() {
                continue;
            }
            let pick = feasible[rng.random_range(0..feasible.len())];
            rem_cru[pick.bs.as_usize()][svc] -= spec.cru_demand;
            rem_rrb[pick.bs.as_usize()] -= pick.n_rrbs;
            alloc.assign(ue, pick.bs);
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_grid_instance;

    #[test]
    fn random_allocations_validate() {
        let inst = small_grid_instance(50, 29);
        for seed in 0..10 {
            let alloc = RandomAllocator::new(seed).allocate(&inst);
            alloc.validate(&inst).unwrap();
        }
    }

    #[test]
    fn same_seed_same_allocation() {
        let inst = small_grid_instance(30, 31);
        let a = RandomAllocator::new(5).allocate(&inst);
        let b = RandomAllocator::new(5).allocate(&inst);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let inst = small_grid_instance(30, 37);
        let a = RandomAllocator::new(1).allocate(&inst);
        let b = RandomAllocator::new(2).allocate(&inst);
        assert_ne!(a, b);
    }

    #[test]
    fn serves_everyone_when_capacity_abounds() {
        let inst = small_grid_instance(5, 41);
        let alloc = RandomAllocator::new(9).allocate(&inst);
        // Every UE with a candidate should be placed.
        for ue in inst.ues() {
            if inst.f_u(ue.id) > 0 {
                assert!(alloc.bs_of(ue.id).is_some());
            }
        }
    }
}
