//! A generic deferred-acceptance matching loop shared by [`crate::Dcsp`]
//! and [`crate::NonCo`].
//!
//! Both baselines have the same skeleton as DMRA's Algorithm 1 — iterate
//! (UEs propose to their best feasible candidate; each BS picks one winner
//! per service, applies RRB admission, commits) — and differ only in the
//! two preference functions. This module hosts the skeleton; the baselines
//! supply the preferences.

use dmra_core::{Allocation, CandidateLink, ProblemInstance};
use dmra_types::{BsId, Cru, RrbCount, UeId};
use std::collections::BTreeMap;

/// Mutable per-BS resource pool tracked during matching.
#[derive(Debug, Clone)]
pub(crate) struct ResourcePool {
    /// Remaining CRUs, indexed `[bs][service]`.
    pub(crate) rem_cru: Vec<Vec<Cru>>,
    /// Remaining RRBs, indexed by BS.
    pub(crate) rem_rrb: Vec<RrbCount>,
    /// Static capacities (some baselines score by occupancy fraction).
    pub(crate) cap_cru: Vec<Vec<Cru>>,
    /// Static RRB capacities.
    pub(crate) cap_rrb: Vec<RrbCount>,
}

impl ResourcePool {
    pub(crate) fn new(instance: &ProblemInstance) -> Self {
        let cap_cru: Vec<Vec<Cru>> = instance
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let cap_rrb: Vec<RrbCount> = instance.bss().iter().map(|b| b.rrb_budget).collect();
        Self {
            rem_cru: cap_cru.clone(),
            rem_rrb: cap_rrb.clone(),
            cap_cru,
            cap_rrb,
        }
    }

    /// Can `bs` still serve a UE demanding `cru` of `service_idx` and
    /// `n_rrbs` radio blocks?
    pub(crate) fn fits(&self, bs: BsId, service_idx: usize, cru: Cru, n_rrbs: RrbCount) -> bool {
        let i = bs.as_usize();
        self.rem_cru[i][service_idx] >= cru && self.rem_rrb[i] >= n_rrbs
    }

    /// Fraction of the BS's combined (service CRU + RRB) capacity in use —
    /// the "resource occupation" DCSP minimises (per-service reading).
    pub(crate) fn occupancy(&self, bs: BsId, service_idx: usize) -> f64 {
        let i = bs.as_usize();
        let cap = self.cap_cru[i][service_idx].as_f64() + self.cap_rrb[i].as_f64();
        if cap <= 0.0 {
            return 1.0;
        }
        let rem = self.rem_cru[i][service_idx].as_f64() + self.rem_rrb[i].as_f64();
        1.0 - rem / cap
    }

    /// Whole-BS occupancy: all services' CRUs plus the RRBs (the other
    /// reading of DCSP's "resource occupation"; kept for comparison).
    pub(crate) fn total_occupancy(&self, bs: BsId) -> f64 {
        let i = bs.as_usize();
        let cap: f64 =
            self.cap_cru[i].iter().map(|c| c.as_f64()).sum::<f64>() + self.cap_rrb[i].as_f64();
        if cap <= 0.0 {
            return 1.0;
        }
        let rem: f64 =
            self.rem_cru[i].iter().map(|c| c.as_f64()).sum::<f64>() + self.rem_rrb[i].as_f64();
        1.0 - rem / cap
    }
}

/// The two preference functions a baseline must provide.
pub(crate) trait Preferences {
    /// UE-side score of a candidate link; **lower is better**. Called with
    /// the live resource pool so scores may be occupancy-dependent.
    fn ue_score(
        &self,
        instance: &ProblemInstance,
        pool: &ResourcePool,
        ue: UeId,
        link: &CandidateLink,
    ) -> f64;

    /// BS-side preference for a proposer; **larger is better**.
    fn bs_key(&self, instance: &ProblemInstance, bs: BsId, ue: UeId) -> (u64, u64, u64);
}

/// Runs the deferred-acceptance loop to quiescence.
///
/// Identical structure to DMRA's Algorithm 1 (propose → select per
/// service → RRB admission → commit), with the preferences injected. Like
/// DMRA it terminates after at most `|U| + 1` iterations because every BS
/// that receives proposals accepts at least one.
pub(crate) fn run<P: Preferences>(instance: &ProblemInstance, prefs: &P) -> Allocation {
    let n_ues = instance.n_ues();
    let mut pool = ResourcePool::new(instance);
    let mut b_u: Vec<Vec<CandidateLink>> = (0..n_ues)
        .map(|u| instance.candidates(UeId::new(u as u32)).to_vec())
        .collect();
    let mut assigned: Vec<Option<BsId>> = vec![None; n_ues];
    let mut cloud = vec![false; n_ues];

    // Bounded for safety; the loop provably quiesces much earlier.
    for _ in 0..(2 * n_ues + 2) {
        // UE side.
        let mut proposals: BTreeMap<u32, BTreeMap<u32, Vec<UeId>>> = BTreeMap::new();
        let mut any = false;
        for u in 0..n_ues {
            if assigned[u].is_some() || cloud[u] {
                continue;
            }
            let ue = UeId::new(u as u32);
            let spec = &instance.ues()[u];
            loop {
                if b_u[u].is_empty() {
                    cloud[u] = true;
                    break;
                }
                let best = b_u[u]
                    .iter()
                    .enumerate()
                    .map(|(idx, link)| (idx, prefs.ue_score(instance, &pool, ue, link), link.bs))
                    .min_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.2.cmp(&b.2))
                    })
                    .map(|(idx, _, _)| idx)
                    .expect("non-empty");
                let link = b_u[u][best];
                if pool.fits(
                    link.bs,
                    spec.service.as_usize(),
                    spec.cru_demand,
                    link.n_rrbs,
                ) {
                    proposals
                        .entry(link.bs.index())
                        .or_default()
                        .entry(spec.service.index())
                        .or_default()
                        .push(ue);
                    any = true;
                    break;
                }
                b_u[u].remove(best);
            }
        }
        if !any {
            break;
        }

        // BS side.
        for (bs_idx, per_service) in proposals {
            let bs = BsId::new(bs_idx);
            let mut winners: Vec<UeId> = Vec::new();
            for (_svc, cands) in per_service {
                let winner = *cands
                    .iter()
                    .max_by_key(|&&u| prefs.bs_key(instance, bs, u))
                    .expect("non-empty");
                winners.push(winner);
            }
            let demand = |u: UeId| instance.link(u, bs).expect("winner is candidate").n_rrbs;
            let mut total: RrbCount = winners.iter().map(|&u| demand(u)).sum();
            if total > pool.rem_rrb[bs.as_usize()] {
                // Best-first, then drop from the tail until the batch fits.
                winners.sort_by_key(|&u| std::cmp::Reverse(prefs.bs_key(instance, bs, u)));
                while total > pool.rem_rrb[bs.as_usize()] {
                    let dropped = winners.pop().expect("cannot empty before fitting");
                    total -= demand(dropped);
                }
            }
            for u in winners {
                let spec = &instance.ues()[u.as_usize()];
                let link = instance.link(u, bs).expect("winner is candidate");
                pool.rem_cru[bs.as_usize()][spec.service.as_usize()] -= spec.cru_demand;
                pool.rem_rrb[bs.as_usize()] -= link.n_rrbs;
                assigned[u.as_usize()] = Some(bs);
            }
        }
    }
    Allocation::from_assignments(assigned)
}

/// Packs "smaller raw value is more preferred" criteria into a key where
/// larger is better, for use with `max_by_key`.
pub(crate) fn smaller_is_better(a: u32, b: u32, c: u32) -> (u64, u64, u64) {
    (
        u64::from(u32::MAX - a),
        u64::from(u32::MAX - b),
        u64::from(u32::MAX - c),
    )
}
