//! Shared scenario builder for the baseline unit tests.
//!
//! Deliberately small (2 SPs × 4 BSs, one service pair) so individual
//! algorithm behaviours stay inspectable; the full paper-scale scenarios
//! live in `dmra-sim`.

use dmra_core::{CoverageModel, ProblemInstance};
use dmra_econ::PricingConfig;
use dmra_geo::placement;
use dmra_geo::rng::component_rng;
use dmra_radio::RadioConfig;
use dmra_types::{
    BitsPerSec, BsId, BsSpec, Cru, Dbm, Hertz, Money, Rect, RrbCount, ServiceCatalog, ServiceId,
    SpId, SpSpec, UeId, UeSpec,
};
use rand::Rng;

/// Builds a 2-SP, 4-BS, 2-service instance with `n_ues` random UEs.
pub(crate) fn small_grid_instance(n_ues: usize, seed: u64) -> ProblemInstance {
    let sps = vec![
        SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0)),
        SpSpec::new(SpId::new(1), Money::new(10.0), Money::new(1.0)),
    ];
    let catalog = ServiceCatalog::new(2);
    let region = Rect::default();
    let sites = placement::regular_grid(2, 2, dmra_types::Meters::new(300.0), region);
    let mut rng = component_rng(seed, "test-support");
    let bss: Vec<BsSpec> = sites
        .iter()
        .enumerate()
        .map(|(i, &pos)| {
            BsSpec::new(
                BsId::new(i as u32),
                SpId::new((i % 2) as u32),
                pos,
                vec![
                    Cru::new(rng.random_range(100..=150)),
                    Cru::new(rng.random_range(100..=150)),
                ],
                Hertz::from_mhz(10.0),
                RrbCount::new(55),
            )
        })
        .collect();
    let positions = placement::uniform_random(n_ues, region, &mut rng);
    let ues: Vec<UeSpec> = positions
        .into_iter()
        .enumerate()
        .map(|(u, pos)| {
            UeSpec::new(
                UeId::new(u as u32),
                SpId::new(rng.random_range(0..2)),
                pos,
                ServiceId::new(rng.random_range(0..2)),
                Cru::new(rng.random_range(3..=5)),
                BitsPerSec::from_mbps(rng.random_range(2.0..=6.0)),
                Dbm::new(10.0),
            )
        })
        .collect();
    ProblemInstance::build(
        sps,
        bss,
        ues,
        catalog,
        PricingConfig::paper_defaults(),
        RadioConfig::paper_defaults(),
        CoverageModel::default(),
    )
    .expect("test instance is valid")
}
