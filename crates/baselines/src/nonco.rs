//! NonCo — the non-collaborative baseline of Section VI-B.

use crate::matching::{self, Preferences, ResourcePool};
use dmra_core::{Allocation, Allocator, CandidateLink, ProblemInstance};
use dmra_types::{BsId, UeId};

/// The NonCo baseline.
///
/// * **UE side:** propose to the candidate BS with the *maximum uplink
///   SINR* — the classical max-RSRP/max-SINR attach rule, oblivious to
///   load, price and SP.
/// * **BS side:** prefer the proposer consuming the *fewest RRBs*,
///   tie-breaking by UE id.
///
/// BSs do not collaborate: no occupancy balancing, no SP preference. NonCo
/// packs UEs onto their nearest BSs until those saturate, forwarding the
/// rest to the cloud.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonCo {
    _private: (),
}

impl NonCo {
    /// Creates the NonCo baseline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Preferences for NonCo {
    fn ue_score(
        &self,
        _instance: &ProblemInstance,
        _pool: &ResourcePool,
        _ue: UeId,
        link: &CandidateLink,
    ) -> f64 {
        // Lower is better, so negate the SINR.
        -link.sinr_linear
    }

    fn bs_key(&self, instance: &ProblemInstance, bs: BsId, ue: UeId) -> (u64, u64, u64) {
        let link = instance.link(ue, bs).expect("proposer is candidate");
        matching::smaller_is_better(link.n_rrbs.get(), ue.index(), 0)
    }
}

impl Allocator for NonCo {
    fn name(&self) -> &str {
        "NonCo"
    }

    fn allocate(&self, instance: &ProblemInstance) -> Allocation {
        matching::run(instance, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_grid_instance;
    use dmra_types::UeId;

    #[test]
    fn nonco_allocations_validate() {
        let inst = small_grid_instance(40, 13);
        let alloc = NonCo::new().allocate(&inst);
        alloc.validate(&inst).unwrap();
        assert!(alloc.edge_served() > 0);
    }

    #[test]
    fn nonco_is_deterministic() {
        let inst = small_grid_instance(30, 5);
        assert_eq!(NonCo::new().allocate(&inst), NonCo::new().allocate(&inst));
    }

    #[test]
    fn uncontested_ue_attaches_to_max_sinr_bs() {
        // With a single UE there is no contention: it must land on its
        // highest-SINR (nearest) candidate.
        let inst = small_grid_instance(1, 2);
        let alloc = NonCo::new().allocate(&inst);
        let ue = UeId::new(0);
        if let Some(bs) = alloc.bs_of(ue) {
            let chosen = inst.link(ue, bs).unwrap();
            let best = inst
                .candidates(ue)
                .iter()
                .map(|l| l.sinr_linear)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((chosen.sinr_linear - best).abs() < 1e-12);
        }
    }
}
