//! An exact TPM solver for small instances, by branch and bound.
//!
//! The Total Profit Maximization problem (Definition 1) is a
//! multi-dimensional assignment problem; exhaustive search is hopeless at
//! paper scale, but small instances (≈ tens of UEs) solve quickly with
//! branch and bound, giving a ground-truth optimum against which the
//! heuristics' *optimality gap* can be measured (see the `optimality`
//! integration tests and EXPERIMENTS.md).

use dmra_core::{Allocation, Allocator, ProblemInstance};
use dmra_types::{BsId, Cru, Money, RrbCount};

/// One serving option of a UE: `(profit, bs, n_rrbs, cru_demand,
/// service_index)`, kept flat for the hot search loop.
type ServeOption = (f64, BsId, RrbCount, Cru, usize);

/// Exact branch-and-bound solver for the TPM objective.
///
/// Explores UEs in id order; at each node the options are the UE's
/// candidate BSs (sorted by decreasing profit) and the cloud. Nodes are
/// pruned when the current profit plus an optimistic bound (each remaining
/// UE served at its best-profit link, capacities ignored) cannot beat the
/// incumbent.
#[derive(Debug, Clone, Copy)]
pub struct ExactOptimal {
    max_nodes: u64,
}

impl ExactOptimal {
    /// Creates a solver that aborts after exploring `max_nodes` search
    /// nodes.
    #[must_use]
    pub fn new(max_nodes: u64) -> Self {
        Self { max_nodes }
    }

    /// Solves to optimality, returning the best allocation and its profit.
    ///
    /// Returns `None` if the node budget was exhausted before the search
    /// completed — the result would not be provably optimal.
    #[must_use]
    pub fn solve(&self, instance: &ProblemInstance) -> Option<(Allocation, Money)> {
        let n = instance.n_ues();
        // Per-UE options: (profit, bs, n_rrbs, cru, service), best first.
        let mut options: Vec<Vec<ServeOption>> = Vec::with_capacity(n);
        let mut best_profit_of: Vec<f64> = Vec::with_capacity(n);
        for ue in instance.ues() {
            let sp = &instance.sps()[ue.sp.as_usize()];
            let margin = sp.gross_margin();
            let mut opts: Vec<_> = instance
                .candidates(ue.id)
                .iter()
                .map(|link| {
                    (
                        ue.cru_demand.as_f64() * (margin - link.price).get(),
                        link.bs,
                        link.n_rrbs,
                        ue.cru_demand,
                        ue.service.as_usize(),
                    )
                })
                .collect();
            opts.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            best_profit_of.push(opts.first().map_or(0.0, |o| o.0.max(0.0)));
            options.push(opts);
        }
        // Suffix sums of the optimistic bound.
        let mut optimistic_tail = vec![0.0; n + 1];
        for u in (0..n).rev() {
            optimistic_tail[u] = optimistic_tail[u + 1] + best_profit_of[u];
        }

        let mut search = Search {
            options: &options,
            optimistic_tail: &optimistic_tail,
            rem_cru: instance
                .bss()
                .iter()
                .map(|b| b.cru_budget.clone())
                .collect(),
            rem_rrb: instance.bss().iter().map(|b| b.rrb_budget).collect(),
            current: vec![None; n],
            best: vec![None; n],
            best_profit: -1.0,
            nodes: 0,
            max_nodes: self.max_nodes,
            exhausted: false,
        };
        search.dfs(0, 0.0);
        if search.exhausted {
            return None;
        }
        let allocation = Allocation::from_assignments(search.best);
        let profit = Money::new(search.best_profit.max(0.0));
        Some((allocation, profit))
    }
}

impl Default for ExactOptimal {
    /// A generous default budget of 20 million nodes (small instances
    /// finish in far fewer).
    fn default() -> Self {
        Self::new(20_000_000)
    }
}

struct Search<'a> {
    options: &'a [Vec<ServeOption>],
    optimistic_tail: &'a [f64],
    rem_cru: Vec<Vec<Cru>>,
    rem_rrb: Vec<RrbCount>,
    current: Vec<Option<BsId>>,
    best: Vec<Option<BsId>>,
    best_profit: f64,
    nodes: u64,
    max_nodes: u64,
    exhausted: bool,
}

impl Search<'_> {
    fn dfs(&mut self, u: usize, profit: f64) {
        if self.exhausted {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.exhausted = true;
            return;
        }
        if u == self.options.len() {
            if profit > self.best_profit {
                self.best_profit = profit;
                self.best.copy_from_slice(&self.current);
            }
            return;
        }
        // Bound: even serving every remaining UE at its best link cannot
        // beat the incumbent.
        if profit + self.optimistic_tail[u] <= self.best_profit {
            return;
        }
        for idx in 0..self.options[u].len() {
            let (gain, bs, n_rrbs, cru, svc) = self.options[u][idx];
            if gain <= 0.0 {
                // Options are sorted; the rest cannot help either (the
                // cloud at 0 dominates them).
                break;
            }
            let i = bs.as_usize();
            if self.rem_cru[i][svc] < cru || self.rem_rrb[i] < n_rrbs {
                continue;
            }
            self.rem_cru[i][svc] -= cru;
            self.rem_rrb[i] -= n_rrbs;
            self.current[u] = Some(bs);
            self.dfs(u + 1, profit + gain);
            self.current[u] = None;
            self.rem_cru[i][svc] += cru;
            self.rem_rrb[i] += n_rrbs;
        }
        // The cloud option.
        self.dfs(u + 1, profit);
    }
}

impl Allocator for ExactOptimal {
    fn name(&self) -> &str {
        "ExactOptimal"
    }

    /// # Panics
    ///
    /// Panics if the node budget is exhausted — this solver is for small
    /// instances; use [`ExactOptimal::solve`] to handle the budget
    /// gracefully.
    fn allocate(&self, instance: &ProblemInstance) -> Allocation {
        self.solve(instance)
            .expect("exact search exceeded its node budget; instance too large")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::small_grid_instance;
    use crate::{Dcsp, GreedyProfit, NonCo};
    use dmra_core::Dmra;
    use dmra_types::UeId;

    /// Exhaustive reference for very small instances.
    fn brute_force(instance: &ProblemInstance) -> f64 {
        fn rec(
            instance: &ProblemInstance,
            u: usize,
            rem_cru: &mut Vec<Vec<Cru>>,
            rem_rrb: &mut Vec<RrbCount>,
            profit: f64,
        ) -> f64 {
            if u == instance.n_ues() {
                return profit;
            }
            let ue = &instance.ues()[u];
            let sp = &instance.sps()[ue.sp.as_usize()];
            let mut best = rec(instance, u + 1, rem_cru, rem_rrb, profit); // cloud
            for link in instance.candidates(UeId::new(u as u32)) {
                let i = link.bs.as_usize();
                let svc = ue.service.as_usize();
                if rem_cru[i][svc] >= ue.cru_demand && rem_rrb[i] >= link.n_rrbs {
                    rem_cru[i][svc] -= ue.cru_demand;
                    rem_rrb[i] -= link.n_rrbs;
                    let gain = ue.cru_demand.as_f64() * (sp.gross_margin() - link.price).get();
                    best = best.max(rec(instance, u + 1, rem_cru, rem_rrb, profit + gain));
                    rem_cru[i][svc] += ue.cru_demand;
                    rem_rrb[i] += link.n_rrbs;
                }
            }
            best
        }
        let mut rem_cru: Vec<Vec<Cru>> = instance
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let mut rem_rrb: Vec<RrbCount> = instance.bss().iter().map(|b| b.rrb_budget).collect();
        rec(instance, 0, &mut rem_cru, &mut rem_rrb, 0.0)
    }

    #[test]
    fn matches_brute_force_on_tiny_instances() {
        for seed in 0..6u64 {
            let inst = small_grid_instance(6, seed);
            let (alloc, profit) = ExactOptimal::default().solve(&inst).unwrap();
            alloc.validate(&inst).unwrap();
            let reference = brute_force(&inst);
            assert!(
                (profit.get() - reference).abs() < 1e-9 * (1.0 + reference),
                "seed {seed}: bnb {profit} vs brute force {reference}"
            );
            // The reported profit matches the instance's own accounting.
            let recomputed = inst.total_profit(&alloc);
            assert!((profit.get() - recomputed.get()).abs() < 1e-9 * (1.0 + profit.get()));
        }
    }

    #[test]
    fn dominates_every_heuristic() {
        for seed in 10..16u64 {
            let inst = small_grid_instance(14, seed);
            let (_, optimal) = ExactOptimal::default().solve(&inst).unwrap();
            for algo in [
                Box::new(Dmra::default()) as Box<dyn Allocator>,
                Box::new(Dcsp::default()),
                Box::new(NonCo::default()),
                Box::new(GreedyProfit::default()),
            ] {
                let profit = inst.total_profit(&algo.allocate(&inst));
                assert!(
                    optimal.get() >= profit.get() - 1e-9,
                    "seed {seed}: {} ({profit}) beat the optimum ({optimal})",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn node_budget_is_respected() {
        let inst = small_grid_instance(30, 1);
        // A one-node budget cannot complete the search.
        assert!(ExactOptimal::new(1).solve(&inst).is_none());
    }

    #[test]
    fn dmra_gap_is_small_on_small_instances() {
        let mut total_dmra = 0.0;
        let mut total_opt = 0.0;
        for seed in 20..28u64 {
            let inst = small_grid_instance(12, seed);
            let (_, optimal) = ExactOptimal::default().solve(&inst).unwrap();
            total_opt += optimal.get();
            total_dmra += inst.total_profit(&Dmra::default().allocate(&inst)).get();
        }
        let gap = total_dmra / total_opt;
        assert!(
            gap > 0.75,
            "DMRA at {:.1}% of optimal, expected > 75%",
            gap * 100.0
        );
    }
}
