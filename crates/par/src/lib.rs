//! Deterministic fan-out over scoped threads.
//!
//! Everything parallel in this workspace goes through
//! [`par_map_indexed`]: the index space `0..n` is split into contiguous
//! chunks, one `std::thread::scope` worker maps each chunk, and the
//! per-chunk outputs are concatenated **in chunk order**. Because every
//! output lands at the slot of its input index, the result is the same
//! `Vec` a serial `(0..n).map(f).collect()` would produce — bit-identical,
//! for any thread count. Callers must only pass an `f` whose output
//! depends on nothing but its index (no shared mutable state), which is
//! what makes the equality guarantee hold; the sweep and instance-build
//! determinism tests at the workspace root enforce it end to end.
//!
//! The worker count comes from a [`Threads`] knob: an explicit
//! [`Threads::Fixed`], or [`Threads::Auto`] which honours the
//! `DMRA_THREADS` environment variable and falls back to
//! [`std::thread::available_parallelism`]. Nested calls (a parallel
//! instance build inside an already-parallel sweep replication) detect
//! that they are running on a fan-out worker and degrade to serial
//! execution instead of oversubscribing the machine.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Name of the environment variable [`Threads::Auto`] consults.
pub const THREADS_ENV: &str = "DMRA_THREADS";

/// How many worker threads a fan-out may use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Threads {
    /// Use `DMRA_THREADS` if set to a positive integer, otherwise the
    /// machine's available parallelism.
    #[default]
    Auto,
    /// Use exactly this many workers (`0` is clamped to `1`).
    Fixed(usize),
}

impl Threads {
    /// A knob that forces serial execution.
    #[must_use]
    pub const fn serial() -> Self {
        Threads::Fixed(1)
    }

    /// Resolves the knob to a concrete worker count (always ≥ 1).
    ///
    /// An unset, empty or unparsable `DMRA_THREADS` falls back to the
    /// machine default; `DMRA_THREADS=0` is treated as unset so scripts
    /// can force the default explicitly.
    #[must_use]
    pub fn resolve(self) -> usize {
        match self {
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => env_threads().unwrap_or_else(available_threads),
        }
    }
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// The machine's available parallelism (1 when it cannot be queried).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

thread_local! {
    /// Set on fan-out workers so nested fan-outs run serially.
    static ON_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Maps `f` over `0..n`, returning the outputs in index order.
///
/// Splits the index space into one contiguous chunk per worker; with one
/// worker (or `n ≤ 1`, or when called from inside another fan-out) it is
/// exactly `(0..n).map(f).collect()`. The output is identical for every
/// thread count as long as `f(i)` depends only on `i`.
///
/// # Panics
///
/// Propagates panics from `f` (the first panicking chunk in index order).
pub fn par_map_indexed<T, F>(threads: Threads, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.resolve().min(n.max(1));
    if workers <= 1 || ON_WORKER.with(Cell::get) {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = n.min(start + chunk);
                scope.spawn(move || {
                    ON_WORKER.with(|flag| flag.set(true));
                    (start..end).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// [`par_map_indexed`] with per-worker scratch state.
///
/// `init` builds one scratch value per worker (per chunk) and `f` maps
/// each index with mutable access to its worker's scratch — the pattern
/// for hot loops that reuse buffers (a candidate batch, a neighbour
/// list) instead of allocating per item. The serial path builds a single
/// scratch and reuses it across all indices, so an item's output must
/// not depend on what earlier items left in the scratch (`f` should
/// overwrite/clear what it reads). Under that contract the result is the
/// same `Vec` a serial run produces, bit-identical for any thread count,
/// exactly like [`par_map_indexed`].
///
/// # Panics
///
/// Propagates panics from `init`/`f` (the first panicking chunk in index
/// order).
pub fn par_map_indexed_scratch<S, T, I, F>(threads: Threads, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.resolve().min(n.max(1));
    if workers <= 1 || ON_WORKER.with(Cell::get) {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    let chunk = n.div_ceil(workers);
    let init = &init;
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = n.min(start + chunk);
                scope.spawn(move || {
                    ON_WORKER.with(|flag| flag.set(true));
                    let mut scratch = init();
                    (start..end).map(|i| f(&mut scratch, i)).collect::<Vec<T>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// A job shipped to a worker: borrows the worker's state, runs, and
/// reports back through the per-call result channel.
type Job<S> = Box<dyn FnOnce(&mut S) + Send>;

/// A pool of long-lived worker threads, each owning one state value.
///
/// Where [`par_map_indexed`] spawns scoped threads per call, a
/// `WorkerPool` spawns its workers **once** and feeds them jobs over
/// channels — the shape the region-sharded online engines need, where
/// each worker owns a shard's `DeploymentContext` and row cache across
/// thousands of epochs and a per-call spawn would throw that state away.
///
/// [`WorkerPool::run`] is the epoch barrier: it ships one job per state,
/// blocks until every worker has answered, and returns the outputs in
/// state order — the same `Vec` a serial loop over the states would
/// produce. Workers mark themselves as fan-out workers, so nested
/// [`par_map_indexed`] calls inside a job degrade to serial instead of
/// oversubscribing the machine. Dropping the pool closes the channels
/// and joins every thread.
pub struct WorkerPool<S> {
    senders: Vec<mpsc::Sender<Job<S>>>,
    handles: Vec<JoinHandle<()>>,
}

impl<S: Send + 'static> WorkerPool<S> {
    /// Spawns one named worker thread per state value; worker `w` owns
    /// `states[w]` for the pool's lifetime.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    #[must_use]
    pub fn new(states: Vec<S>) -> Self {
        let mut senders = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for (w, mut state) in states.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Job<S>>();
            let handle = std::thread::Builder::new()
                .name(format!("dmra-shard-{w}"))
                .spawn(move || {
                    ON_WORKER.with(|flag| flag.set(true));
                    while let Ok(job) = rx.recv() {
                        job(&mut state);
                    }
                })
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Number of workers (= number of states).
    #[must_use]
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Returns `true` if the pool has no workers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Runs `f(worker_index, &mut state, input)` on every worker — one
    /// input per worker, `inputs.len()` must equal [`WorkerPool::len`] —
    /// and blocks until all have finished (the epoch barrier). Outputs
    /// come back in worker order, so for a pure `f` the result equals
    /// the serial `states.iter_mut().zip(inputs).map(f).collect()`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.len()`, if a worker has died, or
    /// to propagate the first panicking job in worker order.
    pub fn run<In, Out, F>(&self, inputs: Vec<In>, f: F) -> Vec<Out>
    where
        In: Send + 'static,
        Out: Send + 'static,
        F: Fn(usize, &mut S, In) -> Out + Send + Sync + 'static,
    {
        assert_eq!(inputs.len(), self.senders.len(), "one input per worker");
        let f = Arc::new(f);
        let (result_tx, result_rx) = mpsc::channel::<(usize, std::thread::Result<Out>)>();
        for (w, (sender, input)) in self.senders.iter().zip(inputs).enumerate() {
            let f = Arc::clone(&f);
            let result_tx = result_tx.clone();
            let job: Job<S> = Box::new(move |state: &mut S| {
                let outcome = catch_unwind(AssertUnwindSafe(|| f(w, state, input)));
                // A dropped receiver means the caller already panicked;
                // nothing useful to do with the result then.
                let _ = result_tx.send((w, outcome));
            });
            sender.send(job).expect("worker thread is alive");
        }
        drop(result_tx);
        let mut slots: Vec<Option<std::thread::Result<Out>>> =
            (0..self.senders.len()).map(|_| None).collect();
        for _ in 0..self.senders.len() {
            let (w, outcome) = result_rx.recv().expect("worker answers the barrier");
            slots[w] = Some(outcome);
        }
        // Propagate the first panic in worker order, like the scoped
        // fan-outs above do in chunk order.
        let mut out = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.expect("every worker reported") {
                Ok(value) => out.push(value),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }
}

impl<S> Drop for WorkerPool<S> {
    fn drop(&mut self) {
        self.senders.clear(); // close the channels → workers exit their loops
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a job already delivered its
            // payload through the result channel; ignore the join error.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_every_thread_count() {
        let serial: Vec<u64> = (0..103).map(|i| (i as u64) * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 7, 64, 200] {
            let par = par_map_indexed(Threads::Fixed(workers), 103, |i| (i as u64) * 3 + 1);
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(
            par_map_indexed(Threads::Fixed(4), 0, |i| i),
            Vec::<usize>::new()
        );
        assert_eq!(par_map_indexed(Threads::Fixed(4), 1, |i| i), vec![0]);
        assert_eq!(par_map_indexed(Threads::Fixed(8), 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_fanout_degrades_to_serial_and_stays_correct() {
        let out = par_map_indexed(Threads::Fixed(4), 8, |i| {
            // Inner call runs on a worker thread → serial path.
            par_map_indexed(Threads::Fixed(4), 4, move |j| i * 10 + j)
        });
        let expect: Vec<Vec<usize>> = (0..8)
            .map(|i| (0..4).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn fixed_zero_clamps_to_one() {
        assert_eq!(Threads::Fixed(0).resolve(), 1);
    }

    #[test]
    fn auto_resolves_positive() {
        // Whatever the environment says, the answer is a usable count.
        assert!(Threads::Auto.resolve() >= 1);
    }

    #[test]
    fn scratch_variant_matches_serial_for_every_thread_count() {
        // The scratch is a reusable buffer; each item overwrites what it
        // reads, per the contract.
        let map = |scratch: &mut Vec<u64>, i: usize| {
            scratch.clear();
            scratch.extend((0..=i as u64).map(|x| x * 2));
            scratch.iter().sum::<u64>()
        };
        let mut serial_scratch = Vec::new();
        let serial: Vec<u64> = (0..57).map(|i| map(&mut serial_scratch, i)).collect();
        for workers in [1, 2, 3, 4, 16, 100] {
            let par = par_map_indexed_scratch(Threads::Fixed(workers), 57, Vec::new, map);
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn scratch_variant_builds_one_scratch_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out = par_map_indexed_scratch(
            Threads::Fixed(4),
            8,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
            },
            |(), i| i,
        );
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scratch_variant_handles_empty_input() {
        assert_eq!(
            par_map_indexed_scratch(Threads::Fixed(4), 0, || 0u8, |_, i| i),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn worker_pool_runs_jobs_in_worker_order_and_keeps_state() {
        let pool = WorkerPool::new(vec![0u64, 100, 200, 300]);
        assert_eq!(pool.len(), 4);
        for round in 1..=5u64 {
            let inputs: Vec<u64> = (0..4).map(|w| w as u64 + round).collect();
            let out = pool.run(inputs, |w, state, input| {
                *state += input;
                (w, *state)
            });
            let expect: Vec<(usize, u64)> = (0..4)
                .map(|w| {
                    let base = w as u64 * 100;
                    let gained: u64 = (1..=round).map(|r| w as u64 + r).sum();
                    (w, base + gained)
                })
                .collect();
            assert_eq!(out, expect, "round {round}");
        }
    }

    #[test]
    fn worker_pool_barrier_returns_every_output() {
        // Stagger the per-worker work so the fast workers answer first;
        // the barrier must still return outputs in worker order.
        let pool = WorkerPool::new(vec![(); 3]);
        let out = pool.run(vec![30u64, 1, 10], |w, (), ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            w
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn worker_pool_marks_workers_so_nested_fanouts_serialize() {
        let pool = WorkerPool::new(vec![(); 2]);
        let out = pool.run(vec![(), ()], |w, (), ()| {
            assert!(ON_WORKER.with(Cell::get), "pool worker is marked");
            par_map_indexed(Threads::Fixed(4), 3, move |j| w * 10 + j)
        });
        assert_eq!(out, vec![vec![0, 1, 2], vec![10, 11, 12]]);
    }

    #[test]
    fn worker_pool_propagates_job_panics_and_stays_usable() {
        let pool = WorkerPool::new(vec![0u32, 0]);
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![true, false], |_, state, explode| {
                *state += 1;
                assert!(!explode, "job exploded");
                *state
            })
        }));
        assert!(boom.is_err(), "panic propagates to the caller");
        // The surviving workers still answer the next barrier.
        let out = pool.run(vec![false, false], |_, state, _| *state);
        assert_eq!(out, vec![1, 1], "state survived the panicking round");
    }

    #[test]
    fn empty_worker_pool_is_fine() {
        let pool = WorkerPool::new(Vec::<u8>::new());
        assert!(pool.is_empty());
        let out: Vec<u8> = pool.run(Vec::new(), |_, s, ()| *s);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "one input per worker")]
    fn worker_pool_rejects_mismatched_inputs() {
        let pool = WorkerPool::new(vec![(), ()]);
        let _ = pool.run(vec![()], |_, (), ()| ());
    }

    #[test]
    fn workers_actually_run_concurrently_when_asked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let max_seen = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        par_map_indexed(Threads::Fixed(4), 4, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            max_seen.fetch_max(now, Ordering::SeqCst);
            // Hold the slot long enough for the other workers to start.
            std::thread::sleep(std::time::Duration::from_millis(30));
            live.fetch_sub(1, Ordering::SeqCst);
            i
        });
        // On a single-core host the scheduler may still serialize the
        // workers, so only assert that nothing deadlocked and at least
        // one worker ran.
        assert!(max_seen.load(Ordering::SeqCst) >= 1);
    }
}
