//! Substrate-level integration test: a gossip max-consensus protocol
//! running on the round engine, under every fault model.
//!
//! This deliberately exercises `dmra-proto` with a protocol that is *not*
//! DMRA, pinning down that the substrate (rounds, delays, loss, crashes,
//! quiescence grace) is generic and not entangled with the matcher.

use dmra_proto::{
    Address, Agent, DelayModel, DropPolicy, Envelope, MessageKind, Outbox, RoundEngine,
};
use dmra_types::UeId;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone, PartialEq)]
struct Value(u64);

impl MessageKind for Value {
    fn kind(&self) -> &'static str {
        "value"
    }
    fn size_bytes(&self) -> usize {
        8
    }
}

type Board = Rc<RefCell<Vec<u64>>>;

/// Each node starts with a value and floods improvements to its ring
/// neighbours until nobody learns anything new — classic max-consensus.
/// Final values are mirrored onto a shared board for inspection.
struct MaxGossip {
    me: u32,
    n: u32,
    best: u64,
    needs_broadcast: bool,
    board: Board,
}

impl MaxGossip {
    fn new(me: u32, n: u32, initial: u64, board: &Board) -> Self {
        board.borrow_mut()[me as usize] = initial;
        Self {
            me,
            n,
            best: initial,
            needs_broadcast: true,
            board: Rc::clone(board),
        }
    }

    fn neighbours(&self) -> [Address; 2] {
        [
            Address::Ue(UeId::new((self.me + 1) % self.n)),
            Address::Ue(UeId::new((self.me + self.n - 1) % self.n)),
        ]
    }
}

impl Agent<Value> for MaxGossip {
    fn address(&self) -> Address {
        Address::Ue(UeId::new(self.me))
    }

    fn on_round(&mut self, inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
        for env in inbox {
            if env.msg.0 > self.best {
                self.best = env.msg.0;
                self.board.borrow_mut()[self.me as usize] = self.best;
                self.needs_broadcast = true;
            }
        }
        if self.needs_broadcast {
            self.needs_broadcast = false;
            for n in self.neighbours() {
                out.send(n, Value(self.best));
            }
        }
    }
}

const MAX_VALUE: u64 = 1_000_000;

fn build_ring(n: u32, drop: DropPolicy) -> (RoundEngine<Value>, Board) {
    let board: Board = Rc::new(RefCell::new(vec![0; n as usize]));
    let mut engine: RoundEngine<Value> = RoundEngine::with_drop_policy(drop);
    for i in 0..n {
        // Node n/2 holds the global maximum.
        let initial = if i == n / 2 { MAX_VALUE } else { u64::from(i) };
        engine.register(Box::new(MaxGossip::new(i, n, initial, &board)));
    }
    (engine, board)
}

#[test]
fn gossip_converges_on_reliable_ring() {
    let (mut engine, board) = build_ring(16, DropPolicy::reliable());
    let stats = engine.run(100_000).expect("gossip quiesces");
    drop(engine);
    assert!(
        board.borrow().iter().all(|&v| v == MAX_VALUE),
        "consensus not reached: {:?}",
        board.borrow()
    );
    // The max needs at most n/2 hops to wrap the ring.
    assert!(stats.rounds <= 32, "rounds = {}", stats.rounds);
    assert_eq!(stats.by_kind.get("value"), Some(&stats.messages_sent));
    assert_eq!(stats.bytes_sent, stats.messages_sent * 8);
}

#[test]
fn gossip_with_delay_still_converges() {
    let (mut engine, board) = build_ring(12, DropPolicy::reliable());
    engine.set_delay_model(DelayModel::Random {
        max_extra: 3,
        seed: 1,
    });
    let slow = engine.run(100_000).expect("quiesces");
    drop(engine);
    assert!(board.borrow().iter().all(|&v| v == MAX_VALUE));

    let (mut fast_engine, _) = build_ring(12, DropPolicy::reliable());
    let fast = fast_engine.run(100_000).unwrap();
    assert!(slow.rounds >= fast.rounds, "delay cannot speed things up");
}

#[test]
fn gossip_under_loss_terminates_and_partially_converges() {
    // Loss can strand an improvement (this toy gossip has no retries —
    // unlike the DMRA agents), but the engine must always quiesce, and
    // the max wave still reaches a good chunk of the ring before dying
    // (expected ~1/p hops per direction at drop probability p).
    let mut reached_total = 0usize;
    for seed in 0..10u64 {
        let (mut engine, board) = build_ring(12, DropPolicy::new(0.2, seed));
        let stats = engine.run(100_000).expect("quiesces");
        drop(engine);
        assert!(stats.messages_dropped > 0 || stats.messages_sent > 0);
        let reached = board.borrow().iter().filter(|&&v| v == MAX_VALUE).count();
        assert!(reached >= 1, "seed {seed}: even the origin lost the max?");
        reached_total += reached;
    }
    // The wave dies at its first dropped hop in each direction, so the
    // expected reach is ≈ 2/p·(1−p) nodes ≈ 4–6 of 12 at p = 0.2; require
    // a third of the ring on average (measured: ~56/120).
    assert!(
        reached_total >= 40,
        "only {reached_total}/120 node-runs learned the max"
    );
}

#[test]
fn crashed_gossip_node_does_not_block_quiescence() {
    let (mut engine, board) = build_ring(8, DropPolicy::reliable());
    // Node 2 dies immediately: the ring is cut at one point, but messages
    // flowing the other way around still reach every live node.
    engine.crash_at(Address::Ue(UeId::new(2)), 0);
    let stats = engine.run(10_000).expect("quiesces despite the crash");
    drop(engine);
    assert!(stats.rounds < 100);
    for (i, &v) in board.borrow().iter().enumerate() {
        if i != 2 {
            assert_eq!(v, MAX_VALUE, "live node {i} missed the max");
        }
    }
}
