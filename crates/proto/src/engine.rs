//! The synchronous-round scheduler.

use crate::agent::{Address, Agent, Envelope, MessageKind, Outbox};
use crate::delay::DelayModel;
use crate::fault::DropPolicy;
use dmra_types::{Error, Result};
use std::collections::{BTreeMap, HashMap};

/// Statistics of one protocol run — the communication cost of the
/// decentralized algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Rounds executed before quiescence (the final silent round included).
    pub rounds: usize,
    /// Messages successfully delivered.
    pub messages_sent: u64,
    /// Messages lost to fault injection.
    pub messages_dropped: u64,
    /// Messages that reached their delivery round addressed to an agent
    /// already fail-stopped ([`RoundEngine::crash_at`]): they left the
    /// sender (so they count in `messages_sent`) but were never handed to
    /// any inbox.
    pub absorbed_by_crash: u64,
    /// Approximate bytes delivered ([`MessageKind::size_bytes`]).
    pub bytes_sent: u64,
    /// Delivered-message counts by [`MessageKind::kind`] label.
    pub by_kind: BTreeMap<&'static str, u64>,
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages ({} dropped, {} absorbed by crash, {} bytes)",
            self.rounds,
            self.messages_sent,
            self.messages_dropped,
            self.absorbed_by_crash,
            self.bytes_sent
        )?;
        for (kind, count) in &self.by_kind {
            write!(f, "; {kind}: {count}")?;
        }
        Ok(())
    }
}

/// A per-round trace record handed to the observer of
/// [`RoundEngine::run_observed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundTrace {
    /// Round index (0-based).
    pub round: usize,
    /// Messages delivered to agents this round.
    pub delivered: u64,
    /// Messages successfully staged for future delivery this round.
    pub sent: u64,
    /// Messages lost to fault injection this round.
    pub dropped: u64,
    /// Messages due this round whose addressee had already fail-stopped;
    /// they evaporate instead of being delivered.
    pub absorbed: u64,
    /// Messages still in flight (delayed) after this round.
    pub in_flight: u64,
}

/// Drives a set of [`Agent`]s in synchronous rounds until quiescence.
///
/// Determinism contract: agents act in ascending [`Address`] order, and each
/// inbox is sorted by sender address. Two runs with the same agents, seeds
/// and drop policy produce identical message sequences.
pub struct RoundEngine<M> {
    agents: Vec<Box<dyn Agent<M>>>,
    by_address: HashMap<Address, usize>,
    drop_policy: DropPolicy,
    delay: DelayModel,
    /// Agents that fail-stop at the given round: from that round on they
    /// are never invoked and everything addressed to them is dropped.
    crashes: HashMap<Address, usize>,
    /// Consecutive fully-silent rounds required before the run ends.
    quiescence_grace: usize,
}

impl<M: 'static> std::fmt::Debug for RoundEngine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundEngine")
            .field("agents", &self.agents.len())
            .field("drop_policy", &self.drop_policy)
            .finish()
    }
}

impl<M: MessageKind + 'static> RoundEngine<M> {
    /// Creates an engine with reliable (lossless) delivery.
    #[must_use]
    pub fn new() -> Self {
        Self::with_drop_policy(DropPolicy::reliable())
    }

    /// Creates an engine that drops messages per `policy`.
    #[must_use]
    pub fn with_drop_policy(policy: DropPolicy) -> Self {
        Self {
            agents: Vec::new(),
            by_address: HashMap::new(),
            drop_policy: policy,
            delay: DelayModel::Immediate,
            crashes: HashMap::new(),
            quiescence_grace: 1,
        }
    }

    /// Sets the delivery-delay model (default: next-round delivery).
    pub fn set_delay_model(&mut self, delay: DelayModel) {
        self.delay = delay;
    }

    /// Fail-stops the agent at `address` from round `round` onwards: it is
    /// never invoked again and messages addressed to it vanish. Models a
    /// BS (or UE) going dark mid-protocol.
    pub fn crash_at(&mut self, address: Address, round: usize) {
        self.crashes.insert(address, round);
    }

    /// Requires `rounds` consecutive fully-silent rounds before declaring
    /// quiescence (default 1). Timeout-driven agents (retry logic) only
    /// act after observing silence, so a grace window keeps them alive
    /// long enough to fire — essential when other agents have crashed.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn set_quiescence_grace(&mut self, rounds: usize) {
        assert!(rounds > 0, "grace must be at least one round");
        self.quiescence_grace = rounds;
    }

    /// Registers an agent.
    ///
    /// # Panics
    ///
    /// Panics if another agent already claimed the same address.
    pub fn register(&mut self, agent: Box<dyn Agent<M>>) {
        let addr = agent.address();
        let idx = self.agents.len();
        let prev = self.by_address.insert(addr, idx);
        assert!(prev.is_none(), "duplicate agent address {addr}");
        self.agents.push(agent);
    }

    /// Number of registered agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Runs rounds until a round in which no agent sends a message, or
    /// until `max_rounds` is exhausted.
    ///
    /// Messages addressed to [`Address::Cloud`] (or any unregistered
    /// address) are counted as delivered but silently absorbed — the cloud
    /// is an infinite sink in the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonTermination`] if `max_rounds` elapses with
    /// messages still flowing; the paper's algorithm always quiesces, so
    /// hitting the bound indicates a bug in the agents.
    pub fn run(&mut self, max_rounds: usize) -> Result<RunStats> {
        self.run_observed(max_rounds, &mut |_| {})
    }

    /// Like [`RoundEngine::run`], invoking `observer` with a
    /// [`RoundTrace`] after every executed round — the protocol's
    /// convergence timeline, without touching message payloads.
    ///
    /// # Errors
    ///
    /// Same as [`RoundEngine::run`].
    pub fn run_observed(
        &mut self,
        max_rounds: usize,
        observer: &mut dyn FnMut(RoundTrace),
    ) -> Result<RunStats> {
        // Telemetry is observe-only and off the hot path: the registry
        // counters and the flight-record stream are touched once per
        // *round*, never per message, and neither feeds back into drop
        // or delay sampling. The flight observer is only reachable via
        // the process-wide slot — `run_decentralized` constructs its
        // engine internally, so there is no `with_observer` path here.
        let obs_on = dmra_obs::enabled();
        let flight = dmra_obs::epoch_observer();
        let proto_counters = obs_on.then(|| {
            let g = dmra_obs::global();
            (
                g.counter("proto.rounds"),
                g.counter("proto.messages_sent"),
                g.counter("proto.messages_dropped"),
                g.counter("proto.delayed_deliveries"),
            )
        });
        // Agents act in ascending address order regardless of how they were
        // registered — part of the determinism contract.
        self.agents.sort_by_key(|a| a.address());
        self.by_address = self
            .agents
            .iter()
            .enumerate()
            .map(|(i, a)| (a.address(), i))
            .collect();
        let mut stats = RunStats::default();
        let mut sampler = self.delay.sampler();
        let mut silent_streak = 0usize;
        // In-flight messages, tagged with the round they become deliverable.
        let mut pending: Vec<(usize, Envelope<M>)> = Vec::new();
        for round in 0..max_rounds {
            stats.rounds += 1;
            // Deliver everything due this round.
            let mut inboxes: HashMap<Address, Vec<Envelope<M>>> = HashMap::new();
            let mut still_pending = Vec::with_capacity(pending.len());
            let mut delivered = 0u64;
            let mut absorbed = 0u64;
            for (due, env) in pending.drain(..) {
                if due <= round {
                    // A message due for an agent that has already
                    // fail-stopped evaporates: it was sent, but it is not
                    // delivered — it is absorbed by the crash.
                    if self.crashes.get(&env.to).is_some_and(|&at| round >= at) {
                        absorbed += 1;
                        stats.absorbed_by_crash += 1;
                    } else {
                        delivered += 1;
                        inboxes.entry(env.to).or_default().push(env);
                    }
                } else {
                    still_pending.push((due, env));
                }
            }
            pending = still_pending;
            let mut next: Vec<Envelope<M>> = Vec::new();
            for agent in &mut self.agents {
                let addr = agent.address();
                let mut inbox = inboxes.remove(&addr).unwrap_or_default();
                if self.crashes.get(&addr).is_some_and(|&at| round >= at) {
                    // Fail-stop: nothing is sent (the delivery loop above
                    // already absorbed anything addressed here).
                    continue;
                }
                inbox.sort_by_key(|e| e.from);
                let mut out = Outbox::new(addr);
                agent.on_round(&inbox, &mut out);
                next.extend(out.into_staged());
            }
            let quiescent = next.is_empty() && pending.is_empty();
            let mut sent = 0u64;
            let mut dropped = 0u64;
            let mut delayed = 0u64;
            for env in next {
                if self.drop_policy.should_drop() {
                    dropped += 1;
                    stats.messages_dropped += 1;
                } else {
                    sent += 1;
                    stats.messages_sent += 1;
                    stats.bytes_sent += env.msg.size_bytes() as u64;
                    *stats.by_kind.entry(env.msg.kind()).or_insert(0) += 1;
                    let extra = sampler.next_extra() as usize;
                    if extra > 0 {
                        delayed += 1;
                    }
                    pending.push((round + 1 + extra, env));
                }
            }
            let trace = RoundTrace {
                round,
                delivered,
                sent,
                dropped,
                absorbed,
                in_flight: pending.len() as u64,
            };
            observer(trace);
            if let Some((rounds_c, sent_c, dropped_c, delayed_c)) = &proto_counters {
                rounds_c.inc();
                sent_c.add(sent);
                dropped_c.add(dropped);
                delayed_c.add(delayed);
            }
            if let Some(flight) = &flight {
                flight.on_record(
                    &dmra_obs::EpochRecord::new("proto.round", round as u64)
                        .det("delivered", trace.delivered)
                        .det("sent", sent)
                        .det("dropped", dropped)
                        .det("absorbed", absorbed)
                        .det("in_flight", trace.in_flight)
                        .aux("delayed", delayed),
                );
            }
            if quiescent {
                silent_streak += 1;
                if silent_streak >= self.quiescence_grace {
                    if obs_on {
                        dmra_obs::global()
                            .histogram("proto.rounds_to_converge")
                            .record(stats.rounds as u64);
                    }
                    return Ok(stats);
                }
            } else {
                silent_streak = 0;
            }
        }
        Err(Error::NonTermination {
            bound: max_rounds,
            n_ues: self
                .agents
                .iter()
                .filter(|a| matches!(a.address(), Address::Ue(_)))
                .count(),
            n_bss: self
                .agents
                .iter()
                .filter(|a| matches!(a.address(), Address::Bs(_)))
                .count(),
        })
    }

    /// Consumes the engine and returns the agents (ordered by address), so
    /// callers can extract final agent state after a run.
    #[must_use]
    pub fn into_agents(self) -> Vec<Box<dyn Agent<M>>> {
        self.agents
    }
}

impl<M: MessageKind + 'static> Default for RoundEngine<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmra_types::{BsId, UeId};

    /// Sends `burst` messages to a target on the first round, then echoes
    /// every received message back once.
    struct Echo {
        me: Address,
        target: Address,
        burst: u32,
        started: bool,
        received: u32,
    }

    impl Echo {
        fn new(me: Address, target: Address, burst: u32) -> Self {
            Self {
                me,
                target,
                burst,
                started: false,
                received: 0,
            }
        }
    }

    impl Agent<u32> for Echo {
        fn address(&self) -> Address {
            self.me
        }
        fn on_round(&mut self, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            if !self.started {
                self.started = true;
                for i in 0..self.burst {
                    out.send(self.target, i);
                }
            }
            self.received += inbox.len() as u32;
        }
    }

    #[test]
    fn quiesces_when_silent() {
        let mut e: RoundEngine<u32> = RoundEngine::new();
        e.register(Box::new(Echo::new(
            Address::Ue(UeId::new(0)),
            Address::Bs(BsId::new(0)),
            5,
        )));
        e.register(Box::new(Echo::new(
            Address::Bs(BsId::new(0)),
            Address::Ue(UeId::new(0)),
            0,
        )));
        let stats = e.run(10).unwrap();
        // Round 1: UE bursts 5. Round 2: BS receives them, sends nothing
        // (burst 0). Round 2 itself is silent ⇒ stop.
        assert_eq!(stats.messages_sent, 5);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.by_kind.get("u32"), Some(&5));
        assert_eq!(stats.bytes_sent, 20); // five u32 payloads
        let text = stats.to_string();
        assert!(text.contains("2 rounds"));
        assert!(text.contains("u32: 5"));
    }

    #[test]
    fn unregistered_addresses_absorb_messages() {
        let mut e: RoundEngine<u32> = RoundEngine::new();
        e.register(Box::new(Echo::new(
            Address::Ue(UeId::new(0)),
            Address::Cloud,
            3,
        )));
        let stats = e.run(10).unwrap();
        assert_eq!(stats.messages_sent, 3);
    }

    #[test]
    fn nontermination_is_reported() {
        // Two agents that burst at each other forever (each echoes burst>0
        // every round by resetting `started`).
        struct Chatter(Address, Address);
        impl Agent<u32> for Chatter {
            fn address(&self) -> Address {
                self.0
            }
            fn on_round(&mut self, _i: &[Envelope<u32>], out: &mut Outbox<u32>) {
                out.send(self.1, 0);
            }
        }
        let mut e: RoundEngine<u32> = RoundEngine::new();
        e.register(Box::new(Chatter(
            Address::Ue(UeId::new(0)),
            Address::Ue(UeId::new(1)),
        )));
        e.register(Box::new(Chatter(
            Address::Ue(UeId::new(1)),
            Address::Ue(UeId::new(0)),
        )));
        let err = e.run(50).unwrap_err();
        assert_eq!(
            err,
            Error::NonTermination {
                bound: 50,
                n_ues: 2,
                n_bss: 0,
            }
        );
    }

    #[test]
    #[should_panic(expected = "duplicate agent address")]
    fn duplicate_address_panics() {
        let mut e: RoundEngine<u32> = RoundEngine::new();
        let a = Address::Ue(UeId::new(0));
        e.register(Box::new(Echo::new(a, Address::Cloud, 0)));
        e.register(Box::new(Echo::new(a, Address::Cloud, 0)));
    }

    #[test]
    fn drop_policy_loses_messages() {
        let mut e: RoundEngine<u32> = RoundEngine::with_drop_policy(DropPolicy::new(0.5, 3));
        e.register(Box::new(Echo::new(
            Address::Ue(UeId::new(0)),
            Address::Cloud,
            1000,
        )));
        let stats = e.run(10).unwrap();
        assert_eq!(stats.messages_sent + stats.messages_dropped, 1000);
        assert!(stats.messages_dropped > 300, "{stats:?}");
        assert!(stats.messages_sent > 300, "{stats:?}");
    }

    #[test]
    fn delivery_order_is_by_sender_address() {
        // One receiver, three senders registered in scrambled order; the
        // receiver records the sender order it observed.
        struct Recorder {
            me: Address,
            seen: Vec<Address>,
        }
        impl Agent<u32> for Recorder {
            fn address(&self) -> Address {
                self.me
            }
            fn on_round(&mut self, inbox: &[Envelope<u32>], _out: &mut Outbox<u32>) {
                self.seen.extend(inbox.iter().map(|e| e.from));
            }
        }
        let rx = Address::Bs(BsId::new(0));
        let mut e: RoundEngine<u32> = RoundEngine::new();
        for id in [2u32, 0, 1] {
            e.register(Box::new(Echo::new(Address::Ue(UeId::new(id)), rx, 1)));
        }
        e.register(Box::new(Recorder {
            me: rx,
            seen: Vec::new(),
        }));
        e.run(10).unwrap();
        let agents = e.into_agents();
        let recorder = agents
            .iter()
            .find_map(|a| (a.as_ref() as &dyn std::any::Any).downcast_ref::<Recorder>())
            .expect("recorder agent survives the run");
        // The three bursts all land in the same round; the inbox must be
        // sorted by sender address, not by registration order (2, 0, 1).
        assert_eq!(
            recorder.seen,
            vec![
                Address::Ue(UeId::new(0)),
                Address::Ue(UeId::new(1)),
                Address::Ue(UeId::new(2)),
            ]
        );
        // Registration order is also irrelevant to the agents' placement:
        // `into_agents` hands them back sorted by address, recorder last.
        assert_eq!(agents.last().unwrap().address(), rx);
    }

    #[test]
    fn crash_absorption_balances_the_message_ledger() {
        // 200 messages fan out with random delays spanning the crash
        // round, so some arrive before the receiver dies and the rest are
        // absorbed. The ledger must balance exactly:
        //   sent == delivered + absorbed + still_in_flight.
        let rx = Address::Bs(BsId::new(0));
        let mut e: RoundEngine<u32> = RoundEngine::new();
        e.set_delay_model(DelayModel::Random {
            max_extra: 5,
            seed: 11,
        });
        e.crash_at(rx, 3);
        e.register(Box::new(Echo::new(Address::Ue(UeId::new(0)), rx, 200)));
        e.register(Box::new(Echo::new(rx, Address::Ue(UeId::new(0)), 0)));
        let mut traces = Vec::new();
        let stats = e.run_observed(100, &mut |t| traces.push(t)).unwrap();
        let sent: u64 = traces.iter().map(|t| t.sent).sum();
        let delivered: u64 = traces.iter().map(|t| t.delivered).sum();
        let absorbed: u64 = traces.iter().map(|t| t.absorbed).sum();
        let in_flight = traces.last().unwrap().in_flight;
        assert_eq!(sent, delivered + absorbed + in_flight);
        assert_eq!(in_flight, 0, "quiescence leaves nothing in flight");
        assert_eq!(sent, stats.messages_sent);
        assert_eq!(absorbed, stats.absorbed_by_crash);
        // Delays 1..=6 straddle the crash at round 3: both outcomes occur.
        assert!(delivered > 0, "{stats:?}");
        assert!(absorbed > 0, "{stats:?}");
        assert_eq!(delivered + absorbed, 200);
        assert!(stats.to_string().contains("absorbed by crash"));
    }

    #[test]
    fn run_twice_with_same_seed_is_identical() {
        let build = || {
            let mut e: RoundEngine<u32> = RoundEngine::with_drop_policy(DropPolicy::new(0.3, 9));
            for id in 0..5u32 {
                e.register(Box::new(Echo::new(
                    Address::Ue(UeId::new(id)),
                    Address::Cloud,
                    20,
                )));
            }
            e
        };
        let s1 = build().run(10).unwrap();
        let s2 = build().run(10).unwrap();
        assert_eq!(s1, s2);
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use crate::agent::{Address, Agent, Envelope, Outbox};
    use dmra_types::UeId;

    /// Bursts once, then stays silent.
    struct OneShot(Address, u32, bool);
    impl Agent<u32> for OneShot {
        fn address(&self) -> Address {
            self.0
        }
        fn on_round(&mut self, _inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            if !self.2 {
                self.2 = true;
                for i in 0..self.1 {
                    out.send(Address::Cloud, i);
                }
            }
        }
    }

    #[test]
    fn trace_totals_match_stats() {
        let mut e: RoundEngine<u32> = RoundEngine::new();
        e.register(Box::new(OneShot(Address::Ue(UeId::new(0)), 7, false)));
        let mut traces = Vec::new();
        let stats = e.run_observed(100, &mut |t| traces.push(t)).unwrap();
        let sent: u64 = traces.iter().map(|t| t.sent).sum();
        let delivered: u64 = traces.iter().map(|t| t.delivered).sum();
        assert_eq!(sent, stats.messages_sent);
        assert_eq!(delivered, stats.messages_sent); // everything delivered
        assert_eq!(traces.len(), stats.rounds);
        // Rounds are numbered consecutively from zero.
        assert!(traces.iter().enumerate().all(|(i, t)| t.round == i));
        // Nothing left in flight at quiescence.
        assert_eq!(traces.last().unwrap().in_flight, 0);
    }

    #[test]
    fn run_and_run_observed_agree() {
        let build = || {
            let mut e: RoundEngine<u32> = RoundEngine::new();
            e.register(Box::new(OneShot(Address::Ue(UeId::new(0)), 5, false)));
            e
        };
        let a = build().run(100).unwrap();
        let b = build().run_observed(100, &mut |_| {}).unwrap();
        assert_eq!(a, b);
    }
}
