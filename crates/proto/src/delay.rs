//! Message-delivery delay models.
//!
//! The synchronous-round engine normally delivers every message in the
//! next round. Real control channels add latency; a [`DelayModel`] lets a
//! message take several rounds to arrive, which exercises the protocol's
//! retry/timeout logic (a UE that waits too long re-sends its proposal)
//! and its tolerance to stale resource views.

use dmra_geo::rng::component_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// How many extra rounds a message spends in flight.
#[derive(Debug, Clone, Default)]
pub enum DelayModel {
    /// Deliver next round (the default synchronous behaviour).
    #[default]
    Immediate,
    /// Every message takes `1 + extra` rounds to arrive.
    Fixed {
        /// Extra in-flight rounds beyond the synchronous one.
        extra: u32,
    },
    /// Each message independently takes `1 + U{0..=max_extra}` rounds.
    Random {
        /// Maximum extra rounds.
        max_extra: u32,
        /// Seed for the per-message draws.
        seed: u64,
    },
}

impl DelayModel {
    /// Returns the per-message extra delay sampler.
    pub(crate) fn sampler(&self) -> DelaySampler {
        match *self {
            DelayModel::Immediate => DelaySampler::Constant(0),
            DelayModel::Fixed { extra } => DelaySampler::Constant(extra),
            DelayModel::Random { max_extra, seed } => {
                DelaySampler::Random(max_extra, Box::new(component_rng(seed, "proto-delay")))
            }
        }
    }
}

/// Stateful sampler used by the engine.
#[derive(Debug)]
pub(crate) enum DelaySampler {
    Constant(u32),
    Random(u32, Box<StdRng>),
}

impl DelaySampler {
    pub(crate) fn next_extra(&mut self) -> u32 {
        match self {
            DelaySampler::Constant(extra) => *extra,
            DelaySampler::Random(max, rng) => {
                if *max == 0 {
                    0
                } else {
                    rng.random_range(0..=*max)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_and_fixed_are_constant() {
        let mut s = DelayModel::Immediate.sampler();
        assert_eq!(s.next_extra(), 0);
        let mut s = DelayModel::Fixed { extra: 3 }.sampler();
        assert_eq!(s.next_extra(), 3);
        assert_eq!(s.next_extra(), 3);
    }

    #[test]
    fn random_is_bounded_and_seeded() {
        let draws = |seed: u64| -> Vec<u32> {
            let mut s = DelayModel::Random { max_extra: 4, seed }.sampler();
            (0..100).map(|_| s.next_extra()).collect()
        };
        let a = draws(7);
        let b = draws(7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&d| d <= 4));
        // All values in range should appear over 100 draws.
        for v in 0..=4u32 {
            assert!(a.contains(&v), "delay {v} never drawn");
        }
    }
}
