//! Seeded message-loss fault injection.

use dmra_geo::rng::component_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// A Bernoulli message-drop policy.
///
/// Real RAN control channels lose messages; the paper's algorithm is
/// iterative and self-correcting (an unanswered proposal is simply retried
/// next round), and the fault-injection tests exercise exactly that claim.
#[derive(Debug, Clone)]
pub struct DropPolicy {
    probability: f64,
    rng: StdRng,
}

impl DropPolicy {
    /// Creates a policy dropping each message independently with the given
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1)`. A probability of 1
    /// would drop everything and no protocol could make progress.
    #[must_use]
    pub fn new(probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "drop probability must be in [0, 1), got {probability}"
        );
        Self {
            probability,
            rng: component_rng(seed, "proto-drop-policy"),
        }
    }

    /// A policy that never drops anything.
    #[must_use]
    pub fn reliable() -> Self {
        Self::new(0.0, 0)
    }

    /// The configured drop probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Decides the fate of the next message. `true` means *drop*.
    pub fn should_drop(&mut self) -> bool {
        self.probability > 0.0 && self.rng.random_bool(self.probability)
    }
}

impl Default for DropPolicy {
    fn default() -> Self {
        Self::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_never_drops() {
        let mut p = DropPolicy::reliable();
        assert!((0..10_000).all(|_| !p.should_drop()));
    }

    #[test]
    fn drop_rate_is_near_probability() {
        let mut p = DropPolicy::new(0.3, 42);
        let drops = (0..50_000).filter(|_| p.should_drop()).count();
        let rate = drops as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = DropPolicy::new(0.5, 7);
        let mut b = DropPolicy::new(0.5, 7);
        for _ in 0..100 {
            assert_eq!(a.should_drop(), b.should_drop());
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn probability_one_is_rejected() {
        let _ = DropPolicy::new(1.0, 0);
    }
}
