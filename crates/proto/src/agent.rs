//! Agents, addresses, envelopes and outboxes.

use dmra_types::{BsId, UeId};
use std::fmt;

/// The address of a protocol participant.
///
/// The DMRA protocol has three kinds of participants: UEs, BSs and the
/// remote cloud (which absorbs forwarded tasks and never replies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Address {
    /// A user equipment.
    Ue(UeId),
    /// A base station.
    Bs(BsId),
    /// The remote cloud (a sink; registering an agent for it is optional).
    Cloud,
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Address::Ue(id) => write!(f, "{id}"),
            Address::Bs(id) => write!(f, "{id}"),
            Address::Cloud => write!(f, "cloud"),
        }
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sender address.
    pub from: Address,
    /// Recipient address.
    pub to: Address,
    /// Payload.
    pub msg: M,
}

/// Classifies messages for the engine's per-kind accounting.
///
/// Implementations return a small set of static labels (e.g.
/// `"service-request"`, `"accept"`, `"resource-broadcast"`).
pub trait MessageKind {
    /// A static label naming this message's kind.
    fn kind(&self) -> &'static str;

    /// Approximate wire size of this message in bytes, for the engine's
    /// traffic accounting. The default (64 bytes) models a small control
    /// message with headers.
    fn size_bytes(&self) -> usize {
        64
    }
}

impl MessageKind for u32 {
    fn kind(&self) -> &'static str {
        "u32"
    }

    fn size_bytes(&self) -> usize {
        4
    }
}

/// The sending half handed to an agent during its round.
///
/// Collects outgoing envelopes; the engine delivers them at the start of
/// the *next* round (synchronous-round semantics, as in the paper's
/// iteration structure).
#[derive(Debug)]
pub struct Outbox<M> {
    from: Address,
    staged: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    pub(crate) fn new(from: Address) -> Self {
        Self {
            from,
            staged: Vec::new(),
        }
    }

    /// Stages a message for delivery next round.
    pub fn send(&mut self, to: Address, msg: M) {
        self.staged.push(Envelope {
            from: self.from,
            to,
            msg,
        });
    }

    /// Number of messages staged so far this round.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    pub(crate) fn into_staged(self) -> Vec<Envelope<M>> {
        self.staged
    }
}

/// A protocol participant driven by the [`RoundEngine`].
///
/// The [`std::any::Any`] supertrait (every agent owns its state, so the
/// `'static` bound costs nothing) lets callers recover concrete agent
/// state after [`RoundEngine::into_agents`] by upcasting a
/// `&dyn Agent<M>` to `&dyn Any` and downcasting to the known type.
///
/// [`RoundEngine`]: crate::RoundEngine
/// [`RoundEngine::into_agents`]: crate::RoundEngine::into_agents
pub trait Agent<M>: std::any::Any {
    /// The address this agent receives messages at.
    fn address(&self) -> Address;

    /// Processes one synchronous round.
    ///
    /// `inbox` contains every message addressed to this agent that was sent
    /// in the previous round, sorted by sender address for determinism.
    /// Messages staged on `out` are delivered next round.
    fn on_round(&mut self, inbox: &[Envelope<M>], out: &mut Outbox<M>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_display_and_ordering() {
        assert_eq!(Address::Ue(UeId::new(3)).to_string(), "ue3");
        assert_eq!(Address::Bs(BsId::new(1)).to_string(), "bs1");
        assert_eq!(Address::Cloud.to_string(), "cloud");
        // UEs sort before BSs before Cloud (enum order) — the delivery
        // order contract.
        assert!(Address::Ue(UeId::new(999)) < Address::Bs(BsId::new(0)));
        assert!(Address::Bs(BsId::new(999)) < Address::Cloud);
    }

    #[test]
    fn outbox_stamps_sender() {
        let mut out: Outbox<u32> = Outbox::new(Address::Ue(UeId::new(7)));
        out.send(Address::Bs(BsId::new(2)), 42);
        assert_eq!(out.staged_len(), 1);
        let staged = out.into_staged();
        assert_eq!(staged[0].from, Address::Ue(UeId::new(7)));
        assert_eq!(staged[0].to, Address::Bs(BsId::new(2)));
        assert_eq!(staged[0].msg, 42);
    }
}
