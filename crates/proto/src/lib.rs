//! A round-based message-passing substrate for decentralized algorithms.
//!
//! The paper specifies DMRA as a protocol: in each iteration UEs send
//! service requests, BSs select winners and broadcast their remaining
//! resources, and the loop repeats "until no UE sends a service request".
//! This crate provides the execution substrate for that style of algorithm:
//!
//! * [`Agent`] — a node with an [`Address`] that reacts to its inbox once
//!   per round and emits messages through an [`Outbox`].
//! * [`RoundEngine`] — a synchronous-round scheduler with deterministic
//!   delivery order, quiescence detection (a round in which nobody sends
//!   terminates the run), per-kind message accounting and optional seeded
//!   message-drop fault injection.
//!
//! The substrate is generic over the message type; `dmra-core` instantiates
//! it with the DMRA protocol messages, and the engine's [`RunStats`] are how
//! we report the protocol's communication cost.
//!
//! # Examples
//!
//! A two-agent ping-pong that quiesces after a fixed number of exchanges:
//!
//! ```
//! use dmra_proto::{Address, Agent, Envelope, Outbox, RoundEngine};
//! use dmra_types::UeId;
//!
//! struct Pinger { me: Address, peer: Address, remaining: u32 }
//!
//! impl Agent<u32> for Pinger {
//!     fn address(&self) -> Address { self.me }
//!     fn on_round(&mut self, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
//!         let poked = !inbox.is_empty();
//!         if (poked || self.me == Address::Ue(UeId::new(0))) && self.remaining > 0 {
//!             self.remaining -= 1;
//!             out.send(self.peer, self.remaining);
//!         }
//!     }
//! }
//!
//! let a = Address::Ue(UeId::new(0));
//! let b = Address::Ue(UeId::new(1));
//! let mut engine = RoundEngine::new();
//! engine.register(Box::new(Pinger { me: a, peer: b, remaining: 3 }));
//! engine.register(Box::new(Pinger { me: b, peer: a, remaining: 3 }));
//! let stats = engine.run(100).expect("quiesces");
//! assert_eq!(stats.messages_sent, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod delay;
mod engine;
mod fault;

pub use agent::{Address, Agent, Envelope, MessageKind, Outbox};
pub use delay::DelayModel;
pub use engine::{RoundEngine, RoundTrace, RunStats};
pub use fault::DropPolicy;
