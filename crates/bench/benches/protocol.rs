//! Overhead of the genuinely decentralized execution relative to the
//! centralized-state matcher, and the cost of fault injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmra_bench::bench_instance;
use dmra_core::agents::run_decentralized;
use dmra_core::{Allocator, Dmra, DmraConfig};
use dmra_proto::DropPolicy;
use std::hint::black_box;

fn bench_centralized_vs_decentralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution-style");
    group.sample_size(10);
    for &n_ues in &[200usize, 400] {
        let instance = bench_instance(n_ues, 7);
        let config = DmraConfig::paper_defaults();
        group.bench_with_input(
            BenchmarkId::new("centralized", n_ues),
            &instance,
            |b, inst| {
                let dmra = Dmra::new(config);
                b.iter(|| black_box(dmra.allocate(black_box(inst))))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decentralized", n_ues),
            &instance,
            |b, inst| {
                b.iter(|| {
                    black_box(
                        run_decentralized(inst, &config, DropPolicy::reliable(), 100_000).unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decentralized-lossy-10pct", n_ues),
            &instance,
            |b, inst| {
                b.iter(|| {
                    black_box(
                        run_decentralized(inst, &config, DropPolicy::new(0.1, 3), 100_000).unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_centralized_vs_decentralized);
criterion_main!(benches);
