//! Wall-clock performance of the batched link-evaluation kernel and the
//! cross-epoch candidate-row cache.
//!
//! Three groups:
//!
//! * `linkbatch/kernel` — the raw SoA kernel (`LinkEvaluator::evaluate_batch`,
//!   exact and approx modes) against the scalar `evaluate_at_distance`
//!   loop on identical lane sets;
//! * `linkbatch/build` — a 2000-UE instance build through the pruned +
//!   batched scan vs the exhaustive scalar scan;
//! * `linkbatch/mobility` — the sticky mostly-stationary mobility loop on
//!   the row-cached incremental engine vs the full-rebuild scratch loop.
//!
//! The gated paper-scale numbers live in `BENCH_linkbatch.json`
//! (`figures -- bench_linkbatch`); this bench is for profiling iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmra_core::{CandidateScan, ProblemInstance, Threads};
use dmra_radio::{BatchMode, LinkBatch, LinkEvaluator, RadioConfig};
use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
use dmra_sim::ScenarioConfig;
use dmra_types::{Dbm, Meters, Point};
use std::hint::black_box;

fn bench_kernel(c: &mut Criterion) {
    let config = RadioConfig::paper_defaults();
    let exact = LinkEvaluator::new(config).with_batch_mode(BatchMode::Exact);
    let approx = LinkEvaluator::new(config).with_batch_mode(BatchMode::Approx);
    let ue = Point::new(1500.0, 1500.0);
    let tx = Dbm::new(10.0);
    // A lane per BS of a 16x16 grid — far more candidates than any pruned
    // row sees, so per-lane costs dominate the fixed batch overhead.
    let lanes: Vec<(Point, Meters)> = (0..256)
        .map(|i| {
            let bs = Point::new(200.0 * (i % 16) as f64, 200.0 * (i / 16) as f64);
            (bs, ue.distance(bs))
        })
        .collect();
    let mut group = c.benchmark_group("linkbatch/kernel");
    group.bench_function(BenchmarkId::new("scalar", lanes.len()), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(bs, d) in &lanes {
                let m = exact.evaluate_at_distance(tx, ue, bs, d, 0.0);
                acc += m.per_rrb_rate.get();
            }
            black_box(acc)
        })
    });
    let mut batch = LinkBatch::new();
    let mut run_batch = |evaluator: &LinkEvaluator| {
        batch.clear();
        for (j, &(bs, d)) in lanes.iter().enumerate() {
            batch.push(j as u32, bs, d, 0.0);
        }
        evaluator.evaluate_batch(tx, ue, 0.0, &mut batch);
        let mut acc = 0.0f64;
        for j in 0..batch.len() {
            acc += batch.metrics(j).per_rrb_rate.get();
        }
        acc
    };
    group.bench_function(BenchmarkId::new("batch_exact", lanes.len()), |b| {
        b.iter(|| black_box(run_batch(&exact)))
    });
    group.bench_function(BenchmarkId::new("batch_approx", lanes.len()), |b| {
        b.iter(|| black_box(run_batch(&approx)))
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let base = dmra_bench::bench_instance(2000, 7);
    let rebuild = |scan: CandidateScan| {
        ProblemInstance::build_with_scan(
            base.sps().to_vec(),
            base.bss().to_vec(),
            base.ues().to_vec(),
            base.catalog(),
            *base.pricing(),
            *base.radio(),
            base.coverage(),
            Threads::Auto,
            scan,
        )
        .expect("bench instance rebuilds")
    };
    let mut group = c.benchmark_group("linkbatch/build");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("scalar_exhaustive", 2000u64), |b| {
        b.iter(|| black_box(rebuild(CandidateScan::Exhaustive)))
    });
    group.bench_function(BenchmarkId::new("batched_pruned", 2000u64), |b| {
        b.iter(|| black_box(rebuild(CandidateScan::Auto)))
    });
    group.finish();
}

fn bench_mobility_cache(c: &mut Criterion) {
    let sim = MobilitySimulator::new(MobilityConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(600),
        speed_mps: (5.0, 10.0),
        epoch_seconds: 10.0,
        epochs: 10,
        seed: 11,
        policy: MobilityPolicy::Sticky,
        stationary_fraction: 0.8,
    });
    assert_eq!(
        sim.run().expect("incremental engine runs"),
        sim.run_scratch().expect("scratch engine runs"),
        "mobility engines diverged"
    );
    let mut group = c.benchmark_group("linkbatch/mobility");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("incremental_cached", 600u64), |b| {
        b.iter(|| black_box(sim.run().unwrap()))
    });
    group.bench_function(BenchmarkId::new("scratch", 600u64), |b| {
        b.iter(|| black_box(sim.run_scratch().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_build, bench_mobility_cache);
criterion_main!(benches);
