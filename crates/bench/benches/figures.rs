//! One bench per paper figure: the wall-clock cost of regenerating each
//! figure's data at quick-replication settings.
//!
//! These double as executable documentation of the per-figure workloads —
//! `cargo bench -p dmra-bench --bench figures` exercises exactly the code
//! paths the `figures` binary uses for the committed EXPERIMENTS.md data.

use criterion::{criterion_group, criterion_main, Criterion};
use dmra_sim::experiments::{self, ExperimentOptions};
use std::hint::black_box;

fn quick() -> ExperimentOptions {
    ExperimentOptions {
        replications: 1,
        base_seed: 42,
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure-regeneration");
    group.sample_size(10);
    group.bench_function("fig2", |b| {
        b.iter(|| black_box(experiments::fig2(&quick()).unwrap()))
    });
    group.bench_function("fig3", |b| {
        b.iter(|| black_box(experiments::fig3(&quick()).unwrap()))
    });
    group.bench_function("fig4", |b| {
        b.iter(|| black_box(experiments::fig4(&quick()).unwrap()))
    });
    group.bench_function("fig5", |b| {
        b.iter(|| black_box(experiments::fig5(&quick()).unwrap()))
    });
    group.bench_function("fig6", |b| {
        b.iter(|| black_box(experiments::fig6(&quick()).unwrap()))
    });
    group.bench_function("fig7", |b| {
        b.iter(|| black_box(experiments::fig7(&quick()).unwrap()))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-regeneration");
    group.sample_size(10);
    group.bench_function("ablation_same_sp", |b| {
        b.iter(|| black_box(experiments::ablation_same_sp_preference(&quick()).unwrap()))
    });
    group.bench_function("ablation_interference", |b| {
        b.iter(|| black_box(experiments::ablation_interference(&quick()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_ablations);
criterion_main!(benches);
