//! Wall-clock performance of the online arrival/departure engines.
//!
//! Pits the event-driven engine (`DynamicSimulator::run_event`) and the
//! epoch-persistent incremental engine (`run`) against the
//! full-residual-rebuild loop (`run_scratch`) on paper-shaped
//! deployments. The epoch count is kept modest so the bench stays quick;
//! `figures -- bench` and `figures -- bench_event` record the
//! paper-scale numbers in `BENCH_dynamic.json` and
//! `BENCH_dynamic_event.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
use dmra_sim::ScenarioConfig;
use std::hint::black_box;

fn config(arrival_rate: f64, epochs: usize) -> DynamicConfig {
    DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs,
        seed: 11,
    }
}

fn bench_dynamic_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic");
    group.sample_size(10);
    for &rate in &[60.0f64, 120.0] {
        let sim = DynamicSimulator::new(config(rate, 40));
        let incremental = sim.run().expect("incremental engine runs");
        let scratch = sim.run_scratch().expect("scratch engine runs");
        let event = sim.run_event().expect("event engine runs");
        assert_eq!(incremental, scratch, "engines diverged at rate {rate}");
        assert_eq!(incremental, event, "event engine diverged at rate {rate}");
        group.bench_with_input(BenchmarkId::new("event", rate as u64), &sim, |b, sim| {
            b.iter(|| black_box(sim.run_event().unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("incremental", rate as u64),
            &sim,
            |b, sim| b.iter(|| black_box(sim.run().unwrap())),
        );
        group.bench_with_input(BenchmarkId::new("scratch", rate as u64), &sim, |b, sim| {
            b.iter(|| black_box(sim.run_scratch().unwrap()))
        });
    }
    // The event engine's reason to exist: a low-load horizon where most
    // epochs are idle and the fixed-epoch engines still pay per epoch.
    let sim = DynamicSimulator::new(config(1.0, 2000));
    assert_eq!(
        sim.run_event().expect("event engine runs"),
        sim.run().expect("incremental engine runs"),
        "event engine diverged at low load"
    );
    group.bench_with_input(
        BenchmarkId::new("event_low_load", 2000u64),
        &sim,
        |b, sim| b.iter(|| black_box(sim.run_event().unwrap())),
    );
    group.bench_with_input(
        BenchmarkId::new("incremental_low_load", 2000u64),
        &sim,
        |b, sim| b.iter(|| black_box(sim.run().unwrap())),
    );
    group.finish();
}

criterion_group!(benches, bench_dynamic_engines);
criterion_main!(benches);
