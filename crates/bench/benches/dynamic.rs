//! Wall-clock performance of the online arrival/departure engines.
//!
//! Pits the epoch-persistent incremental engine (`DynamicSimulator::run`)
//! against the full-residual-rebuild loop (`run_scratch`) it replaced on
//! paper-shaped deployments. The epoch count is kept modest so the bench
//! stays quick; `figures -- bench` records the paper-scale numbers in
//! `BENCH_dynamic.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator};
use dmra_sim::ScenarioConfig;
use std::hint::black_box;

fn config(arrival_rate: f64) -> DynamicConfig {
    DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate,
        mean_holding: 5.0,
        epochs: 40,
        seed: 11,
    }
}

fn bench_dynamic_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic");
    group.sample_size(10);
    for &rate in &[60.0f64, 120.0] {
        let sim = DynamicSimulator::new(config(rate));
        let incremental = sim.run().expect("incremental engine runs");
        let scratch = sim.run_scratch().expect("scratch engine runs");
        assert_eq!(incremental, scratch, "engines diverged at rate {rate}");
        group.bench_with_input(
            BenchmarkId::new("incremental", rate as u64),
            &sim,
            |b, sim| b.iter(|| black_box(sim.run().unwrap())),
        );
        group.bench_with_input(BenchmarkId::new("scratch", rate as u64), &sim, |b, sim| {
            b.iter(|| black_box(sim.run_scratch().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic_engines);
criterion_main!(benches);
