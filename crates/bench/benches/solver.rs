//! Wall-clock performance of the allocators at and beyond paper scale.
//!
//! The paper's complexity claim is `O(|U|²·|B| + |B|²·|U|·|S|)`; in
//! practice the matcher converges in a handful of iterations, so observed
//! scaling is near-linear in `|U|`. This bench pins that down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmra_baselines::{Dcsp, GreedyProfit, NonCo};
use dmra_bench::bench_instance;
use dmra_core::{Allocator, Dmra};
use std::hint::black_box;

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate");
    for &n_ues in &[200usize, 400, 900, 1800] {
        let instance = bench_instance(n_ues, 7);
        let dmra = Dmra::default();
        let dcsp = Dcsp::default();
        let nonco = NonCo::default();
        let greedy = GreedyProfit::default();
        let algos: [(&str, &dyn Allocator); 4] = [
            ("DMRA", &dmra),
            ("DCSP", &dcsp),
            ("NonCo", &nonco),
            ("GreedyProfit", &greedy),
        ];
        for (name, algo) in algos {
            group.bench_with_input(
                BenchmarkId::new(name, n_ues),
                &instance,
                |b, inst| b.iter(|| black_box(algo.allocate(black_box(inst)))),
            );
        }
    }
    group.finish();
}

fn bench_instance_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance-build");
    for &n_ues in &[400usize, 900, 1800] {
        group.bench_with_input(BenchmarkId::from_parameter(n_ues), &n_ues, |b, &n| {
            b.iter(|| black_box(bench_instance(n, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocators, bench_instance_build);
criterion_main!(benches);
