//! Wall-clock performance of the allocators at and beyond paper scale.
//!
//! The paper's complexity claim is `O(|U|²·|B| + |B|²·|U|·|S|)`; in
//! practice the matcher converges in a handful of iterations, so observed
//! scaling is near-linear in `|U|`. This bench pins that down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmra_baselines::{Dcsp, GreedyProfit, NonCo};
use dmra_bench::{bench_instance, bench_instance_with_threads};
use dmra_core::{Allocator, Dmra, Threads};
use std::hint::black_box;

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate");
    for &n_ues in &[200usize, 400, 900, 1800] {
        let instance = bench_instance(n_ues, 7);
        let dmra = Dmra::default();
        let dcsp = Dcsp::default();
        let nonco = NonCo::default();
        let greedy = GreedyProfit::default();
        let algos: [(&str, &dyn Allocator); 4] = [
            ("DMRA", &dmra),
            ("DCSP", &dcsp),
            ("NonCo", &nonco),
            ("GreedyProfit", &greedy),
        ];
        for (name, algo) in algos {
            group.bench_with_input(BenchmarkId::new(name, n_ues), &instance, |b, inst| {
                b.iter(|| black_box(algo.allocate(black_box(inst))))
            });
        }
    }
    group.finish();
}

fn bench_instance_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance-build");
    for &n_ues in &[400usize, 900, 2000] {
        for (label, threads) in [("serial", Threads::Fixed(1)), ("auto", Threads::Auto)] {
            group.bench_with_input(BenchmarkId::new(label, n_ues), &n_ues, |b, &n| {
                b.iter(|| black_box(bench_instance_with_threads(n, 7, threads)))
            });
        }
    }
    group.finish();
}

/// The dense solver against the line-by-line reference it replaced — the
/// hot-path speedup this crate's `BENCH_sweep.json` records.
fn bench_solver_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmra-solve");
    for &n_ues in &[900usize, 2000] {
        let instance = bench_instance(n_ues, 7);
        let dmra = Dmra::default();
        group.bench_with_input(BenchmarkId::new("dense", n_ues), &instance, |b, inst| {
            b.iter(|| black_box(dmra.solve(black_box(inst)).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("reference", n_ues),
            &instance,
            |b, inst| b.iter(|| black_box(dmra.solve_reference(black_box(inst)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allocators,
    bench_instance_build,
    bench_solver_vs_reference
);
criterion_main!(benches);
