//! Regenerates the data behind every figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p dmra-bench --bin figures -- all
//! cargo run --release -p dmra-bench --bin figures -- fig2 fig7
//! cargo run --release -p dmra-bench --bin figures -- --quick ablations
//! ```
//!
//! Markdown tables go to stdout; CSVs are written to `results/<name>.csv`.

use dmra_sim::experiments::{self, ExperimentOptions};
use dmra_sim::Table;
use std::fs;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::paper()
    };
    let mut requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if requested.is_empty() {
        requested.push("all");
    }

    let mut jobs: Vec<&str> = Vec::new();
    for r in requested {
        match r {
            "all" => jobs.extend(["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"]),
            "ablations" => jobs.extend([
                "ablation_same_sp",
                "ablation_interference",
                "decentralized_cost",
                "iota_sweep",
                "online_comparison",
            ]),
            other => jobs.push(other),
        }
    }
    jobs.dedup();

    fs::create_dir_all("results").expect("can create results/ directory");
    for job in jobs {
        let table = run_job(job, &opts);
        match table {
            Ok(table) => emit(job, &table),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
}

fn run_job(job: &str, opts: &ExperimentOptions) -> Result<Table, String> {
    let result = match job {
        "fig2" => experiments::fig2(opts),
        "fig3" => experiments::fig3(opts),
        "fig4" => experiments::fig4(opts),
        "fig5" => experiments::fig5(opts),
        "fig6" => experiments::fig6(opts),
        "fig7" => experiments::fig7(opts),
        "ablation_same_sp" => experiments::ablation_same_sp_preference(opts),
        "ablation_interference" => experiments::ablation_interference(opts),
        "decentralized_cost" => experiments::decentralized_cost(opts),
        "iota_sweep" => experiments::iota_sweep(opts),
        "online_comparison" => experiments::online_comparison(opts),
        other => {
            return Err(format!(
                "unknown experiment '{other}' (expected fig2..fig7, \
                 ablation_same_sp, ablation_interference, decentralized_cost, \
                 iota_sweep, all, ablations)"
            ))
        }
    };
    result.map_err(|e| format!("{job}: {e}"))
}

fn emit(name: &str, table: &Table) {
    println!("{}", table.to_markdown());
    println!("{}", table.to_sparklines());
    let csv = Path::new("results").join(format!("{name}.csv"));
    fs::write(&csv, table.to_csv()).expect("can write CSV");
    let gp = Path::new("results").join(format!("{name}.gnuplot"));
    fs::write(&gp, table.to_gnuplot(&format!("{name}.csv"))).expect("can write gnuplot script");
    eprintln!("wrote {} and {}", csv.display(), gp.display());
}
