//! Regenerates the data behind every figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p dmra-bench --bin figures -- all
//! cargo run --release -p dmra-bench --bin figures -- fig2 fig7
//! cargo run --release -p dmra-bench --bin figures -- --quick ablations
//! cargo run --release -p dmra-bench --bin figures -- bench
//! ```
//!
//! CSVs are written to `results/<name>.csv`; markdown tables, sparklines
//! and progress all go through the `dmra-obs` logging facade on stderr
//! (`--quiet` silences them, `--verbose`/`-v` adds debug detail), so the
//! machine-readable artefacts are the files, not the terminal stream.
//! The `bench` job instead times the sweep engine (serial vs threaded,
//! asserting bit-identical tables), the instance builder, the dense
//! DMRA solver against its reference, and the incremental online engine
//! against the scratch rebuild loop, writing `BENCH_sweep.json` and
//! `BENCH_dynamic.json`, and ends with an instrumented per-phase
//! breakdown. The `bench_event` job times the event-driven engine
//! against both fixed-epoch loops on a low-load long-horizon workload,
//! writes `BENCH_dynamic_event.json`, and fails when the speedup falls
//! below its gate. The `bench_shard` job exercises the region-sharded
//! runtime: bit-identical outcomes across shard grids at paper scale, a
//! shard-count scaling curve on the wide-area grid (gated on hosts with
//! enough hardware threads), and a sustained run past one million
//! concurrent in-service tasks, written to `BENCH_shard.json`. The
//! `bench_solve` job benchmarks the component-decomposed DMRA solve
//! against the monolithic path — outcome equality asserted first, then a
//! component-count/size histogram and a solve-thread speedup curve on the
//! sparse metro grid, written to `BENCH_solve.json` and gated on hosts
//! with enough hardware threads. The `bench_delta` job benchmarks the
//! cross-epoch delta solver (`--solve delta`) on two low-churn
//! workloads — the 90%-stationary mobility loop on an island grid and a
//! metro-scale persistent population with 1% slot churn per epoch —
//! asserting bit-identical outcomes before timing, writing
//! `BENCH_delta.json`, and failing when either speedup falls below
//! `DMRA_DELTA_SPEEDUP_MIN`. The `obs_overhead` job measures the
//! telemetry-enabled vs -disabled dynamic simulation and writes
//! `BENCH_obs_overhead.json`, failing when the overhead exceeds its
//! bound.

use dmra_baselines::{Dcsp, NonCo};
use dmra_bench::bench_instance;
use dmra_core::{Allocator, DeploymentContext, Dmra, Threads};
use dmra_obs::{obs_error, obs_info, Level};
use dmra_sim::dynamic::{
    DynamicConfig, DynamicSimulator, HoldingDistribution, ProtoDelay, ProtoFaults,
};
use dmra_sim::experiments::{self, ExperimentOptions};
use dmra_sim::{BsPlacement, ScenarioConfig, SweepRunner, Table};
use dmra_types::{BsId, Cru, Hertz, Meters, Rect, RrbCount};
use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--quiet") {
        dmra_obs::set_level(Level::Warn);
    } else if args.iter().any(|a| a == "--verbose" || a == "-v") {
        dmra_obs::set_level(Level::Debug);
    }
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::paper()
    };
    let mut requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(String::as_str)
        .collect();
    if requested.is_empty() {
        requested.push("all");
    }

    let mut jobs: Vec<&str> = Vec::new();
    for r in requested {
        match r {
            "all" => jobs.extend(["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"]),
            "ablations" => jobs.extend([
                "ablation_same_sp",
                "ablation_interference",
                "decentralized_cost",
                "iota_sweep",
                "online_comparison",
            ]),
            other => jobs.push(other),
        }
    }
    jobs.dedup();

    fs::create_dir_all("results").expect("can create results/ directory");
    for job in jobs {
        if job == "bench" {
            bench_mode();
            continue;
        }
        if job == "bench_event" {
            bench_event_mode();
            continue;
        }
        if job == "bench_linkbatch" {
            bench_linkbatch_mode();
            continue;
        }
        if job == "bench_shard" {
            bench_shard_mode();
            continue;
        }
        if job == "bench_solve" {
            bench_solve_mode();
            continue;
        }
        if job == "bench_proto" {
            bench_proto_mode();
            continue;
        }
        if job == "bench_delta" {
            bench_delta_mode();
            continue;
        }
        if job == "obs_overhead" {
            obs_overhead_mode();
            continue;
        }
        let table = run_job(job, &opts);
        match table {
            Ok(table) => emit(job, &table),
            Err(msg) => {
                obs_error!("{msg}");
                std::process::exit(1);
            }
        }
    }
}

/// Times a closure, returning its value and the elapsed seconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let value = f();
    (value, t0.elapsed().as_secs_f64())
}

/// The best (minimum) of `n` timed runs, in seconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| timed(&mut f).1)
        .fold(f64::INFINITY, f64::min)
}

/// CPU time (user + system) consumed by this process, in clock ticks,
/// read from `/proc/self/stat`. Returns `None` off Linux; callers fall
/// back to wall-clock timing. Unlike the wall clock, CPU time does not
/// charge scheduler preemption to whichever side happened to be running,
/// which matters on shared hosts.
fn cpu_ticks() -> Option<u64> {
    let stat = fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may itself contain spaces; fields resume after the
    // final ')'. The remainder starts at field 3 (state), so utime
    // (field 14) and stime (field 15) sit at indices 11 and 12.
    let rest = stat.rsplit(')').next()?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// Measures the parallel execution layer end to end and writes
/// `BENCH_sweep.json` next to the workspace root.
///
/// The sweep section also *verifies* determinism: every threaded table is
/// compared `==` against the serial one and the run aborts on mismatch.
fn bench_mode() {
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    obs_info!("bench: {available} hardware thread(s) available");

    // -- Sweep engine: serial vs threaded on a Fig. 2-shaped workload. --
    let ue_counts = [300usize, 600, 900];
    let points: Vec<(f64, ScenarioConfig)> = ue_counts
        .iter()
        .map(|&n| (n as f64, ScenarioConfig::paper_defaults().with_ues(n)))
        .collect();
    let dmra = Dmra::default();
    let dcsp = Dcsp::default();
    let nonco = NonCo::default();
    let algos: Vec<&dyn Allocator> = vec![&dmra, &dcsp, &nonco];
    let replications = 3u32;
    let runner = SweepRunner::new(replications, 42);
    let run_with = |threads: Threads| -> (Table, f64) {
        timed(|| {
            runner
                .with_threads(threads)
                .run_profit("bench", "#UEs", &points, &algos)
                .expect("bench sweep builds")
        })
    };
    let (serial_table, serial_secs) = run_with(Threads::serial());
    obs_info!("sweep serial: {serial_secs:.3} s");
    let mut sweep_rows = String::new();
    for threads in [2usize, 4] {
        let (table, secs) = run_with(Threads::Fixed(threads));
        assert_eq!(
            table, serial_table,
            "threaded sweep diverged from serial at {threads} threads"
        );
        obs_info!("sweep {threads} threads: {secs:.3} s (table identical)");
        if !sweep_rows.is_empty() {
            sweep_rows.push_str(",\n");
        }
        sweep_rows.push_str(&format!(
            "      {{ \"threads\": {threads}, \"secs\": {secs:.4}, \"identical_to_serial\": true }}"
        ));
    }

    // -- Instance build: serial vs threaded at 900 and 2000 UEs. --
    let mut build_rows = String::new();
    for n_ues in [900usize, 2000] {
        let serial = best_of(3, || {
            dmra_bench::bench_instance_with_threads(n_ues, 7, Threads::serial())
        });
        let auto = best_of(3, || {
            dmra_bench::bench_instance_with_threads(n_ues, 7, Threads::Auto)
        });
        obs_info!("build {n_ues} UEs: serial {serial:.4} s, auto {auto:.4} s");
        if !build_rows.is_empty() {
            build_rows.push_str(",\n");
        }
        build_rows.push_str(&format!(
            "      {{ \"n_ues\": {n_ues}, \"serial_secs\": {serial:.4}, \"auto_secs\": {auto:.4} }}"
        ));
    }

    // -- Dense solver vs the line-by-line reference. --
    let mut solve_rows = String::new();
    for n_ues in [900usize, 2000] {
        let instance = bench_instance(n_ues, 7);
        let dense = best_of(5, || dmra.solve(&instance).expect("solves"));
        let reference = best_of(5, || dmra.solve_reference(&instance).expect("solves"));
        let speedup = reference / dense;
        obs_info!(
            "solve {n_ues} UEs: dense {dense:.4} s, reference {reference:.4} s \
             ({speedup:.1}x)"
        );
        if !solve_rows.is_empty() {
            solve_rows.push_str(",\n");
        }
        solve_rows.push_str(&format!(
            "      {{ \"n_ues\": {n_ues}, \"dense_secs\": {dense:.4}, \
             \"reference_secs\": {reference:.4}, \"speedup\": {speedup:.2} }}"
        ));
    }

    // -- Row cache under single-BS budget churn (per-BS stamps). --
    let (cache_hits, cache_misses, cache_hit_rate) = row_cache_churn();

    let json = format!(
        "{{\n  \"hardware_threads\": {available},\n  \"sweep\": {{\n    \
         \"title\": \"profit sweep, {} points x {replications} replications x {} algorithms\",\n    \
         \"ue_counts\": {ue_counts:?},\n    \"serial_secs\": {serial_secs:.4},\n    \
         \"threaded\": [\n{sweep_rows}\n    ]\n  }},\n  \"instance_build\": {{\n    \
         \"runs\": [\n{build_rows}\n    ]\n  }},\n  \"dmra_solve\": {{\n    \
         \"runs\": [\n{solve_rows}\n    ]\n  }},\n  \"row_cache_churn\": {{\n    \
         \"n_ues\": 2000, \"epochs\": 40, \"churned_bss_per_epoch\": 1,\n    \
         \"hits\": {cache_hits}, \"misses\": {cache_misses}, \
         \"hit_rate\": {cache_hit_rate:.4}\n  }}\n}}\n",
        points.len(),
        algos.len(),
    );
    fs::write("BENCH_sweep.json", &json).expect("can write BENCH_sweep.json");
    obs_info!("wrote BENCH_sweep.json");

    bench_dynamic();
    per_phase_breakdown();
}

/// Measures the cross-epoch row cache on a stationary population whose
/// remaining budgets change at exactly one BS per epoch.
///
/// This is the regime the per-BS budget stamps exist for: a single
/// global budget stamp would flush the whole cache on every epoch (0%
/// hits after warm-up), while per-BS stamps re-price only the rows whose
/// consulted-BS sets touch the churned site — every other row is served
/// from cache. Returns `(hits, misses, hit_rate)` for `BENCH_sweep.json`.
fn row_cache_churn() -> (u64, u64, f64) {
    let deployment = ScenarioConfig::paper_defaults()
        .with_ues(2000)
        .with_seed(7)
        .build()
        .expect("paper deployment builds");
    let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
    let mut cru: Vec<Vec<Cru>> = deployment
        .bss()
        .iter()
        .map(|b| b.cru_budget.clone())
        .collect();
    let full_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
    let ues = deployment.ues().to_vec();
    let epochs = 40usize;
    for epoch in 0..epochs {
        // Drain one CRU from a cycling BS: each epoch exactly one BS's
        // budget differs from the stamps taken last epoch. Budgets start
        // at 100–150 and the cycle visits each BS at most twice, so the
        // drain never saturates into a no-op.
        let bs = epoch % cru.len();
        cru[bs][0] = cru[bs][0].saturating_sub(Cru::new(1));
        ctx.epoch_instance(&cru, &full_rrb, ues.clone())
            .expect("churn epoch builds");
    }
    let (hits, misses) = ctx.row_cache_stats().expect("row cache is enabled");
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    obs_info!(
        "row cache, single-BS budget churn (2000 stationary UEs, {epochs} epochs): \
         {hits} hits, {misses} misses ({:.1}% hit rate; a global budget \
         stamp would miss every row after each churn)",
        hit_rate * 100.0
    );
    (hits, misses, hit_rate)
}

/// Runs one instrumented dynamic simulation and prints the telemetry
/// report, so `bench` ends with a per-phase breakdown — epoch wall time
/// vs instance build vs the allocator solve, the latter split out as its
/// own `sim.solve_ns` histogram by every engine — instead of a single
/// end-to-end number.
fn per_phase_breakdown() {
    dmra_obs::global().reset();
    dmra_obs::global_trace().clear();
    dmra_obs::set_enabled(true);
    let sim = DynamicSimulator::new(DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: 120.0,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs: 100,
        seed: 11,
    });
    sim.run().expect("instrumented dynamic run");
    dmra_obs::set_enabled(false);
    obs_info!(
        "per-phase breakdown (dynamic, rate 120, 100 epochs):\n{}",
        dmra_obs::global().snapshot().render_table()
    );

    // A second instrumented pass through the mobility loop, whose
    // epoch-persistent context carries the cross-epoch row cache — the
    // report table picks up the online.row_cache_* counters and the
    // batch-kernel histogram.
    use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
    dmra_obs::global().reset();
    dmra_obs::global_trace().clear();
    dmra_obs::set_enabled(true);
    MobilitySimulator::new(MobilityConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(600),
        speed_mps: (5.0, 10.0),
        epoch_seconds: 10.0,
        epochs: 30,
        seed: 11,
        policy: MobilityPolicy::Sticky,
        stationary_fraction: 0.8,
    })
    .run()
    .expect("instrumented mobility run");
    dmra_obs::set_enabled(false);
    let snapshot = dmra_obs::global().snapshot();
    let hits = snapshot.counter("online.row_cache_hits").unwrap_or(0);
    let misses = snapshot.counter("online.row_cache_misses").unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        100.0 * hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    obs_info!(
        "mobility breakdown (sticky, 600 UEs, 80% stationary, 30 epochs; \
         row-cache hit rate {hit_rate:.1}%):\n{}",
        snapshot.render_table()
    );
}

/// Times the incremental online engine against the scratch rebuild loop
/// at paper scale and writes `BENCH_dynamic.json`.
///
/// Both engines must produce bit-identical `DynamicOutcome`s — the run
/// aborts on mismatch, so the speedup figure is never bought with a
/// behaviour change.
fn bench_dynamic() {
    let mut rows = String::new();
    for &(arrival_rate, epochs) in &[(120.0f64, 200usize), (300.0, 200)] {
        let config = DynamicConfig {
            scenario: ScenarioConfig::paper_defaults(),
            arrival_rate,
            mean_holding: 5.0,
            holding: HoldingDistribution::Geometric,
            epochs,
            seed: 11,
        };
        let sim = DynamicSimulator::new(config);
        let (scratch_out, _) = timed(|| sim.run_scratch().expect("scratch engine runs"));
        let (incremental_out, _) = timed(|| sim.run().expect("incremental engine runs"));
        assert_eq!(
            incremental_out, scratch_out,
            "incremental engine diverged from scratch at rate {arrival_rate}"
        );
        let scratch_secs = best_of(3, || sim.run_scratch().expect("scratch engine runs"));
        let incremental_secs = best_of(3, || sim.run().expect("incremental engine runs"));
        let speedup = scratch_secs / incremental_secs;
        let epochs_per_sec = epochs as f64 / incremental_secs;
        let arrivals_per_sec = incremental_out.arrivals as f64 / incremental_secs;
        obs_info!(
            "dynamic rate {arrival_rate}, {epochs} epochs ({} arrivals): \
             scratch {scratch_secs:.4} s, incremental {incremental_secs:.4} s \
             ({speedup:.1}x, {epochs_per_sec:.0} epochs/s, {arrivals_per_sec:.0} arrivals/s)",
            incremental_out.arrivals
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"arrival_rate\": {arrival_rate}, \"epochs\": {epochs}, \
             \"arrivals\": {}, \"scratch_secs\": {scratch_secs:.4}, \
             \"incremental_secs\": {incremental_secs:.4}, \"speedup\": {speedup:.2}, \
             \"epochs_per_sec\": {epochs_per_sec:.1}, \
             \"arrivals_per_sec\": {arrivals_per_sec:.1}, \
             \"identical_outcome\": true }}",
            incremental_out.arrivals
        ));
    }
    let json = format!(
        "{{\n  \"title\": \"online arrival/departure regime, incremental engine \
         vs full residual rebuild (DMRA allocator, paper deployment)\",\n  \
         \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    fs::write("BENCH_dynamic.json", &json).expect("can write BENCH_dynamic.json");
    obs_info!("wrote BENCH_dynamic.json");
}

/// Times the event-driven engine against both fixed-epoch engines on a
/// low-load long-horizon workload and writes `BENCH_dynamic_event.json`.
///
/// All three engines must produce bit-identical `DynamicOutcome`s (the
/// run aborts on mismatch), and the event engine must beat the epoch
/// loop by at least the required factor — at rate ≤ 2 most epochs are
/// idle, so the event engine's O(events) cost should leave the epoch
/// loop's O(epochs) instance builds far behind. Exit 1 when the gate
/// fails, so `scripts/bench.sh` doubles as a perf regression check. The
/// factor defaults to 5 and can be tightened or loosened via
/// `DMRA_EVENT_SPEEDUP_MIN`.
///
/// The workload is a wide-area deployment — the paper's grid extended to
/// 10 × 10 sites at the same 300 m ISD (20 BSs per SP instead of 5).
/// Both fixed-epoch engines already skip instance builds on idle epochs,
/// so the gated gap is per-arrival build cost: the scratch loop scans
/// every site per build while the event engine's pruned build touches
/// only the handful inside coverage radius, and that ratio needs more
/// sites than the 25-BS paper grid to sit safely above the 5x bound.
fn bench_event_mode() {
    let min_speedup: f64 = std::env::var("DMRA_EVENT_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let mut scenario = ScenarioConfig::paper_defaults();
    scenario.bss_per_sp = 20;
    scenario.bs_placement = BsPlacement::RegularGrid {
        rows: 10,
        cols: 10,
        isd: Meters::new(300.0),
    };
    scenario.region = Rect::square(Meters::new(3000.0));
    scenario
        .validate()
        .expect("wide-area bench scenario is valid");
    let mut rows = String::new();
    let mut all_gates_pass = true;
    for &(arrival_rate, epochs) in &[(0.5f64, 10_000usize), (2.0, 10_000)] {
        let sim = DynamicSimulator::new(DynamicConfig {
            scenario: scenario.clone(),
            arrival_rate,
            mean_holding: 5.0,
            holding: HoldingDistribution::Geometric,
            epochs,
            seed: 11,
        });
        let (event_out, _) = timed(|| sim.run_event().expect("event engine runs"));
        let (incremental_out, _) = timed(|| sim.run().expect("incremental engine runs"));
        let (scratch_out, _) = timed(|| sim.run_scratch().expect("scratch engine runs"));
        assert_eq!(
            event_out, incremental_out,
            "event engine diverged from incremental at rate {arrival_rate}"
        );
        assert_eq!(
            event_out, scratch_out,
            "event engine diverged from scratch at rate {arrival_rate}"
        );
        let event_secs = best_of(3, || sim.run_event().expect("event engine runs"));
        let incremental_secs = best_of(3, || sim.run().expect("incremental engine runs"));
        let scratch_secs = best_of(3, || sim.run_scratch().expect("scratch engine runs"));
        let speedup_vs_epoch_loop = scratch_secs / event_secs;
        let speedup_vs_incremental = incremental_secs / event_secs;
        let gate_pass = speedup_vs_epoch_loop >= min_speedup;
        all_gates_pass &= gate_pass;
        obs_info!(
            "dynamic event rate {arrival_rate}, {epochs} epochs ({} arrivals): \
             event {event_secs:.4} s, incremental {incremental_secs:.4} s, \
             scratch {scratch_secs:.4} s ({speedup_vs_epoch_loop:.1}x vs epoch \
             loop, {speedup_vs_incremental:.1}x vs incremental)",
            event_out.arrivals
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"arrival_rate\": {arrival_rate}, \"epochs\": {epochs}, \
             \"arrivals\": {}, \"event_secs\": {event_secs:.4}, \
             \"incremental_secs\": {incremental_secs:.4}, \
             \"scratch_secs\": {scratch_secs:.4}, \
             \"speedup_vs_epoch_loop\": {speedup_vs_epoch_loop:.2}, \
             \"speedup_vs_incremental\": {speedup_vs_incremental:.2}, \
             \"gate_pass\": {gate_pass}, \"identical_outcome\": true }}",
            event_out.arrivals
        ));
    }
    let json = format!(
        "{{\n  \"title\": \"event-driven engine vs fixed-epoch loops, low-load \
         long-horizon regime (DMRA allocator, 10x10-site wide-area grid, \
         geometric holding)\",\n  \"min_speedup_vs_epoch_loop\": {min_speedup},\n  \
         \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    fs::write("BENCH_dynamic_event.json", &json).expect("can write BENCH_dynamic_event.json");
    obs_info!("wrote BENCH_dynamic_event.json");
    if !all_gates_pass {
        obs_error!("event engine speedup fell below the {min_speedup}x bound");
        std::process::exit(1);
    }
}

/// Sweeps the protocol-backed dynamic engine over a drop × delay × crash
/// fault grid and writes the degradation surface to `BENCH_proto.json`.
///
/// Before any timing the fault-free cell is asserted bit-identical to the
/// incremental engine's `DynamicOutcome` — the engine-independence
/// contract — so the sweep measures fault degradation, never engine
/// drift. Every faulty cell reports its profit gap and unserved-UE gap
/// against that oracle run. The run exits 1 when the fault-free cell
/// diverges or when the worst-case profit loss exceeds
/// `DMRA_PROTO_MAX_PROFIT_LOSS_PCT` (default 60; the deepest cell drops a
/// quarter of all messages and crashes a BS, so substantial loss is the
/// expected physics — the bound only catches collapse).
fn bench_proto_mode() {
    let max_loss_pct: f64 = std::env::var("DMRA_PROTO_MAX_PROFIT_LOSS_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let config = DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: 15.0,
        mean_holding: 4.0,
        holding: HoldingDistribution::Geometric,
        epochs: 20,
        seed: 11,
    };
    let sim = DynamicSimulator::new(config);
    let (oracle, oracle_secs) = timed(|| sim.run().expect("incremental engine runs"));
    let (fault_free, _) = timed(|| {
        sim.run_proto(&ProtoFaults::default())
            .expect("fault-free proto engine runs")
    });
    assert_eq!(
        fault_free, oracle,
        "proto engine diverged from incremental under reliable delivery"
    );
    obs_info!(
        "proto fault-free cell is bit-identical to incremental \
         (profit {:.1}, {} admitted)",
        oracle.total_profit.get(),
        oracle.admitted
    );
    let crash_axis: &[(&str, &[(u32, usize)])] = &[("none", &[]), ("1@5", &[(1, 5)])];
    let mut rows = String::new();
    let mut worst_loss_pct = 0.0f64;
    for &drop_pct in &[0.0f64, 10.0, 25.0] {
        for delay in [
            ProtoDelay::Immediate,
            ProtoDelay::Fixed(1),
            ProtoDelay::Random(2),
        ] {
            for &(crash_label, crash_list) in crash_axis {
                let faults = ProtoFaults {
                    drop_prob: drop_pct / 100.0,
                    delay,
                    crashes: crash_list
                        .iter()
                        .map(|&(bs, at)| (BsId::new(bs), at))
                        .collect(),
                    max_rounds: 0,
                };
                let fault_free_cell =
                    drop_pct == 0.0 && delay == ProtoDelay::Immediate && crash_label == "none";
                let (out, secs) = timed(|| sim.run_proto(&faults).expect("proto engine runs"));
                let profit_gap = oracle.total_profit.get() - out.total_profit.get();
                let loss_pct = 100.0 * profit_gap / oracle.total_profit.get();
                let unserved_gap = oracle.admitted as i64 - out.admitted as i64;
                if fault_free_cell {
                    assert_eq!(out, oracle, "fault-free grid cell drifted from the oracle");
                } else {
                    worst_loss_pct = worst_loss_pct.max(loss_pct);
                }
                obs_info!(
                    "proto drop {drop_pct}% delay {delay} crash {crash_label}: \
                     profit {:.1} (gap {profit_gap:.1}, {loss_pct:.1}%), \
                     admitted {} (gap {unserved_gap}), {secs:.3} s",
                    out.total_profit.get(),
                    out.admitted
                );
                if !rows.is_empty() {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "    {{ \"drop_pct\": {drop_pct}, \"delay\": \"{delay}\", \
                     \"crash\": \"{crash_label}\", \"profit\": {:.2}, \
                     \"profit_gap\": {profit_gap:.2}, \"profit_loss_pct\": {loss_pct:.2}, \
                     \"admitted\": {}, \"unserved_gap\": {unserved_gap}, \
                     \"cloud_forwarded\": {}, \"secs\": {secs:.4}, \
                     \"fault_free\": {fault_free_cell}, \
                     \"identical_outcome\": {fault_free_cell} }}",
                    out.total_profit.get(),
                    out.admitted,
                    out.cloud_forwarded
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"title\": \"protocol-backed dynamic engine degradation under \
         message loss, delivery delay and BS fail-stop crashes (paper grid, \
         rate 15, 20 epochs)\",\n  \
         \"oracle\": {{ \"engine\": \"incremental\", \"profit\": {:.2}, \
         \"admitted\": {}, \"secs\": {oracle_secs:.4} }},\n  \
         \"max_profit_loss_pct\": {max_loss_pct},\n  \
         \"worst_profit_loss_pct\": {worst_loss_pct:.2},\n  \
         \"cells\": [\n{rows}\n  ]\n}}\n",
        oracle.total_profit.get(),
        oracle.admitted
    );
    fs::write("BENCH_proto.json", &json).expect("can write BENCH_proto.json");
    obs_info!("wrote BENCH_proto.json");
    if worst_loss_pct > max_loss_pct {
        obs_error!(
            "proto degradation collapsed: worst profit loss {worst_loss_pct:.1}% \
             exceeds the {max_loss_pct}% bound"
        );
        std::process::exit(1);
    }
}

/// Times the batched link-evaluation kernel and the cross-epoch
/// candidate-row cache against the scalar/scratch baselines and writes
/// `BENCH_linkbatch.json`.
///
/// Two gated comparisons, both requiring bit-identical outcomes before
/// any timing is trusted:
///
/// 1. **2000-UE instance build** — the pruned + batched candidate scan
///    vs the exhaustive scalar scan, same thread knob on both sides.
/// 2. **Mobility sticky-population loop** — the incremental engine
///    (epoch-persistent context, row cache, batch kernel) vs the
///    full-rebuild scratch loop, after asserting that DMRA, NonCo and
///    GreedyProfit all produce identical `MobilityOutcome`s on the two
///    engines.
///
/// Each speedup must reach `DMRA_LINKBATCH_SPEEDUP_MIN` (default 1.5);
/// the process exits 1 otherwise, so `scripts/bench.sh` doubles as a
/// perf-regression check. The run ends with an instrumented mobility
/// pass that reports the row-cache hit rate from the
/// `online.row_cache_hits/misses` counters.
fn bench_linkbatch_mode() {
    use dmra_baselines::GreedyProfit;
    use dmra_core::{CandidateScan, ProblemInstance};
    use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};

    let min_speedup: f64 = std::env::var("DMRA_LINKBATCH_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let mut all_gates_pass = true;

    // -- Gate 1: 2000-UE instance build, batched vs scalar scan. --
    let base = bench_instance(2000, 7);
    let rebuild = |scan: CandidateScan| -> ProblemInstance {
        ProblemInstance::build_with_scan(
            base.sps().to_vec(),
            base.bss().to_vec(),
            base.ues().to_vec(),
            base.catalog(),
            *base.pricing(),
            *base.radio(),
            base.coverage(),
            Threads::Auto,
            scan,
        )
        .expect("bench instance rebuilds")
    };
    let batched = rebuild(CandidateScan::Auto);
    let scalar = rebuild(CandidateScan::Exhaustive);
    let identical_build = (0..batched.n_ues()).all(|u| {
        let ue = dmra_types::UeId::new(u as u32);
        batched.candidates(ue) == scalar.candidates(ue)
    });
    assert!(
        identical_build,
        "batched candidate rows diverged from the exhaustive scalar scan"
    );
    let scalar_secs = best_of(3, || rebuild(CandidateScan::Exhaustive));
    let batched_secs = best_of(3, || rebuild(CandidateScan::Auto));
    let build_speedup = scalar_secs / batched_secs;
    let build_pass = build_speedup >= min_speedup;
    all_gates_pass &= build_pass;
    obs_info!(
        "build 2000 UEs: scalar exhaustive {scalar_secs:.4} s, batched pruned \
         {batched_secs:.4} s ({build_speedup:.1}x, identical rows)"
    );

    // -- Gate 2: mobility loop on a sticky, mostly-stationary population. --
    let mobility_config = MobilityConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(2000).with_seed(7),
        speed_mps: (5.0, 10.0),
        epoch_seconds: 10.0,
        epochs: 20,
        seed: 11,
        policy: MobilityPolicy::Sticky,
        stationary_fraction: 0.9,
    };
    type Factory = fn() -> Box<dyn Allocator>;
    let factories: Vec<(&str, Factory)> = vec![
        ("DMRA", || Box::new(Dmra::default())),
        ("NonCo", || Box::new(NonCo::default())),
        ("GreedyProfit", || Box::new(GreedyProfit::default())),
    ];
    for (name, factory) in &factories {
        let sim = MobilitySimulator::new(mobility_config.clone()).with_allocator(factory());
        let (incremental_out, _) = timed(|| sim.run().expect("incremental mobility runs"));
        let (scratch_out, _) = timed(|| sim.run_scratch().expect("scratch mobility runs"));
        assert_eq!(
            incremental_out, scratch_out,
            "{name}: incremental mobility engine diverged from scratch"
        );
    }
    obs_info!("mobility outcomes identical across engines for DMRA, NonCo, GreedyProfit");
    let sim = MobilitySimulator::new(mobility_config.clone());
    let scratch_mob_secs = best_of(3, || sim.run_scratch().expect("scratch mobility runs"));
    let incremental_mob_secs = best_of(3, || sim.run().expect("incremental mobility runs"));
    let mobility_speedup = scratch_mob_secs / incremental_mob_secs;
    let mobility_pass = mobility_speedup >= min_speedup;
    all_gates_pass &= mobility_pass;
    obs_info!(
        "mobility sticky 2000 UEs, 20 epochs, 90% stationary: scratch \
         {scratch_mob_secs:.4} s, incremental {incremental_mob_secs:.4} s \
         ({mobility_speedup:.1}x, identical outcomes)"
    );

    // -- Row-cache hit rate from the telemetry counters. --
    dmra_obs::global().reset();
    dmra_obs::global_trace().clear();
    dmra_obs::set_enabled(true);
    sim.run().expect("instrumented mobility runs");
    dmra_obs::set_enabled(false);
    let snapshot = dmra_obs::global().snapshot();
    let hits = snapshot.counter("online.row_cache_hits").unwrap_or(0);
    let misses = snapshot.counter("online.row_cache_misses").unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    obs_info!(
        "row cache: {hits} hits, {misses} misses ({:.1}% hit rate)",
        hit_rate * 100.0
    );

    let json = format!(
        "{{\n  \"title\": \"batched link kernel + cross-epoch row cache vs \
         scalar/scratch baselines (paper deployment, 2000 UEs)\",\n  \
         \"min_speedup\": {min_speedup},\n  \"instance_build\": {{\n    \
         \"n_ues\": 2000, \"scalar_secs\": {scalar_secs:.4}, \
         \"batched_secs\": {batched_secs:.4}, \"speedup\": {build_speedup:.2}, \
         \"gate_pass\": {build_pass}, \"identical_rows\": true\n  }},\n  \
         \"mobility\": {{\n    \"n_ues\": 2000, \"epochs\": 20, \
         \"policy\": \"sticky\", \"stationary_fraction\": 0.9, \
         \"scratch_secs\": {scratch_mob_secs:.4}, \
         \"incremental_secs\": {incremental_mob_secs:.4}, \
         \"speedup\": {mobility_speedup:.2}, \"gate_pass\": {mobility_pass}, \
         \"identical_outcome\": true, \
         \"allocators_verified\": [\"DMRA\", \"NonCo\", \"GreedyProfit\"],\n    \
         \"row_cache\": {{ \"hits\": {hits}, \"misses\": {misses}, \
         \"hit_rate\": {hit_rate:.4} }}\n  }}\n}}\n"
    );
    fs::write("BENCH_linkbatch.json", &json).expect("can write BENCH_linkbatch.json");
    obs_info!("wrote BENCH_linkbatch.json");
    if !all_gates_pass {
        obs_error!("link-batch speedup fell below the {min_speedup}x bound");
        std::process::exit(1);
    }
}

/// Benchmarks the region-sharded deployment runtime and writes
/// `BENCH_shard.json`.
///
/// Three sections:
///
/// 1. **Equality at paper scale** — `run_sharded` on the 1×1, 2×1, 2×2
///    and 3×3 grids must reproduce the unsharded incremental outcome
///    bit-identically. This gate is unconditional and runs before any
///    timing, so the scaling figures can never be bought with a
///    behaviour change.
/// 2. **Shard-count scaling curve** — best-of-3 wall times for shard
///    counts {1, 2, 4, 9} on the 10 × 10-site wide-area grid under
///    heavy load, each count's outcome asserted `==` the unsharded one
///    first. The `DMRA_SHARD_SPEEDUP_MIN` gate (default 2, exit 1 below
///    it) compares 4 shards against 1 — but only on hosts exposing ≥ 4
///    hardware threads. On smaller hosts the gate is recorded as skipped
///    in the JSON: shard workers time-sliced onto one core can only
///    measure scheduling overhead, not parallel speedup.
/// 3. **Sustained scale** — one 2 × 2-sharded run over a 140 × 140-site
///    metro deployment (19600 BSs, 5 SPs) whose offered load pushes the
///    steady-state concurrency past one million in-service tasks,
///    asserted from the per-epoch `in_service` trace.
fn bench_shard_mode() {
    let min_speedup: f64 = std::env::var("DMRA_SHARD_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);

    // -- Equality across shard grids at paper scale. --
    let paper_sim = DynamicSimulator::new(DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: 120.0,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs: 60,
        seed: 11,
    });
    let paper_unsharded = paper_sim.run().expect("incremental engine runs");
    for &(rows, cols) in &[(1usize, 1usize), (2, 1), (2, 2), (3, 3)] {
        let sharded = paper_sim
            .run_sharded(rows, cols)
            .expect("sharded engine runs");
        assert_eq!(
            sharded, paper_unsharded,
            "sharded engine diverged from unsharded on the {rows}x{cols} grid"
        );
    }
    obs_info!("paper-scale outcomes identical on the 1x1, 2x1, 2x2 and 3x3 shard grids");

    // -- Scaling curve on the wide-area grid (same deployment as
    //    bench_event: 10 × 10 sites, 300 m ISD, 20 BSs per SP). --
    let mut scenario = ScenarioConfig::paper_defaults();
    scenario.bss_per_sp = 20;
    scenario.bs_placement = BsPlacement::RegularGrid {
        rows: 10,
        cols: 10,
        isd: Meters::new(300.0),
    };
    scenario.region = Rect::square(Meters::new(3000.0));
    scenario
        .validate()
        .expect("wide-area bench scenario is valid");
    let epochs = 60usize;
    let wide_sim = DynamicSimulator::new(DynamicConfig {
        scenario,
        arrival_rate: 600.0,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs,
        seed: 11,
    });
    let (wide_unsharded, _) = timed(|| wide_sim.run().expect("incremental engine runs"));
    let unsharded_secs = best_of(3, || wide_sim.run().expect("incremental engine runs"));
    let mut curve_rows = String::new();
    let mut one_shard_secs = f64::NAN;
    let mut four_shard_secs = f64::NAN;
    for shards in [1usize, 2, 4, 9] {
        let out = wide_sim.run_sharded_n(shards).expect("sharded engine runs");
        assert_eq!(
            out, wide_unsharded,
            "sharded engine diverged from unsharded at {shards} shards"
        );
        let secs = best_of(3, || {
            wide_sim.run_sharded_n(shards).expect("sharded engine runs")
        });
        if shards == 1 {
            one_shard_secs = secs;
        }
        if shards == 4 {
            four_shard_secs = secs;
        }
        let speedup_vs_one = one_shard_secs / secs;
        let epochs_per_sec = epochs as f64 / secs;
        obs_info!(
            "shard curve {shards} shard(s): {secs:.4} s ({speedup_vs_one:.2}x vs 1 shard, \
             {epochs_per_sec:.0} epochs/s, identical outcome)"
        );
        if !curve_rows.is_empty() {
            curve_rows.push_str(",\n");
        }
        curve_rows.push_str(&format!(
            "      {{ \"shards\": {shards}, \"secs\": {secs:.4}, \
             \"speedup_vs_one_shard\": {speedup_vs_one:.2}, \
             \"epochs_per_sec\": {epochs_per_sec:.1}, \"identical_outcome\": true }}"
        ));
    }
    let speedup_at_four = one_shard_secs / four_shard_secs;
    let gate_applied = hardware_threads >= 4;
    let gate_pass = speedup_at_four >= min_speedup;
    let gate_status = if !gate_applied {
        "skipped"
    } else if gate_pass {
        "pass"
    } else {
        "fail"
    };
    obs_info!(
        "shard speedup gate: {speedup_at_four:.2}x at 4 shards vs {min_speedup}x bound \
         ({gate_status}; {hardware_threads} hardware thread(s))"
    );

    // -- Sustained metro-scale run: ≥ 1e6 concurrent in-service tasks. --
    // 140 × 140 sites at the paper's 300 m ISD (19600 BSs over 5 SPs),
    // 40 MHz uplink, deterministic 25-epoch holding: offered concurrency
    // is 64000 × 25 = 1.6M against a ~2M-task aggregate capacity, so the
    // in-service count crosses one million around epoch 18.
    let mut metro = ScenarioConfig::paper_defaults();
    metro.bss_per_sp = 3920;
    metro.bs_placement = BsPlacement::RegularGrid {
        rows: 140,
        cols: 140,
        isd: Meters::new(300.0),
    };
    metro.region = Rect::square(Meters::new(42_000.0));
    metro.uplink_bandwidth = Hertz::from_mhz(40.0);
    metro.validate().expect("metro-scale scenario is valid");
    let metro_epochs = 26usize;
    let metro_sim = DynamicSimulator::new(DynamicConfig {
        scenario: metro,
        arrival_rate: 64_000.0,
        mean_holding: 25.0,
        holding: HoldingDistribution::Deterministic,
        epochs: metro_epochs,
        seed: 11,
    });
    let (metro_out, metro_secs) = timed(|| {
        metro_sim
            .run_sharded(2, 2)
            .expect("metro-scale sharded run completes")
    });
    let peak_in_service = metro_out.in_service.iter().copied().max().unwrap_or(0);
    assert!(
        peak_in_service >= 1_000_000,
        "metro-scale run peaked at {peak_in_service} concurrent tasks, expected >= 1e6"
    );
    let metro_arrivals_per_sec = metro_out.arrivals as f64 / metro_secs;
    let metro_epochs_per_sec = metro_epochs as f64 / metro_secs;
    obs_info!(
        "metro scale (19600 BSs, 2x2 shards): {} arrivals over {metro_epochs} epochs \
         in {metro_secs:.1} s, peak {peak_in_service} tasks in service \
         ({metro_arrivals_per_sec:.0} arrivals/s, {metro_epochs_per_sec:.2} epochs/s)",
        metro_out.arrivals
    );

    let json = format!(
        "{{\n  \"title\": \"region-sharded runtime: shard-count scaling \
         (10x10-site wide-area grid, rate 600) and sustained metro scale \
         (140x140 sites, rate 64000, deterministic holding)\",\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"min_speedup_at_four_shards\": {min_speedup},\n  \
         \"equality_grids\": [\"1x1\", \"2x1\", \"2x2\", \"3x3\"],\n  \
         \"scaling\": {{\n    \"epochs\": {epochs}, \"arrival_rate\": 600,\n    \
         \"unsharded_secs\": {unsharded_secs:.4},\n    \"runs\": [\n{curve_rows}\n    ],\n    \
         \"speedup_at_four_shards\": {speedup_at_four:.2},\n    \
         \"gate\": \"{gate_status}\"\n  }},\n  \"metro\": {{\n    \
         \"n_bss\": 19600, \"shards\": \"2x2\", \"epochs\": {metro_epochs}, \
         \"arrival_rate\": 64000,\n    \"arrivals\": {},\n    \
         \"peak_in_service\": {peak_in_service},\n    \
         \"secs\": {metro_secs:.1},\n    \
         \"arrivals_per_sec\": {metro_arrivals_per_sec:.1},\n    \
         \"epochs_per_sec\": {metro_epochs_per_sec:.3}\n  }}\n}}\n",
        metro_out.arrivals
    );
    fs::write("BENCH_shard.json", &json).expect("can write BENCH_shard.json");
    obs_info!("wrote BENCH_shard.json");
    if gate_applied && !gate_pass {
        obs_error!(
            "shard speedup {speedup_at_four:.2}x at 4 shards fell below the {min_speedup}x bound"
        );
        std::process::exit(1);
    }
}

/// Benchmarks the component-decomposed DMRA solve against the monolithic
/// path and writes `BENCH_solve.json`.
///
/// Three sections:
///
/// 1. **Equality before timing** — at paper scale (600 and 2000 UEs,
///    where the dense grid collapses to a single component and the
///    component path degrades to the ordinary serial solve) and on the
///    sparse metro grid, the component solve must reproduce the
///    monolithic `DmraOutcome` bit-identically at every solve-thread
///    count. This gate is unconditional, so the speedup figures can
///    never be bought with a behaviour change.
/// 2. **Component structure** — the metro deployment (140 × 140 sites,
///    19600 BSs, 12000 UEs at ~0.6 UEs per site) splits into hundreds of
///    candidate-graph components; the JSON records the count, the
///    cloud-only population, and a power-of-two size histogram, and an
///    instrumented solve verifies the `core.components` /
///    `core.component_ues` telemetry records the same partition.
/// 3. **Speedup curve** — best-of-3 monolithic wall time vs the
///    component path at solve-thread counts {1, 2, 4}. Decomposition
///    already wins serially (each component converges in its own, lower,
///    iteration count instead of every UE paying the global maximum);
///    worker threads stack on top. The `DMRA_SOLVE_SPEEDUP_MIN` gate
///    (default 1.5, exit 1 below it) compares 4 solve threads against
///    the monolithic baseline — but only on hosts exposing ≥ 4 hardware
///    threads; smaller hosts record the gate as skipped, matching the
///    `bench_shard` precedent.
fn bench_solve_mode() {
    use dmra_core::{decompose, SolveMode};

    let min_speedup: f64 = std::env::var("DMRA_SOLVE_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);

    // -- Equality at paper scale (dense: one component, serial path). --
    let mut paper_rows = String::new();
    for n_ues in [600usize, 2000] {
        let instance = bench_instance(n_ues, 7);
        let mono = Dmra::default().solve(&instance).expect("solves");
        let d = decompose(&instance);
        for threads in [1usize, 2, 4] {
            let comp = Dmra::default()
                .with_solve_mode(SolveMode::Components)
                .with_solve_threads(Threads::Fixed(threads))
                .solve(&instance)
                .expect("solves");
            assert_eq!(
                comp, mono,
                "component solve diverged at {n_ues} UEs, {threads} threads"
            );
        }
        obs_info!(
            "paper scale {n_ues} UEs: {} component(s), outcomes identical",
            d.components.len()
        );
        if !paper_rows.is_empty() {
            paper_rows.push_str(",\n");
        }
        paper_rows.push_str(&format!(
            "      {{ \"n_ues\": {n_ues}, \"components\": {}, \
             \"identical_outcome\": true }}",
            d.components.len()
        ));
    }

    // -- Sparse metro grid: the regime decomposition exists for. --
    let mut metro = ScenarioConfig::paper_defaults()
        .with_ues(12_000)
        .with_seed(7);
    metro.bss_per_sp = 3920;
    metro.bs_placement = BsPlacement::RegularGrid {
        rows: 140,
        cols: 140,
        isd: Meters::new(300.0),
    };
    metro.region = Rect::square(Meters::new(42_000.0));
    metro.uplink_bandwidth = Hertz::from_mhz(40.0);
    metro.validate().expect("metro solve scenario is valid");
    let instance = metro
        .build_with_threads(Threads::Auto)
        .expect("metro instance builds");
    let decomp = decompose(&instance);
    let n_components = decomp.components.len();
    let max_ues = decomp.max_component_ues();

    // Power-of-two component-size histogram: bucket k holds components
    // with 2^(k-1) < |UEs| <= 2^k (bucket 0 holds singletons).
    let mut buckets: Vec<u64> = Vec::new();
    for c in &decomp.components {
        let k = usize::BITS as usize - (c.ues.len() - 1).leading_zeros() as usize;
        if buckets.len() <= k {
            buckets.resize(k + 1, 0);
        }
        buckets[k] += 1;
    }
    let mut histogram_rows = String::new();
    for (k, count) in buckets.iter().enumerate() {
        if !histogram_rows.is_empty() {
            histogram_rows.push_str(",\n");
        }
        let lo = if k == 0 { 1 } else { (1usize << (k - 1)) + 1 };
        histogram_rows.push_str(&format!(
            "      {{ \"ues_from\": {lo}, \"ues_to\": {}, \"components\": {count} }}",
            1usize << k
        ));
    }
    obs_info!(
        "metro grid: {} BSs, {} UEs -> {n_components} components \
         ({} cloud-only, largest {max_ues} UEs)",
        instance.n_bss(),
        instance.n_ues(),
        decomp.cloud_only.len()
    );

    // Equality on the metro instance, plus the telemetry counters from
    // one instrumented component solve.
    let mono_out = Dmra::default().solve(&instance).expect("solves");
    dmra_obs::global().reset();
    dmra_obs::global_trace().clear();
    dmra_obs::set_enabled(true);
    let comp_out = Dmra::default()
        .with_solve_mode(SolveMode::Components)
        .solve(&instance)
        .expect("solves");
    dmra_obs::set_enabled(false);
    assert_eq!(comp_out, mono_out, "metro component solve diverged");
    let obs_components = dmra_obs::global().counter("core.components").get();
    let obs_sizes_recorded = dmra_obs::global().histogram("core.component_ues").count();
    assert_eq!(
        obs_components as usize, n_components,
        "core.components disagrees with decompose()"
    );

    // -- Speedup curve: monolithic vs component path. --
    let dmra = Dmra::default();
    let mono_secs = best_of(3, || dmra.solve(&instance).expect("solves"));
    let mut curve_rows = String::new();
    let mut speedup_at_four = f64::NAN;
    for threads in [1usize, 2, 4] {
        let solver = Dmra::default()
            .with_solve_mode(SolveMode::Components)
            .with_solve_threads(Threads::Fixed(threads));
        let out = solver.solve(&instance).expect("solves");
        assert_eq!(
            out, mono_out,
            "component solve diverged at {threads} threads"
        );
        let secs = best_of(3, || solver.solve(&instance).expect("solves"));
        let speedup = mono_secs / secs;
        if threads == 4 {
            speedup_at_four = speedup;
        }
        obs_info!(
            "solve curve {threads} thread(s): {secs:.4} s vs monolithic \
             {mono_secs:.4} s ({speedup:.2}x, identical outcome)"
        );
        if !curve_rows.is_empty() {
            curve_rows.push_str(",\n");
        }
        curve_rows.push_str(&format!(
            "      {{ \"threads\": {threads}, \"secs\": {secs:.4}, \
             \"speedup_vs_monolithic\": {speedup:.2}, \"identical_outcome\": true }}"
        ));
    }
    let gate_applied = hardware_threads >= 4;
    let gate_pass = speedup_at_four >= min_speedup;
    let gate_status = if !gate_applied {
        "skipped"
    } else if gate_pass {
        "pass"
    } else {
        "fail"
    };
    obs_info!(
        "solve speedup gate: {speedup_at_four:.2}x at 4 solve threads vs \
         {min_speedup}x bound ({gate_status}; {hardware_threads} hardware thread(s))"
    );

    let json = format!(
        "{{\n  \"title\": \"component-decomposed DMRA solve vs monolithic \
         (paper grid and 140x140-site sparse metro grid)\",\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"min_speedup_at_four_threads\": {min_speedup},\n  \
         \"paper_scale\": {{\n    \"runs\": [\n{paper_rows}\n    ]\n  }},\n  \
         \"metro\": {{\n    \"n_bss\": {}, \"n_ues\": {},\n    \
         \"components\": {n_components}, \"cloud_only\": {},\n    \
         \"max_component_ues\": {max_ues},\n    \
         \"size_histogram\": [\n{histogram_rows}\n    ],\n    \
         \"telemetry\": {{ \"core_components\": {obs_components}, \
         \"component_sizes_recorded\": {obs_sizes_recorded} }},\n    \
         \"monolithic_secs\": {mono_secs:.4},\n    \
         \"runs\": [\n{curve_rows}\n    ],\n    \
         \"speedup_at_four_threads\": {speedup_at_four:.2},\n    \
         \"gate\": \"{gate_status}\"\n  }}\n}}\n",
        instance.n_bss(),
        instance.n_ues(),
        decomp.cloud_only.len(),
    );
    fs::write("BENCH_solve.json", &json).expect("can write BENCH_solve.json");
    obs_info!("wrote BENCH_solve.json");
    if gate_applied && !gate_pass {
        obs_error!(
            "component solve speedup {speedup_at_four:.2}x at 4 threads \
             fell below the {min_speedup}x bound"
        );
        std::process::exit(1);
    }
}

/// Benchmarks the cross-epoch delta solver (`--solve delta`) on two
/// low-churn workloads and writes `BENCH_delta.json`.
///
/// 1. **90%-stationary mobility loop**: a 5×5 grid of disjoint coverage
///    islands (inter-site distance 1500 m, radius 300 m); 90% of the
///    population is pinned, so most islands see no churn most epochs.
///    Delta-mode incremental run vs the monolithic incremental run and
///    the rebuild-from-scratch epoch loop; outcomes asserted
///    bit-identical first, then the speedup vs the scratch epoch loop
///    is gated on `DMRA_DELTA_SPEEDUP_MIN` (default 2.0), matching the
///    `bench_event` gate convention.
/// 2. **Metro low-rate dynamic run**: a 40×40-site metro grid of disjoint micro-cells with a
///    persistent 4000-UE population where 1% of slots churn per epoch
///    (a departure immediately backfilled by a fresh arrival in the
///    same slot, the steady-state shape of a low-rate dynamic system).
///    Most epochs dirty well under 10% of components, so the delta
///    session replays almost everything; the speedup vs the scratch
///    epoch loop (fresh residual build + monolithic solve per epoch)
///    is gated on the same bound, and the isolated comparison against
///    monolithic sessions on the *same* row-cached context — wall and
///    allocate phase — is reported alongside.
///
/// Both sections report the delta hit/miss/replay counters from one
/// instrumented pass, so the JSON records *why* the speedup happened.
fn bench_delta_mode() {
    use dmra_core::SolveMode;
    use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
    use dmra_types::UeSpec;

    let min_speedup: f64 = std::env::var("DMRA_DELTA_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let counters = [
        "core.delta_solves",
        "core.delta_component_hits",
        "core.delta_component_misses",
        "core.delta_replayed_ues",
    ]
    .map(|name| dmra_obs::global().counter(name));
    let snapshot = |handles: &[std::sync::Arc<dmra_obs::Counter>; 4]| {
        [
            handles[0].get(),
            handles[1].get(),
            handles[2].get(),
            handles[3].get(),
        ]
    };

    // -- Workload 1: the 90%-stationary mobility loop. --
    let mut islands = ScenarioConfig::paper_defaults()
        .with_ues(4000)
        .with_seed(13);
    islands.bs_placement = BsPlacement::RegularGrid {
        rows: 5,
        cols: 5,
        isd: Meters::new(1500.0),
    };
    islands.region = Rect::square(Meters::new(7500.0));
    islands.coverage = dmra_core::CoverageModel::FixedRadius(Meters::new(300.0));
    islands.validate().expect("island scenario is valid");
    let mob_cfg = MobilityConfig {
        scenario: islands,
        speed_mps: (5.0, 15.0),
        epoch_seconds: 10.0,
        epochs: 400,
        seed: 13,
        policy: MobilityPolicy::FullReallocation,
        stationary_fraction: 0.9,
    };
    let delta_sim = MobilitySimulator::new(mob_cfg.clone())
        .with_allocator(Box::new(Dmra::default().with_solve_mode(SolveMode::Delta)));
    let mono_sim = MobilitySimulator::new(mob_cfg).with_allocator(Box::new(
        Dmra::default().with_solve_mode(SolveMode::Monolithic),
    ));
    let delta_out = delta_sim.run().expect("delta mobility run");
    assert_eq!(
        delta_out,
        mono_sim.run().expect("monolithic mobility run"),
        "delta mobility outcome diverged from monolithic"
    );
    assert_eq!(
        delta_out,
        mono_sim.run_scratch().expect("scratch mobility run"),
        "delta mobility outcome diverged from the scratch epoch loop"
    );
    let before = snapshot(&counters);
    dmra_obs::set_enabled(true);
    delta_sim.run().expect("instrumented delta mobility run");
    dmra_obs::set_enabled(false);
    let after = snapshot(&counters);
    let [mob_solves, mob_hits, mob_misses, mob_replayed] =
        [0, 1, 2, 3].map(|i| after[i] - before[i]);
    let mob_hit_rate = mob_hits as f64 / (mob_hits + mob_misses).max(1) as f64;
    let delta_secs = best_of(3, || delta_sim.run().expect("delta mobility run"));
    let incremental_secs = best_of(3, || mono_sim.run().expect("monolithic mobility run"));
    let scratch_secs = best_of(3, || mono_sim.run_scratch().expect("scratch mobility run"));
    let mob_speedup_vs_scratch = scratch_secs / delta_secs;
    let mob_speedup_vs_incremental = incremental_secs / delta_secs;
    let mob_gate_pass = mob_speedup_vs_scratch >= min_speedup;
    obs_info!(
        "mobility islands, 400 epochs, 90% stationary: delta {delta_secs:.4} s, \
         incremental {incremental_secs:.4} s, scratch {scratch_secs:.4} s \
         ({mob_speedup_vs_scratch:.1}x vs epoch loop, \
         {mob_speedup_vs_incremental:.2}x vs incremental; \
         hit rate {:.0}%, {mob_replayed} UEs replayed)",
        mob_hit_rate * 100.0
    );

    // -- Workload 2: the metro low-rate dynamic run. --
    let mut metro = ScenarioConfig::paper_defaults().with_ues(4000).with_seed(7);
    metro.bss_per_sp = 320;
    metro.bs_placement = BsPlacement::RegularGrid {
        rows: 40,
        cols: 40,
        isd: Meters::new(300.0),
    };
    metro.region = Rect::square(Meters::new(12_000.0));
    metro.uplink_bandwidth = Hertz::from_mhz(40.0);
    // Sub-percolation overlap: at radius 200 m on a 300 m pitch, the
    // lens between adjacent sites is small enough that the shared-UE
    // graph stays subcritical — the instance decomposes into many small
    // multi-BS clusters instead of one giant component, so low churn
    // really does leave most components clean.
    metro.coverage = dmra_core::CoverageModel::FixedRadius(Meters::new(200.0));
    // Capacity of ~one task per BS: rejection cascades across the
    // overlapping sites give the deferred-acceptance matching real
    // rounds, the work clean-component replay elides.
    metro.cru_budget_range = (4, 6);
    metro.validate().expect("metro delta scenario is valid");
    let deployment = metro
        .clone()
        .with_ues(0)
        .build()
        .expect("metro deployment builds");
    let full_cru: Vec<Vec<Cru>> = deployment
        .bss()
        .iter()
        .map(|b| b.cru_budget.clone())
        .collect();
    let full_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
    let initial = metro
        .build_with_threads(Threads::Auto)
        .expect("metro population builds");
    let donor = metro
        .clone()
        .with_seed(8)
        .build_with_threads(Threads::Auto)
        .expect("metro donor population builds");
    let (epochs, churn_per_epoch) = (30usize, 40usize);
    let mut batch: Vec<UeSpec> = initial.ues().to_vec();
    let donor_specs: Vec<UeSpec> = donor.ues().to_vec();
    // Deterministic churn trace (LCG, fixed seed): each event replaces a
    // slot's UE with a donor draw, keeping the slot's UE id — a
    // departure backfilled by an arrival.
    let mut x: u64 = 0x243F_6A88_85A3_08D3;
    let mut lcg = move || {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (x >> 33) as usize
    };
    let mut batches: Vec<Vec<UeSpec>> = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        for _ in 0..churn_per_epoch {
            let slot = lcg() % batch.len();
            let pick = lcg() % donor_specs.len();
            let id = batch[slot].id;
            batch[slot] = donor_specs[pick];
            batch[slot].id = id;
        }
        batches.push(batch.clone());
    }

    // Equality pass (instrumented): every epoch's delta allocation must
    // equal a fresh monolithic solve of the identical instance.
    let before = snapshot(&counters);
    dmra_obs::set_enabled(true);
    {
        let delta_alloc = Dmra::default().with_solve_mode(SolveMode::Delta);
        let mut session = delta_alloc.session();
        let mono = Dmra::default().with_solve_mode(SolveMode::Monolithic);
        let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
        for (epoch, b) in batches.iter().enumerate() {
            let instance = ctx
                .epoch_instance(&full_cru, &full_rrb, b.clone())
                .expect("metro epoch instance builds");
            assert_eq!(
                session.allocate(instance),
                mono.allocate(instance),
                "metro delta allocation diverged at epoch {epoch}"
            );
        }
    }
    dmra_obs::set_enabled(false);
    let after = snapshot(&counters);
    let [metro_solves, metro_hits, metro_misses, metro_replayed] =
        [0, 1, 2, 3].map(|i| after[i] - before[i]);
    let metro_hit_rate = metro_hits as f64 / (metro_hits + metro_misses).max(1) as f64;
    let dirty_component_fraction = 1.0 - metro_hit_rate;

    // Three loops over the identical batch trace: the delta path
    // (row-cached context + delta sessions), the same context with
    // monolithic sessions (isolating the solver swap), and the scratch
    // epoch loop (fresh residual build + monolithic solve per epoch —
    // the baseline a low-rate dynamic system without the online engine
    // pays, and the same baseline the `bench_event` gate uses). The
    // gate compares delta against the scratch loop; the isolated
    // allocate-phase numbers are reported alongside, never hidden —
    // at this scale the matching itself is near-linear, so most of the
    // end-to-end win comes from replay skipping the rebuild + rounds
    // together.
    let run_loop = |mode: SolveMode| {
        let alloc = Dmra::default().with_solve_mode(mode);
        let mut session = alloc.session();
        let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
        let mut digest_fold = 0u64;
        let mut solve_secs = 0.0f64;
        for b in &batches {
            let instance = ctx
                .epoch_instance(&full_cru, &full_rrb, b.clone())
                .expect("metro epoch instance builds");
            let (allocation, secs) = timed(|| session.allocate(instance));
            solve_secs += secs;
            digest_fold ^= allocation.digest();
        }
        (digest_fold, solve_secs)
    };
    let scratch_loop = || {
        let mono = Dmra::default().with_solve_mode(SolveMode::Monolithic);
        let mut digest_fold = 0u64;
        for b in &batches {
            let instance = deployment
                .residual(&full_cru, &full_rrb, b.clone())
                .expect("metro residual instance builds");
            digest_fold ^= mono.allocate(&instance).digest();
        }
        digest_fold
    };
    let (delta_fold, _) = run_loop(SolveMode::Delta);
    assert_eq!(
        delta_fold,
        run_loop(SolveMode::Monolithic).0,
        "metro digest fold diverged between delta and monolithic loops"
    );
    assert_eq!(
        delta_fold,
        scratch_loop(),
        "metro digest fold diverged between delta and scratch loops"
    );
    let mut metro_delta_secs = f64::INFINITY;
    let mut metro_delta_solve_secs = f64::INFINITY;
    let mut metro_mono_secs = f64::INFINITY;
    let mut metro_mono_solve_secs = f64::INFINITY;
    for _ in 0..3 {
        let ((_, solve), wall) = timed(|| run_loop(SolveMode::Delta));
        metro_delta_secs = metro_delta_secs.min(wall);
        metro_delta_solve_secs = metro_delta_solve_secs.min(solve);
        let ((_, solve), wall) = timed(|| run_loop(SolveMode::Monolithic));
        metro_mono_secs = metro_mono_secs.min(wall);
        metro_mono_solve_secs = metro_mono_solve_secs.min(solve);
    }
    let metro_scratch_secs = best_of(3, scratch_loop);
    let metro_speedup = metro_scratch_secs / metro_delta_secs;
    let metro_allocate_speedup = metro_mono_solve_secs / metro_delta_solve_secs;
    let metro_wall_vs_mono = metro_mono_secs / metro_delta_secs;
    let metro_gate_pass = metro_speedup >= min_speedup;
    obs_info!(
        "metro churn loop, {epochs} epochs, {churn_per_epoch} churned slots/epoch: \
         delta {metro_delta_secs:.4} s, cached monolithic {metro_mono_secs:.4} s, \
         scratch {metro_scratch_secs:.4} s ({metro_speedup:.1}x vs epoch loop, \
         {metro_wall_vs_mono:.2}x vs cached monolithic, allocate phase \
         {metro_allocate_speedup:.2}x); {:.1}% of components dirty, \
         {metro_replayed} UEs replayed",
        dirty_component_fraction * 100.0
    );

    let json = format!(
        "{{\n  \"title\": \"cross-epoch delta solver vs monolithic (island \
         mobility loop and 40x40-site metro churn loop)\",\n  \
         \"min_speedup\": {min_speedup},\n  \
         \"mobility_islands\": {{\n    \
         \"epochs\": 400, \"n_ues\": 4000, \"stationary_fraction\": 0.9,\n    \
         \"delta_secs\": {delta_secs:.4}, \
         \"incremental_secs\": {incremental_secs:.4}, \
         \"scratch_secs\": {scratch_secs:.4},\n    \
         \"speedup_vs_epoch_loop\": {mob_speedup_vs_scratch:.2}, \
         \"speedup_vs_incremental\": {mob_speedup_vs_incremental:.2},\n    \
         \"delta_solves\": {mob_solves}, \"component_hits\": {mob_hits}, \
         \"component_misses\": {mob_misses}, \"replayed_ues\": {mob_replayed}, \
         \"hit_rate\": {mob_hit_rate:.3},\n    \
         \"gate_pass\": {mob_gate_pass}, \"identical_outcome\": true\n  }},\n  \
         \"metro_churn\": {{\n    \
         \"epochs\": {epochs}, \"n_ues\": 4000, \
         \"churned_slots_per_epoch\": {churn_per_epoch},\n    \
         \"delta_secs\": {metro_delta_secs:.4}, \
         \"cached_monolithic_secs\": {metro_mono_secs:.4}, \
         \"scratch_secs\": {metro_scratch_secs:.4},\n    \
         \"speedup_vs_epoch_loop\": {metro_speedup:.2}, \
         \"speedup_vs_cached_monolithic\": {metro_wall_vs_mono:.2},\n    \
         \"delta_allocate_secs\": {metro_delta_solve_secs:.4}, \
         \"monolithic_allocate_secs\": {metro_mono_solve_secs:.4}, \
         \"allocate_speedup\": {metro_allocate_speedup:.2},\n    \
         \"delta_solves\": {metro_solves}, \"component_hits\": {metro_hits}, \
         \"component_misses\": {metro_misses}, \"replayed_ues\": {metro_replayed}, \
         \"dirty_component_fraction\": {dirty_component_fraction:.3},\n    \
         \"gate_pass\": {metro_gate_pass}, \"identical_outcome\": true\n  }}\n}}\n"
    );
    fs::write("BENCH_delta.json", &json).expect("can write BENCH_delta.json");
    obs_info!("wrote BENCH_delta.json");
    if !mob_gate_pass || !metro_gate_pass {
        obs_error!("delta solver speedup fell below the {min_speedup}x bound");
        std::process::exit(1);
    }
}

/// Measures the runtime cost of enabling telemetry on the dynamic
/// simulation hot path and writes `BENCH_obs_overhead.json`.
///
/// The run aborts (exit 1) when the measured overhead exceeds the bound —
/// 2% by default, overridable via `DMRA_OBS_OVERHEAD_BOUND_PCT` for noisy
/// CI machines. It also asserts that the instrumented run produces the
/// bit-identical `DynamicOutcome`, so the overhead figure can never hide
/// a behaviour change.
fn obs_overhead_mode() {
    let bound_pct: f64 = std::env::var("DMRA_OBS_OVERHEAD_BOUND_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    // The heavy-load regime from BENCH_dynamic.json: overhead is gated
    // where the wall-clock actually goes, and the longer run keeps the
    // percentage out of scheduler-jitter territory.
    let runs = 9usize;
    let sim = DynamicSimulator::new(DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: 300.0,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs: 3600,
        seed: 11,
    });
    let run_once = |on: bool| {
        dmra_obs::set_enabled(on);
        let (out, secs) = timed(|| sim.run().expect("dynamic run"));
        dmra_obs::set_enabled(false);
        (out, secs)
    };
    // The recorder-enabled arm: telemetry on AND a flight recorder
    // attached through the process-wide observer slot, streaming one
    // JSONL record per epoch to a temp file — the full `--record` path.
    let record_path =
        std::env::temp_dir().join(format!("dmra-overhead-{}.jsonl", std::process::id()));
    let run_recorded = || {
        let recorder = std::sync::Arc::new(
            dmra_obs::Recorder::create(&record_path, 1).expect("can open overhead record file"),
        );
        dmra_obs::set_epoch_observer(Some(
            std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn dmra_obs::EpochObserver>
        ));
        let (out, secs) = run_once(true);
        dmra_obs::set_epoch_observer(None);
        assert!(recorder.finish(), "overhead flight record write failed");
        (out, secs)
    };

    // Warm up both paths once (page cache, lazy metric registration),
    // checking bit-identical outcomes, then time interleaved off/on pairs.
    // Each pair runs back to back so both sides see the same machine
    // conditions; the median of the per-pair overheads is then immune to a
    // scheduler hiccup landing inside any single window.
    let (baseline_out, _) = run_once(false);
    dmra_obs::global().reset();
    dmra_obs::global_trace().clear();
    let (instrumented_out, _) = run_once(true);
    assert_eq!(
        instrumented_out, baseline_out,
        "telemetry changed the dynamic outcome"
    );
    let (recorded_out, _) = run_recorded();
    assert_eq!(
        recorded_out, baseline_out,
        "flight recording changed the dynamic outcome"
    );
    // Preferred metric: cumulative CPU ticks per side across all pairs —
    // immune to preemption, and ~800 ticks per side at this workload keeps
    // tick quantization well under the bound. Fallback (no /proc): the median of the
    // per-pair wall-clock overheads, since adjacent runs share machine
    // conditions. The within-pair order ALTERNATES: measured back to
    // back, the second run of a pair is consistently a few percent
    // slower on some hosts (frequency-boost decay over the pair), and a
    // fixed off-then-on order would book that position penalty entirely
    // to the instrumented side — several times the ~1% effect being
    // gated. Alternation cancels it.
    let measure = |run_on: &dyn Fn() -> f64| {
        let mut off_secs = f64::INFINITY;
        let mut on_secs = f64::INFINITY;
        let mut pair_pcts = Vec::with_capacity(runs);
        let mut off_ticks = 0u64;
        let mut on_ticks = 0u64;
        let mut have_ticks = true;
        for pair in 0..runs {
            let off_first = pair % 2 == 0;
            let c0 = cpu_ticks();
            let first = if off_first {
                run_once(false).1
            } else {
                run_on()
            };
            let c1 = cpu_ticks();
            let second = if off_first {
                run_on()
            } else {
                run_once(false).1
            };
            let c2 = cpu_ticks();
            let (off, on) = if off_first {
                (first, second)
            } else {
                (second, first)
            };
            off_secs = off_secs.min(off);
            on_secs = on_secs.min(on);
            pair_pcts.push((on - off) / off * 100.0);
            match (c0, c1, c2) {
                (Some(c0), Some(c1), Some(c2)) => {
                    let (d_off, d_on) = if off_first {
                        (c1 - c0, c2 - c1)
                    } else {
                        (c2 - c1, c1 - c0)
                    };
                    off_ticks += d_off;
                    on_ticks += d_on;
                }
                _ => have_ticks = false,
            }
        }
        pair_pcts.sort_by(|a, b| a.total_cmp(b));
        let (metric, pct) = if have_ticks && off_ticks > 0 {
            let pct = (on_ticks as f64 - off_ticks as f64) / off_ticks as f64 * 100.0;
            ("cpu", pct)
        } else {
            ("wall", pair_pcts[runs / 2])
        };
        (pct, off_secs, on_secs, metric)
    };
    // Shared-host wall clocks are noisy enough that a single measurement of
    // a ~1% effect occasionally lands past the bound on pure jitter, so the
    // gate re-measures before failing: a real regression exceeds the bound
    // on every attempt, a noise spike does not.
    let attempts = 3usize;
    let gated_measure = |label: &str, run_on: &dyn Fn() -> f64| {
        let mut attempt = 1usize;
        let (mut overhead_pct, mut off_secs, mut on_secs, mut metric) = measure(run_on);
        while overhead_pct > bound_pct && attempt < attempts {
            obs_info!(
                "{label} overhead attempt {attempt}: {metric} {overhead_pct:+.2}% \
                 exceeds {bound_pct}%, re-measuring"
            );
            attempt += 1;
            (overhead_pct, off_secs, on_secs, metric) = measure(run_on);
        }
        obs_info!(
            "{label} overhead: off {off_secs:.4} s, on {on_secs:.4} s \
             ({metric} {overhead_pct:+.2}%, bound {bound_pct}%, \
             attempt {attempt}/{attempts})"
        );
        (overhead_pct, off_secs, on_secs, metric)
    };
    let (overhead_pct, off_secs, on_secs, metric) = gated_measure("obs", &|| run_once(true).1);
    let (recorder_pct, _, recorder_secs, recorder_metric) =
        gated_measure("recorder", &|| run_recorded().1);
    fs::remove_file(&record_path).ok();
    let within_bound = overhead_pct <= bound_pct;
    let recorder_within_bound = recorder_pct <= bound_pct;
    let json = format!(
        "{{\n  \"title\": \"telemetry overhead, dynamic simulation (rate 300, \
         3600 epochs), {runs} interleaved pairs\",\n  \"metric\": \"{metric}\",\n  \
         \"disabled_secs\": {off_secs:.4},\n  \
         \"enabled_secs\": {on_secs:.4},\n  \"overhead_pct\": {overhead_pct:.2},\n  \
         \"recorder_metric\": \"{recorder_metric}\",\n  \
         \"recorder_secs\": {recorder_secs:.4},\n  \
         \"recorder_overhead_pct\": {recorder_pct:.2},\n  \
         \"recorder_within_bound\": {recorder_within_bound},\n  \
         \"bound_pct\": {bound_pct},\n  \"within_bound\": {within_bound},\n  \
         \"identical_outcome\": true\n}}\n"
    );
    fs::write("BENCH_obs_overhead.json", &json).expect("can write BENCH_obs_overhead.json");
    obs_info!("wrote BENCH_obs_overhead.json");
    if !within_bound {
        obs_error!("telemetry overhead {overhead_pct:.2}% exceeds the {bound_pct}% bound");
        std::process::exit(1);
    }
    if !recorder_within_bound {
        obs_error!("flight-recorder overhead {recorder_pct:.2}% exceeds the {bound_pct}% bound");
        std::process::exit(1);
    }
}

fn run_job(job: &str, opts: &ExperimentOptions) -> Result<Table, String> {
    let result = match job {
        "fig2" => experiments::fig2(opts),
        "fig3" => experiments::fig3(opts),
        "fig4" => experiments::fig4(opts),
        "fig5" => experiments::fig5(opts),
        "fig6" => experiments::fig6(opts),
        "fig7" => experiments::fig7(opts),
        "ablation_same_sp" => experiments::ablation_same_sp_preference(opts),
        "ablation_interference" => experiments::ablation_interference(opts),
        "decentralized_cost" => experiments::decentralized_cost(opts),
        "iota_sweep" => experiments::iota_sweep(opts),
        "online_comparison" => experiments::online_comparison(opts),
        other => {
            return Err(format!(
                "unknown experiment '{other}' (expected fig2..fig7, \
                 ablation_same_sp, ablation_interference, decentralized_cost, \
                 iota_sweep, all, ablations)"
            ))
        }
    };
    result.map_err(|e| format!("{job}: {e}"))
}

fn emit(name: &str, table: &Table) {
    obs_info!("{}", table.to_markdown());
    obs_info!("{}", table.to_sparklines());
    let csv = Path::new("results").join(format!("{name}.csv"));
    fs::write(&csv, table.to_csv()).expect("can write CSV");
    let gp = Path::new("results").join(format!("{name}.gnuplot"));
    fs::write(&gp, table.to_gnuplot(&format!("{name}.csv"))).expect("can write gnuplot script");
    obs_info!("wrote {} and {}", csv.display(), gp.display());
}
