//! Regenerates the data behind every figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p dmra-bench --bin figures -- all
//! cargo run --release -p dmra-bench --bin figures -- fig2 fig7
//! cargo run --release -p dmra-bench --bin figures -- --quick ablations
//! cargo run --release -p dmra-bench --bin figures -- bench
//! ```
//!
//! Markdown tables go to stdout; CSVs are written to `results/<name>.csv`.
//! The `bench` job instead times the sweep engine (serial vs threaded,
//! asserting bit-identical tables), the instance builder, the dense
//! DMRA solver against its reference, and the incremental online engine
//! against the scratch rebuild loop, writing `BENCH_sweep.json` and
//! `BENCH_dynamic.json`.

use dmra_baselines::{Dcsp, NonCo};
use dmra_bench::bench_instance;
use dmra_core::{Allocator, Dmra, Threads};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator};
use dmra_sim::experiments::{self, ExperimentOptions};
use dmra_sim::{ScenarioConfig, SweepRunner, Table};
use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let opts = if quick {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions::paper()
    };
    let mut requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if requested.is_empty() {
        requested.push("all");
    }

    let mut jobs: Vec<&str> = Vec::new();
    for r in requested {
        match r {
            "all" => jobs.extend(["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"]),
            "ablations" => jobs.extend([
                "ablation_same_sp",
                "ablation_interference",
                "decentralized_cost",
                "iota_sweep",
                "online_comparison",
            ]),
            other => jobs.push(other),
        }
    }
    jobs.dedup();

    fs::create_dir_all("results").expect("can create results/ directory");
    for job in jobs {
        if job == "bench" {
            bench_mode();
            continue;
        }
        let table = run_job(job, &opts);
        match table {
            Ok(table) => emit(job, &table),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
}

/// Times a closure, returning its value and the elapsed seconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let value = f();
    (value, t0.elapsed().as_secs_f64())
}

/// The best (minimum) of `n` timed runs, in seconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| timed(&mut f).1)
        .fold(f64::INFINITY, f64::min)
}

/// Measures the parallel execution layer end to end and writes
/// `BENCH_sweep.json` next to the workspace root.
///
/// The sweep section also *verifies* determinism: every threaded table is
/// compared `==` against the serial one and the run aborts on mismatch.
fn bench_mode() {
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("bench: {available} hardware thread(s) available");

    // -- Sweep engine: serial vs threaded on a Fig. 2-shaped workload. --
    let ue_counts = [300usize, 600, 900];
    let points: Vec<(f64, ScenarioConfig)> = ue_counts
        .iter()
        .map(|&n| (n as f64, ScenarioConfig::paper_defaults().with_ues(n)))
        .collect();
    let dmra = Dmra::default();
    let dcsp = Dcsp::default();
    let nonco = NonCo::default();
    let algos: Vec<&dyn Allocator> = vec![&dmra, &dcsp, &nonco];
    let replications = 3u32;
    let runner = SweepRunner::new(replications, 42);
    let run_with = |threads: Threads| -> (Table, f64) {
        timed(|| {
            runner
                .with_threads(threads)
                .run_profit("bench", "#UEs", &points, &algos)
                .expect("bench sweep builds")
        })
    };
    let (serial_table, serial_secs) = run_with(Threads::serial());
    eprintln!("sweep serial: {serial_secs:.3} s");
    let mut sweep_rows = String::new();
    for threads in [2usize, 4] {
        let (table, secs) = run_with(Threads::Fixed(threads));
        assert_eq!(
            table, serial_table,
            "threaded sweep diverged from serial at {threads} threads"
        );
        eprintln!("sweep {threads} threads: {secs:.3} s (table identical)");
        if !sweep_rows.is_empty() {
            sweep_rows.push_str(",\n");
        }
        sweep_rows.push_str(&format!(
            "      {{ \"threads\": {threads}, \"secs\": {secs:.4}, \"identical_to_serial\": true }}"
        ));
    }

    // -- Instance build: serial vs threaded at 900 and 2000 UEs. --
    let mut build_rows = String::new();
    for n_ues in [900usize, 2000] {
        let serial = best_of(3, || {
            dmra_bench::bench_instance_with_threads(n_ues, 7, Threads::serial())
        });
        let auto = best_of(3, || {
            dmra_bench::bench_instance_with_threads(n_ues, 7, Threads::Auto)
        });
        eprintln!("build {n_ues} UEs: serial {serial:.4} s, auto {auto:.4} s");
        if !build_rows.is_empty() {
            build_rows.push_str(",\n");
        }
        build_rows.push_str(&format!(
            "      {{ \"n_ues\": {n_ues}, \"serial_secs\": {serial:.4}, \"auto_secs\": {auto:.4} }}"
        ));
    }

    // -- Dense solver vs the line-by-line reference. --
    let mut solve_rows = String::new();
    for n_ues in [900usize, 2000] {
        let instance = bench_instance(n_ues, 7);
        let dense = best_of(5, || dmra.solve(&instance).expect("solves"));
        let reference = best_of(5, || dmra.solve_reference(&instance).expect("solves"));
        let speedup = reference / dense;
        eprintln!(
            "solve {n_ues} UEs: dense {dense:.4} s, reference {reference:.4} s \
             ({speedup:.1}x)"
        );
        if !solve_rows.is_empty() {
            solve_rows.push_str(",\n");
        }
        solve_rows.push_str(&format!(
            "      {{ \"n_ues\": {n_ues}, \"dense_secs\": {dense:.4}, \
             \"reference_secs\": {reference:.4}, \"speedup\": {speedup:.2} }}"
        ));
    }

    let json = format!(
        "{{\n  \"hardware_threads\": {available},\n  \"sweep\": {{\n    \
         \"title\": \"profit sweep, {} points x {replications} replications x {} algorithms\",\n    \
         \"ue_counts\": {ue_counts:?},\n    \"serial_secs\": {serial_secs:.4},\n    \
         \"threaded\": [\n{sweep_rows}\n    ]\n  }},\n  \"instance_build\": {{\n    \
         \"runs\": [\n{build_rows}\n    ]\n  }},\n  \"dmra_solve\": {{\n    \
         \"runs\": [\n{solve_rows}\n    ]\n  }}\n}}\n",
        points.len(),
        algos.len(),
    );
    fs::write("BENCH_sweep.json", &json).expect("can write BENCH_sweep.json");
    eprintln!("wrote BENCH_sweep.json");

    bench_dynamic();
}

/// Times the incremental online engine against the scratch rebuild loop
/// at paper scale and writes `BENCH_dynamic.json`.
///
/// Both engines must produce bit-identical `DynamicOutcome`s — the run
/// aborts on mismatch, so the speedup figure is never bought with a
/// behaviour change.
fn bench_dynamic() {
    let mut rows = String::new();
    for &(arrival_rate, epochs) in &[(120.0f64, 200usize), (300.0, 200)] {
        let config = DynamicConfig {
            scenario: ScenarioConfig::paper_defaults(),
            arrival_rate,
            mean_holding: 5.0,
            epochs,
            seed: 11,
        };
        let sim = DynamicSimulator::new(config);
        let (scratch_out, _) = timed(|| sim.run_scratch().expect("scratch engine runs"));
        let (incremental_out, _) = timed(|| sim.run().expect("incremental engine runs"));
        assert_eq!(
            incremental_out, scratch_out,
            "incremental engine diverged from scratch at rate {arrival_rate}"
        );
        let scratch_secs = best_of(3, || sim.run_scratch().expect("scratch engine runs"));
        let incremental_secs = best_of(3, || sim.run().expect("incremental engine runs"));
        let speedup = scratch_secs / incremental_secs;
        let epochs_per_sec = epochs as f64 / incremental_secs;
        let arrivals_per_sec = incremental_out.arrivals as f64 / incremental_secs;
        eprintln!(
            "dynamic rate {arrival_rate}, {epochs} epochs ({} arrivals): \
             scratch {scratch_secs:.4} s, incremental {incremental_secs:.4} s \
             ({speedup:.1}x, {epochs_per_sec:.0} epochs/s, {arrivals_per_sec:.0} arrivals/s)",
            incremental_out.arrivals
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"arrival_rate\": {arrival_rate}, \"epochs\": {epochs}, \
             \"arrivals\": {}, \"scratch_secs\": {scratch_secs:.4}, \
             \"incremental_secs\": {incremental_secs:.4}, \"speedup\": {speedup:.2}, \
             \"epochs_per_sec\": {epochs_per_sec:.1}, \
             \"arrivals_per_sec\": {arrivals_per_sec:.1}, \
             \"identical_outcome\": true }}",
            incremental_out.arrivals
        ));
    }
    let json = format!(
        "{{\n  \"title\": \"online arrival/departure regime, incremental engine \
         vs full residual rebuild (DMRA allocator, paper deployment)\",\n  \
         \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    fs::write("BENCH_dynamic.json", &json).expect("can write BENCH_dynamic.json");
    eprintln!("wrote BENCH_dynamic.json");
}

fn run_job(job: &str, opts: &ExperimentOptions) -> Result<Table, String> {
    let result = match job {
        "fig2" => experiments::fig2(opts),
        "fig3" => experiments::fig3(opts),
        "fig4" => experiments::fig4(opts),
        "fig5" => experiments::fig5(opts),
        "fig6" => experiments::fig6(opts),
        "fig7" => experiments::fig7(opts),
        "ablation_same_sp" => experiments::ablation_same_sp_preference(opts),
        "ablation_interference" => experiments::ablation_interference(opts),
        "decentralized_cost" => experiments::decentralized_cost(opts),
        "iota_sweep" => experiments::iota_sweep(opts),
        "online_comparison" => experiments::online_comparison(opts),
        other => {
            return Err(format!(
                "unknown experiment '{other}' (expected fig2..fig7, \
                 ablation_same_sp, ablation_interference, decentralized_cost, \
                 iota_sweep, all, ablations)"
            ))
        }
    };
    result.map_err(|e| format!("{job}: {e}"))
}

fn emit(name: &str, table: &Table) {
    println!("{}", table.to_markdown());
    println!("{}", table.to_sparklines());
    let csv = Path::new("results").join(format!("{name}.csv"));
    fs::write(&csv, table.to_csv()).expect("can write CSV");
    let gp = Path::new("results").join(format!("{name}.gnuplot"));
    fs::write(&gp, table.to_gnuplot(&format!("{name}.csv"))).expect("can write gnuplot script");
    eprintln!("wrote {} and {}", csv.display(), gp.display());
}
