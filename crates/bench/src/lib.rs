//! Benchmark harness for the DMRA reproduction.
//!
//! Two kinds of artifacts live here:
//!
//! * **Criterion benches** (`benches/`): wall-clock performance of the
//!   allocators (`solver`), the per-figure workloads (`figures`) and the
//!   decentralized protocol overhead (`protocol`). Run with
//!   `cargo bench -p dmra-bench`.
//! * **The `figures` binary** (`src/bin/figures.rs`): regenerates the data
//!   behind every figure of the paper (Figs. 2–7) and the ablations, as
//!   markdown to stdout and CSV files under `results/`. Run with
//!   `cargo run --release -p dmra-bench --bin figures -- all`.
//!
//! This library crate only hosts small shared helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dmra_core::{ProblemInstance, Threads};
use dmra_sim::ScenarioConfig;

/// Builds the standard paper-scale instance used by the performance
/// benches: paper defaults with the given UE count and seed.
///
/// # Panics
///
/// Panics if the paper-default scenario fails to build (it cannot).
#[must_use]
pub fn bench_instance(n_ues: usize, seed: u64) -> ProblemInstance {
    bench_instance_with_threads(n_ues, seed, Threads::Auto)
}

/// [`bench_instance`] with an explicit thread knob for the candidate-link
/// precomputation (what the `instance-build` bench group compares).
///
/// # Panics
///
/// Panics if the paper-default scenario fails to build (it cannot).
#[must_use]
pub fn bench_instance_with_threads(n_ues: usize, seed: u64, threads: Threads) -> ProblemInstance {
    ScenarioConfig::paper_defaults()
        .with_ues(n_ues)
        .with_seed(seed)
        .build_with_threads(threads)
        .expect("paper-default scenario builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_instance_builds_at_paper_scale() {
        let inst = bench_instance(400, 1);
        assert_eq!(inst.n_ues(), 400);
        assert_eq!(inst.n_bss(), 25);
    }
}
