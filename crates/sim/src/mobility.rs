//! UE mobility and handovers.
//!
//! Section V motivates DMRA with the observation that "the best
//! association changes over time": as UEs move, link qualities, prices and
//! candidate sets drift, and the allocation must be recomputed. This
//! module simulates a fixed population of UEs with persistent tasks moving
//! under a **random-waypoint** model; each epoch the whole batch is
//! re-matched (the paper's algorithm is cheap enough to rerun —
//! Section V's "recalculating the preference relationship … during each
//! iteration"), and we track *handovers* (serving-BS changes), *drops*
//! (served → cloud) and *recoveries* (cloud → served).
//!
//! Two engines produce bit-identical outcomes
//! (`tests/mobility_incremental.rs` pins the equality across policies,
//! seeds, allocators and thread counts):
//!
//! * [`MobilitySimulator::run`] — the fast path: one epoch-persistent
//!   [`DeploymentContext`] with the cross-epoch row cache enabled, so a
//!   UE that did not move between epochs (the `stationary_fraction`
//!   population, or any UE whose waypoint run left it in place) reuses
//!   its candidate row verbatim, and moved UEs re-evaluate only their
//!   pruned candidate slice through the batched link kernel;
//! * [`MobilitySimulator::run_scratch`] — the executable specification:
//!   a full exhaustive-scan [`ProblemInstance`] rebuild every epoch,
//!   exactly the O(U×B) loop the paper describes.
//!
//! # Examples
//!
//! ```
//! use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
//! use dmra_sim::ScenarioConfig;
//!
//! let config = MobilityConfig {
//!     scenario: ScenarioConfig::paper_defaults().with_ues(100),
//!     speed_mps: (1.0, 2.0),
//!     epoch_seconds: 10.0,
//!     epochs: 5,
//!     seed: 3,
//!     policy: MobilityPolicy::FullReallocation,
//!     stationary_fraction: 0.0,
//! };
//! let outcome = MobilitySimulator::new(config).run()?;
//! assert_eq!(outcome.served_timeline.len(), 5);
//! # Ok::<(), dmra_types::Error>(())
//! ```

use crate::config::ScenarioConfig;
use crate::dynamic::{push_common_aux, AuxCounters};
use crate::shard::{self, EpochBudgets, ShardGrid, ShardJob};
use dmra_core::{
    solve_mode_default, Allocation, Allocator, CandidateLink, CandidateScan, DeploymentContext,
    Dmra, ProblemInstance, SolveMode, Threads,
};
use dmra_geo::rng::component_rng;
use dmra_obs::{EpochObserver, EpochRecord};
use dmra_par::WorkerPool;
use dmra_types::{Cru, Error, Money, Point, Rect, Result, RrbCount, UeId, UeSpec};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// How the allocation is recomputed as UEs move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MobilityPolicy {
    /// Re-run the allocator on the whole population every epoch — the
    /// paper's "recalculate the preference relationship during each
    /// iteration" reading. Maximises profit, pays the full handover churn.
    #[default]
    FullReallocation,
    /// Keep every existing assignment whose link is still feasible (the UE
    /// is still in coverage and the new RRB demand still fits); re-match
    /// only the broken ones against the residual capacity. Fewer
    /// handovers, possibly lower profit — the classical mobility
    /// trade-off.
    Sticky,
}

/// Configuration of a mobility run.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Deployment, workload distributions and the UE population size
    /// (`n_ues` is honoured here, unlike in the arrival simulator).
    pub scenario: ScenarioConfig,
    /// UE speed range in meters/second (random per UE, fixed for the run).
    pub speed_mps: (f64, f64),
    /// Wall-clock seconds per epoch (distance moved = speed × this).
    pub epoch_seconds: f64,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Seed for waypoints and speeds.
    pub seed: u64,
    /// Reallocation policy.
    pub policy: MobilityPolicy,
    /// Fraction of the population pinned in place (speed forced to zero;
    /// must be in `[0, 1]`). Models the static-majority regime of real
    /// cells — and the regime the cross-epoch row cache accelerates.
    /// Speeds are zeroed *after* all kinematics are drawn, so turning the
    /// knob never perturbs the mobile UEs' random streams.
    pub stationary_fraction: f64,
}

/// Aggregate results of a mobility run.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityOutcome {
    /// Serving-BS changes between consecutive epochs (UE served in both).
    pub handovers: u64,
    /// Served → cloud transitions.
    pub drops: u64,
    /// Cloud → served transitions.
    pub recoveries: u64,
    /// Edge-served count per epoch.
    pub served_timeline: Vec<usize>,
    /// Total profit per epoch (each epoch's full re-allocation).
    pub profit_timeline: Vec<Money>,
}

impl MobilityOutcome {
    /// Handovers per served-UE-epoch — the mobility cost figure.
    #[must_use]
    pub fn handover_rate(&self) -> f64 {
        let served_epochs: usize = self.served_timeline.iter().sum();
        if served_epochs == 0 {
            return 0.0;
        }
        self.handovers as f64 / served_epochs as f64
    }
}

/// Per-UE kinematic state.
#[derive(Debug, Clone, Copy)]
struct Kinematics {
    waypoint: Point,
    speed: f64,
}

/// The mobility simulator.
pub struct MobilitySimulator {
    config: MobilityConfig,
    allocator: Box<dyn Allocator>,
    observer: Option<Arc<dyn EpochObserver>>,
}

impl std::fmt::Debug for MobilitySimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobilitySimulator")
            .field("config", &self.config)
            .field("allocator", &self.allocator.name())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl MobilitySimulator {
    /// Creates a simulator matching with DMRA.
    #[must_use]
    pub fn new(config: MobilityConfig) -> Self {
        Self {
            config,
            allocator: Box::new(Dmra::default()),
            observer: None,
        }
    }

    /// Replaces the per-epoch matcher (default: [`Dmra`]). Both engines
    /// drive the allocator through one [`Allocator::session`] per run.
    #[must_use]
    pub fn with_allocator(mut self, allocator: Box<dyn Allocator>) -> Self {
        self.allocator = allocator;
        self
    }

    /// Attaches an [`EpochObserver`] receiving one `"mobility.epoch"`
    /// record per epoch from every engine (falls back to the
    /// process-wide [`dmra_obs::set_epoch_observer`] slot when unset).
    /// Observe-only — outcomes stay bit-identical.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn EpochObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs the simulation on the incremental engine: one epoch-persistent
    /// [`DeploymentContext`] with the cross-epoch row cache, batched link
    /// evaluation over pruned candidate slices, and (for ≥1024-UE
    /// populations) a parallel per-epoch row rebuild.
    ///
    /// Bit-identical to [`MobilitySimulator::run_scratch`] — same
    /// allocations, same timelines, same counters.
    ///
    /// # Errors
    ///
    /// Propagates scenario/instance build errors, and rejects a
    /// `stationary_fraction` outside `[0, 1]`.
    pub fn run(&self) -> Result<MobilityOutcome> {
        let cfg = &self.config;
        let initial = cfg.scenario.clone().build()?;
        let mut ues: Vec<UeSpec> = initial.ues().to_vec();
        let region = cfg.scenario.region;
        let mut rng = component_rng(cfg.seed, "mobility");
        let mut kin = draw_kinematics(cfg, ues.len(), region, &mut rng)?;

        // The population never departs, so every epoch re-matches against
        // the full budgets; the row cache sees identical budgets each
        // epoch and invalidates only on the first one.
        let full_cru: Vec<Vec<Cru>> = initial.bss().iter().map(|b| b.cru_budget.clone()).collect();
        let full_rrb: Vec<RrbCount> = initial.bss().iter().map(|b| b.rrb_budget).collect();
        let mut ctx = DeploymentContext::new(&initial).with_row_cache();
        // Sticky re-matching solves against churning residual budgets, so
        // its context gets no cache — it still reuses buffers and the
        // batched kernel.
        let mut res_ctx = DeploymentContext::new(&initial);
        let mut session = self.allocator.session();

        let mut previous: Option<Allocation> = None;
        let mut outcome = empty_outcome(cfg.epochs);
        let obs_on = dmra_obs::enabled();
        let observer = self.observer.clone().or_else(dmra_obs::epoch_observer);
        let aux_counters = observer.as_ref().map(|_| AuxCounters::fetch());
        for epoch in 0..cfg.epochs {
            let epoch_started = observer.as_ref().map(|_| std::time::Instant::now());
            let aux_before = aux_counters.as_ref().map_or((0, 0, 0), AuxCounters::read);
            let mob_before = (outcome.handovers, outcome.drops, outcome.recoveries);
            let instance = ctx.epoch_instance(&full_cru, &full_rrb, ues.clone())?;
            // The timed slice covers the allocator solve including the
            // sticky residual re-match (split + residual assembly), i.e.
            // everything between having an epoch instance and having an
            // allocation.
            let solve_started = obs_on.then(std::time::Instant::now);
            let allocation = match (cfg.policy, &previous) {
                (MobilityPolicy::Sticky, Some(prev)) => {
                    let split = sticky_split(instance, prev);
                    match split.residual_ues(instance) {
                        None => split.kept,
                        Some(res_ues) => {
                            let residual =
                                res_ctx.epoch_instance(&split.rem_cru, &split.rem_rrb, res_ues)?;
                            split.merge(session.allocate(residual))
                        }
                    }
                }
                _ => session.allocate(instance),
            };
            let solve_ns = crate::dynamic::record_solve_phase(obs_on, solve_started);
            debug_assert!(allocation.validate(instance).is_ok());
            account_epoch(&mut outcome, instance, &allocation, previous.as_ref());
            if let (Some(obs), Some(counters)) = (&observer, &aux_counters) {
                let record = push_common_aux(
                    mobility_det_record(epoch, &outcome, mob_before, allocation.digest()),
                    elapsed_ns(epoch_started),
                    solve_ns,
                    counters,
                    aux_before,
                );
                obs.on_record(&record);
            }
            previous = Some(allocation);
            advance_waypoints(&mut ues, &mut kin, region, cfg.epoch_seconds, &mut rng);
        }
        Ok(outcome)
    }

    /// Runs the simulation on the **region-sharded engine**: UEs are
    /// routed to `rows × cols` rectangular shards by position each
    /// epoch; long-lived shard workers build the candidate rows in
    /// parallel, each against a [`DeploymentContext`] narrowed to the
    /// shard's sites plus a coverage halo **with the cross-epoch row
    /// cache enabled** — routing preserves global UE order within a
    /// shard, so a stationary UE keeps a stable shard-local slot and its
    /// cached row keeps hitting. A UE crossing a shard seam is simply
    /// re-routed (counted in the `sim.shard_handovers` telemetry
    /// counter); its serving-BS stickiness is untouched, because the
    /// sticky-residual re-matching runs on the coordinator against the
    /// merged instance exactly as in [`MobilitySimulator::run`].
    /// Outcomes are bit-identical to the unsharded engines for every
    /// shard count (`tests/sharding.rs` pins it).
    ///
    /// # Errors
    ///
    /// Same as [`MobilitySimulator::run`], plus [`Error::InvalidConfig`]
    /// for a zero shard dimension or a load-proportional interference
    /// model (per-shard row builds cannot see the whole batch).
    pub fn run_sharded(&self, rows: usize, cols: usize) -> Result<MobilityOutcome> {
        let grid = ShardGrid::new(rows, cols, self.config.scenario.region)?;
        self.run_sharded_grid(&grid)
    }

    /// [`MobilitySimulator::run_sharded`] with a near-square shard grid
    /// of exactly `shards` cells ([`ShardGrid::for_count`]).
    ///
    /// # Errors
    ///
    /// Same as [`MobilitySimulator::run_sharded`].
    pub fn run_sharded_n(&self, shards: usize) -> Result<MobilityOutcome> {
        let grid = ShardGrid::for_count(shards, self.config.scenario.region)?;
        self.run_sharded_grid(&grid)
    }

    fn run_sharded_grid(&self, grid: &ShardGrid) -> Result<MobilityOutcome> {
        let cfg = &self.config;
        shard::reject_interference(&cfg.scenario.radio)?;
        let initial = cfg.scenario.clone().build()?;
        let mut ues: Vec<UeSpec> = initial.ues().to_vec();
        let region = cfg.scenario.region;
        let mut rng = component_rng(cfg.seed, "mobility");
        let mut kin = draw_kinematics(cfg, ues.len(), region, &mut rng)?;

        let full_cru: Vec<Vec<Cru>> = initial.bss().iter().map(|b| b.cru_budget.clone()).collect();
        let full_rrb: Vec<RrbCount> = initial.bss().iter().map(|b| b.rrb_budget).collect();
        // The population never departs, so every epoch re-matches against
        // the full budgets — one shared snapshot serves the whole run.
        let budgets = Arc::new(EpochBudgets {
            cru: full_cru.clone(),
            rrb: full_rrb.clone(),
        });
        let (slots, registries) = shard::build_slots(&initial, grid, true);
        let pool = WorkerPool::new(slots);
        let obs_on = dmra_obs::enabled();
        // Expose the live shard registries to mid-run /metrics scrapes;
        // the guard is dropped before `merge_registries` folds them into
        // the global registry, so nothing is ever double-counted.
        let scrape_guard = obs_on.then(|| dmra_obs::register_scrape_sources(&registries));
        let worker = shard::row_build_worker(obs_on);
        let mut asm = DeploymentContext::new(&initial);
        // Under the delta solve mode the coordinator translates the shard
        // workers' per-shard dirty sets into global ones and stages them
        // on `asm`, so the merged instance carries the same churn
        // metadata the unsharded engine's row cache produces.
        let mut delta_tracker = (solve_mode_default() == SolveMode::Delta)
            .then(|| shard::DeltaTracker::new(grid.count()));
        // Sticky re-matching solves against churning residual budgets on
        // the coordinator, exactly as in `run` — no cache.
        let mut res_ctx = DeploymentContext::new(&initial);
        let mut session = self.allocator.session();

        let mut previous: Option<Allocation> = None;
        let mut prev_owners: Vec<usize> = Vec::new();
        let mut shard_handovers = 0u64;
        let mut outcome = empty_outcome(cfg.epochs);
        let mut merged_links: Vec<CandidateLink> = Vec::new();
        let mut merged_starts: Vec<usize> = Vec::new();
        let observer = self.observer.clone().or_else(dmra_obs::epoch_observer);
        let aux_counters = observer.as_ref().map(|_| AuxCounters::fetch());
        for epoch in 0..cfg.epochs {
            let epoch_started = observer.as_ref().map(|_| std::time::Instant::now());
            let aux_before = aux_counters.as_ref().map_or((0, 0, 0), AuxCounters::read);
            let mob_before = (outcome.handovers, outcome.drops, outcome.recoveries);
            let seam_before = shard_handovers;
            let (owners, batches) = shard::route(grid, &ues);
            if !prev_owners.is_empty() {
                shard_handovers += owners
                    .iter()
                    .zip(&prev_owners)
                    .filter(|(now, before)| now != before)
                    .count() as u64;
            }
            let shard_load: Option<Vec<u64>> = observer
                .as_ref()
                .map(|_| batches.iter().map(|b| b.len() as u64).collect());
            let jobs: Vec<ShardJob> = batches
                .into_iter()
                .map(|batch| (Arc::clone(&budgets), batch))
                .collect();
            let rows = pool
                .run(jobs, worker.clone())
                .into_iter()
                .collect::<Result<Vec<_>>>()?;
            shard::merge_rows(&owners, &rows, &mut merged_links, &mut merged_starts);
            if let Some(tracker) = delta_tracker.as_mut() {
                tracker.stage(&mut asm, &owners, &rows, initial.bss().len());
            }
            let instance = asm.epoch_instance_prebuilt(
                &full_cru,
                &full_rrb,
                ues.clone(),
                &merged_links,
                &merged_starts,
            )?;
            let solve_started = obs_on.then(std::time::Instant::now);
            let allocation = match (cfg.policy, &previous) {
                (MobilityPolicy::Sticky, Some(prev)) => {
                    let split = sticky_split(instance, prev);
                    match split.residual_ues(instance) {
                        None => split.kept,
                        Some(res_ues) => {
                            let residual =
                                res_ctx.epoch_instance(&split.rem_cru, &split.rem_rrb, res_ues)?;
                            split.merge(session.allocate(residual))
                        }
                    }
                }
                _ => session.allocate(instance),
            };
            let solve_ns = crate::dynamic::record_solve_phase(obs_on, solve_started);
            debug_assert!(allocation.validate(instance).is_ok());
            account_epoch(&mut outcome, instance, &allocation, previous.as_ref());
            if let (Some(obs), Some(counters)) = (&observer, &aux_counters) {
                let record = push_common_aux(
                    mobility_det_record(epoch, &outcome, mob_before, allocation.digest()),
                    elapsed_ns(epoch_started),
                    solve_ns,
                    counters,
                    aux_before,
                )
                .aux("shard_load", shard_load.unwrap_or_default())
                .aux("shard_handovers", shard_handovers - seam_before);
                obs.on_record(&record);
            }
            previous = Some(allocation);
            prev_owners = owners;
            advance_waypoints(&mut ues, &mut kin, region, cfg.epoch_seconds, &mut rng);
        }
        drop(scrape_guard);
        if obs_on {
            static SHARD_HANDOVERS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("sim.shard_handovers");
            SHARD_HANDOVERS.get().add(shard_handovers);
            shard::merge_registries(&registries);
        }
        Ok(outcome)
    }

    /// Runs the simulation on the executable-specification engine: a full
    /// [`ProblemInstance`] rebuild per epoch with the exhaustive O(U×B)
    /// candidate scan and the scalar link evaluator — no pruning, no
    /// batching, no caching. This is the loop [`MobilitySimulator::run`]
    /// is proven against.
    ///
    /// # Errors
    ///
    /// Same as [`MobilitySimulator::run`].
    pub fn run_scratch(&self) -> Result<MobilityOutcome> {
        self.run_scratch_with_threads(Threads::Auto)
    }

    /// [`MobilitySimulator::run_scratch`] with an explicit thread-count
    /// knob for the per-epoch instance builds — the equality tests sweep
    /// it to prove thread-count independence.
    ///
    /// # Errors
    ///
    /// Same as [`MobilitySimulator::run`].
    pub fn run_scratch_with_threads(&self, threads: Threads) -> Result<MobilityOutcome> {
        let cfg = &self.config;
        let initial = cfg.scenario.clone().build()?;
        let mut ues: Vec<UeSpec> = initial.ues().to_vec();
        let region = cfg.scenario.region;
        let mut rng = component_rng(cfg.seed, "mobility");
        let mut kin = draw_kinematics(cfg, ues.len(), region, &mut rng)?;

        let mut session = self.allocator.session();
        let mut previous: Option<Allocation> = None;
        let mut outcome = empty_outcome(cfg.epochs);
        let obs_on = dmra_obs::enabled();
        let observer = self.observer.clone().or_else(dmra_obs::epoch_observer);
        let aux_counters = observer.as_ref().map(|_| AuxCounters::fetch());
        for epoch in 0..cfg.epochs {
            let epoch_started = observer.as_ref().map(|_| std::time::Instant::now());
            let aux_before = aux_counters.as_ref().map_or((0, 0, 0), AuxCounters::read);
            let mob_before = (outcome.handovers, outcome.drops, outcome.recoveries);
            let instance = ProblemInstance::build_with_scan(
                initial.sps().to_vec(),
                initial.bss().to_vec(),
                ues.clone(),
                initial.catalog(),
                *initial.pricing(),
                *initial.radio(),
                initial.coverage(),
                threads,
                CandidateScan::Exhaustive,
            )?;
            let solve_started = obs_on.then(std::time::Instant::now);
            let allocation = match (cfg.policy, &previous) {
                (MobilityPolicy::Sticky, Some(prev)) => {
                    let split = sticky_split(&instance, prev);
                    match split.residual_ues(&instance) {
                        None => split.kept,
                        Some(res_ues) => {
                            let residual = instance.residual_with(
                                &split.rem_cru,
                                &split.rem_rrb,
                                res_ues,
                                threads,
                                CandidateScan::Exhaustive,
                            )?;
                            split.merge(session.allocate(&residual))
                        }
                    }
                }
                _ => session.allocate(&instance),
            };
            let solve_ns = crate::dynamic::record_solve_phase(obs_on, solve_started);
            debug_assert!(allocation.validate(&instance).is_ok());
            account_epoch(&mut outcome, &instance, &allocation, previous.as_ref());
            if let (Some(obs), Some(counters)) = (&observer, &aux_counters) {
                let record = push_common_aux(
                    mobility_det_record(epoch, &outcome, mob_before, allocation.digest()),
                    elapsed_ns(epoch_started),
                    solve_ns,
                    counters,
                    aux_before,
                );
                obs.on_record(&record);
            }
            previous = Some(allocation);
            advance_waypoints(&mut ues, &mut kin, region, cfg.epoch_seconds, &mut rng);
        }
        Ok(outcome)
    }
}

/// Builds the engine-independent `det` section of a `"mobility.epoch"`
/// flight record. All three mobility engines go through this one helper
/// so field order and content are byte-identical across engines.
/// Counters are per-epoch deltas against the `before` reading of
/// `(handovers, drops, recoveries)`; `digest` is the epoch allocation's
/// [`Allocation::digest`].
fn mobility_det_record(
    epoch: usize,
    outcome: &MobilityOutcome,
    before: (u64, u64, u64),
    digest: u64,
) -> EpochRecord {
    EpochRecord::new("mobility.epoch", epoch as u64)
        .det(
            "served",
            outcome.served_timeline.last().copied().unwrap_or(0),
        )
        .det("handovers", outcome.handovers - before.0)
        .det("drops", outcome.drops - before.1)
        .det("recoveries", outcome.recoveries - before.2)
        .det(
            "profit",
            outcome.profit_timeline.last().map_or(0.0, |p| p.get()),
        )
        .det("digest", digest)
}

fn elapsed_ns(started: Option<std::time::Instant>) -> u64 {
    started.map_or(0, |t| {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    })
}

fn empty_outcome(epochs: usize) -> MobilityOutcome {
    MobilityOutcome {
        handovers: 0,
        drops: 0,
        recoveries: 0,
        served_timeline: Vec::with_capacity(epochs),
        profit_timeline: Vec::with_capacity(epochs),
    }
}

/// Draws every UE's waypoint and speed, then pins the first
/// `⌊stationary_fraction · n⌋` UEs in place. Zeroing after drawing keeps
/// the RNG stream identical for every fraction, so the mobile UEs'
/// trajectories never depend on how many neighbours are pinned.
fn draw_kinematics(
    cfg: &MobilityConfig,
    n_ues: usize,
    region: Rect,
    rng: &mut StdRng,
) -> Result<Vec<Kinematics>> {
    let f = cfg.stationary_fraction;
    if !(0.0..=1.0).contains(&f) {
        return Err(Error::InvalidConfig(format!(
            "stationary fraction must be in [0, 1], got {f}"
        )));
    }
    let (slo, shi) = cfg.speed_mps;
    let mut kin: Vec<Kinematics> = (0..n_ues)
        .map(|_| Kinematics {
            waypoint: random_point(region, rng),
            speed: if shi > slo {
                rng.random_range(slo..=shi)
            } else {
                slo
            },
        })
        .collect();
    let pinned = (f * n_ues as f64).floor() as usize;
    for k in kin.iter_mut().take(pinned.min(n_ues)) {
        k.speed = 0.0;
    }
    Ok(kin)
}

/// Advances the random-waypoint kinematics by one epoch. Pinned UEs
/// (speed zero) consume no RNG draws, so their cached candidate rows stay
/// valid epoch after epoch.
fn advance_waypoints(
    ues: &mut [UeSpec],
    kin: &mut [Kinematics],
    region: Rect,
    epoch_seconds: f64,
    rng: &mut StdRng,
) {
    for (ue, k) in ues.iter_mut().zip(kin.iter_mut()) {
        let mut budget = k.speed * epoch_seconds;
        while budget > 0.0 {
            let to_target = ue.position.distance(k.waypoint).get();
            if to_target <= budget {
                ue.position = k.waypoint;
                budget -= to_target;
                k.waypoint = random_point(region, rng);
                if to_target == 0.0 {
                    break;
                }
            } else {
                let frac = budget / to_target;
                ue.position = Point::new(
                    ue.position.x + (k.waypoint.x - ue.position.x) * frac,
                    ue.position.y + (k.waypoint.y - ue.position.y) * frac,
                );
                budget = 0.0;
            }
        }
    }
}

/// Updates the outcome counters and timelines with one epoch's allocation.
fn account_epoch(
    outcome: &mut MobilityOutcome,
    instance: &ProblemInstance,
    allocation: &Allocation,
    previous: Option<&Allocation>,
) {
    outcome.served_timeline.push(allocation.edge_served());
    outcome
        .profit_timeline
        .push(instance.total_profit(allocation));
    if let Some(prev) = previous {
        for ue in instance.ues() {
            match (prev.bs_of(ue.id), allocation.bs_of(ue.id)) {
                (Some(a), Some(b)) if a != b => outcome.handovers += 1,
                (Some(_), None) => outcome.drops += 1,
                (None, Some(_)) => outcome.recoveries += 1,
                _ => {}
            }
        }
    }
}

/// The sticky policy's split of one epoch: kept assignments, leftover
/// budgets and the UEs that need re-matching.
struct StickySplit {
    kept: Allocation,
    rem_cru: Vec<Vec<Cru>>,
    rem_rrb: Vec<RrbCount>,
    rematch: Vec<UeId>,
}

impl StickySplit {
    /// The broken UEs renumbered densely for the residual solve, or
    /// `None` when every assignment was kept.
    fn residual_ues(&self, instance: &ProblemInstance) -> Option<Vec<UeSpec>> {
        if self.rematch.is_empty() {
            return None;
        }
        Some(
            self.rematch
                .iter()
                .enumerate()
                .map(|(new_id, &old)| {
                    let mut spec = instance.ues()[old.as_usize()];
                    spec.id = UeId::new(new_id as u32);
                    spec
                })
                .collect(),
        )
    }

    /// Folds the residual solve's assignments back onto the original ids.
    fn merge(mut self, residual_alloc: Allocation) -> Allocation {
        for (new_id, &old) in self.rematch.iter().enumerate() {
            if let Some(bs) = residual_alloc.bs_of(UeId::new(new_id as u32)) {
                self.kept.assign(old, bs);
            }
        }
        self.kept
    }
}

/// Keeps every feasible previous assignment (deducting its budgets) and
/// collects the broken UEs for re-matching.
fn sticky_split(instance: &ProblemInstance, previous: &Allocation) -> StickySplit {
    let mut rem_cru: Vec<Vec<Cru>> = instance
        .bss()
        .iter()
        .map(|b| b.cru_budget.clone())
        .collect();
    let mut rem_rrb: Vec<RrbCount> = instance.bss().iter().map(|b| b.rrb_budget).collect();
    let mut kept = Allocation::all_cloud(instance.n_ues());
    let mut rematch: Vec<UeId> = Vec::new();
    for ue in instance.ues() {
        let Some(bs) = previous.bs_of(ue.id) else {
            rematch.push(ue.id);
            continue;
        };
        // The UE moved: its link may have left coverage or grown too
        // expensive in RRBs.
        let keepable = instance.link(ue.id, bs).is_some_and(|link| {
            rem_cru[bs.as_usize()][ue.service.as_usize()] >= ue.cru_demand
                && rem_rrb[bs.as_usize()] >= link.n_rrbs
        });
        if keepable {
            let link = instance.link(ue.id, bs).expect("checked above");
            rem_cru[bs.as_usize()][ue.service.as_usize()] -= ue.cru_demand;
            rem_rrb[bs.as_usize()] -= link.n_rrbs;
            kept.assign(ue.id, bs);
        } else {
            rematch.push(ue.id);
        }
    }
    StickySplit {
        kept,
        rem_cru,
        rem_rrb,
        rematch,
    }
}

fn random_point(region: Rect, rng: &mut StdRng) -> Point {
    Point::new(
        rng.random_range(region.min.x..=region.max.x),
        rng.random_range(region.min.y..=region.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(speed: (f64, f64), epochs: usize, seed: u64) -> MobilityConfig {
        MobilityConfig {
            scenario: ScenarioConfig::paper_defaults().with_ues(150),
            speed_mps: speed,
            epoch_seconds: 10.0,
            epochs,
            seed,
            policy: MobilityPolicy::FullReallocation,
            stationary_fraction: 0.0,
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = MobilitySimulator::new(config((1.0, 3.0), 6, 1))
            .run()
            .unwrap();
        let b = MobilitySimulator::new(config((1.0, 3.0), 6, 1))
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stationary_ues_never_hand_over() {
        let out = MobilitySimulator::new(config((0.0, 0.0), 8, 2))
            .run()
            .unwrap();
        assert_eq!(out.handovers, 0);
        assert_eq!(out.drops, 0);
        assert_eq!(out.recoveries, 0);
        // The allocation is identical each epoch (deterministic matcher on
        // identical input), so the timeline is flat.
        assert!(out.served_timeline.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stationary_fraction_pins_ues_without_perturbing_the_rest() {
        // A fully-stationary run behaves like a zero-speed run, and an
        // out-of-range fraction is rejected up front.
        let mut cfg = config((5.0, 10.0), 6, 9);
        cfg.stationary_fraction = 1.0;
        let pinned = MobilitySimulator::new(cfg.clone()).run().unwrap();
        assert_eq!(pinned.handovers, 0);
        assert_eq!(pinned.drops, 0);
        cfg.stationary_fraction = 0.5;
        let half = MobilitySimulator::new(cfg.clone()).run().unwrap();
        let mut free = cfg.clone();
        free.stationary_fraction = 0.0;
        let free = MobilitySimulator::new(free).run().unwrap();
        // Pinning half the population cannot increase mobility churn.
        assert!(half.handovers + half.drops <= free.handovers + free.drops);
        cfg.stationary_fraction = 1.5;
        assert!(MobilitySimulator::new(cfg).run().is_err());
    }

    #[test]
    fn faster_ues_hand_over_more() {
        let slow = MobilitySimulator::new(config((0.5, 1.0), 10, 3))
            .run()
            .unwrap();
        let fast = MobilitySimulator::new(config((20.0, 30.0), 10, 3))
            .run()
            .unwrap();
        assert!(
            fast.handovers > slow.handovers,
            "fast {} vs slow {}",
            fast.handovers,
            slow.handovers
        );
        assert!(fast.handover_rate() > slow.handover_rate());
    }

    #[test]
    fn timeline_lengths_match_epochs() {
        let out = MobilitySimulator::new(config((2.0, 4.0), 7, 4))
            .run()
            .unwrap();
        assert_eq!(out.served_timeline.len(), 7);
        assert_eq!(out.profit_timeline.len(), 7);
        assert!(out.profit_timeline.iter().all(|p| p.get() >= 0.0));
    }

    #[test]
    fn sticky_policy_reduces_handovers() {
        let mut full_cfg = config((15.0, 20.0), 12, 6);
        full_cfg.scenario = full_cfg.scenario.with_ues(400); // contended
        let mut sticky_cfg = full_cfg.clone();
        sticky_cfg.policy = MobilityPolicy::Sticky;
        let full = MobilitySimulator::new(full_cfg).run().unwrap();
        let sticky = MobilitySimulator::new(sticky_cfg).run().unwrap();
        assert!(
            sticky.handovers < full.handovers,
            "sticky {} vs full {}",
            sticky.handovers,
            full.handovers
        );
        // The profit cost of stickiness is bounded: the kept links were
        // chosen by DMRA recently and remain candidates.
        let full_profit: f64 = full.profit_timeline.iter().map(|p| p.get()).sum();
        let sticky_profit: f64 = sticky.profit_timeline.iter().map(|p| p.get()).sum();
        assert!(
            sticky_profit > 0.8 * full_profit,
            "sticky profit {sticky_profit} collapsed vs {full_profit}"
        );
    }

    #[test]
    fn sticky_allocations_stay_valid() {
        let mut cfg = config((25.0, 30.0), 10, 7);
        cfg.policy = MobilityPolicy::Sticky;
        // Runs with debug_assert validation inside; reaching here with a
        // consistent timeline is the test.
        let out = MobilitySimulator::new(cfg).run().unwrap();
        assert_eq!(out.served_timeline.len(), 10);
    }

    #[test]
    fn drops_and_recoveries_roughly_balance_in_steady_state() {
        // With a fixed population the served count is roughly stationary,
        // so cumulative drops and recoveries cannot diverge by more than
        // the served-count range.
        let out = MobilitySimulator::new(config((10.0, 15.0), 20, 5))
            .run()
            .unwrap();
        let max = *out.served_timeline.iter().max().unwrap() as i64;
        let min = *out.served_timeline.iter().min().unwrap() as i64;
        let imbalance = (out.drops as i64 - out.recoveries as i64).abs();
        assert!(
            imbalance <= (max - min) + 1,
            "drops {} vs recoveries {} with served range {}..{}",
            out.drops,
            out.recoveries,
            min,
            max
        );
    }

    #[test]
    fn sharded_engine_matches_incremental_at_unit_scale() {
        // The workspace-root `sharding` tests sweep the full grid; this
        // is the in-crate smoke for both policies with movers crossing
        // shard seams.
        for policy in [MobilityPolicy::FullReallocation, MobilityPolicy::Sticky] {
            let mut cfg = config((8.0, 16.0), 5, 11);
            cfg.policy = policy;
            cfg.stationary_fraction = 0.4;
            let sim = MobilitySimulator::new(cfg);
            let unsharded = sim.run().unwrap();
            for shards in [2usize, 4] {
                assert_eq!(
                    sim.run_sharded_n(shards).unwrap(),
                    unsharded,
                    "{shards} shards diverged under {policy:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_engine_matches_incremental_at_unit_scale() {
        // The cross-engine sweep lives in tests/mobility_incremental.rs;
        // this is the fast in-crate smoke for both policies.
        for policy in [MobilityPolicy::FullReallocation, MobilityPolicy::Sticky] {
            let mut cfg = config((8.0, 16.0), 5, 11);
            cfg.policy = policy;
            cfg.stationary_fraction = 0.4;
            let sim = MobilitySimulator::new(cfg);
            assert_eq!(sim.run().unwrap(), sim.run_scratch().unwrap());
        }
    }
}
