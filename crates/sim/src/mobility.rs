//! UE mobility and handovers.
//!
//! Section V motivates DMRA with the observation that "the best
//! association changes over time": as UEs move, link qualities, prices and
//! candidate sets drift, and the allocation must be recomputed. This
//! module simulates a fixed population of UEs with persistent tasks moving
//! under a **random-waypoint** model; each epoch the whole batch is
//! re-matched by DMRA (the paper's algorithm is cheap enough to rerun —
//! Section V's "recalculating the preference relationship … during each
//! iteration"), and we track *handovers* (serving-BS changes), *drops*
//! (served → cloud) and *recoveries* (cloud → served).
//!
//! # Examples
//!
//! ```
//! use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
//! use dmra_sim::ScenarioConfig;
//!
//! let config = MobilityConfig {
//!     scenario: ScenarioConfig::paper_defaults().with_ues(100),
//!     speed_mps: (1.0, 2.0),
//!     epoch_seconds: 10.0,
//!     epochs: 5,
//!     seed: 3,
//!     policy: MobilityPolicy::FullReallocation,
//! };
//! let outcome = MobilitySimulator::new(config).run()?;
//! assert_eq!(outcome.served_timeline.len(), 5);
//! # Ok::<(), dmra_types::Error>(())
//! ```

use crate::config::ScenarioConfig;
use dmra_core::{Allocation, Allocator, Dmra, ProblemInstance};
use dmra_geo::rng::component_rng;
use dmra_types::{Cru, Money, Point, Rect, Result, RrbCount, UeId, UeSpec};
use rand::rngs::StdRng;
use rand::Rng;

/// How the allocation is recomputed as UEs move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MobilityPolicy {
    /// Re-run DMRA on the whole population every epoch — the paper's
    /// "recalculate the preference relationship during each iteration"
    /// reading. Maximises profit, pays the full handover churn.
    #[default]
    FullReallocation,
    /// Keep every existing assignment whose link is still feasible (the UE
    /// is still in coverage and the new RRB demand still fits); re-match
    /// only the broken ones against the residual capacity. Fewer
    /// handovers, possibly lower profit — the classical mobility
    /// trade-off.
    Sticky,
}

/// Configuration of a mobility run.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Deployment, workload distributions and the UE population size
    /// (`n_ues` is honoured here, unlike in the arrival simulator).
    pub scenario: ScenarioConfig,
    /// UE speed range in meters/second (random per UE, fixed for the run).
    pub speed_mps: (f64, f64),
    /// Wall-clock seconds per epoch (distance moved = speed × this).
    pub epoch_seconds: f64,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Seed for waypoints and speeds.
    pub seed: u64,
    /// Reallocation policy.
    pub policy: MobilityPolicy,
}

/// Aggregate results of a mobility run.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityOutcome {
    /// Serving-BS changes between consecutive epochs (UE served in both).
    pub handovers: u64,
    /// Served → cloud transitions.
    pub drops: u64,
    /// Cloud → served transitions.
    pub recoveries: u64,
    /// Edge-served count per epoch.
    pub served_timeline: Vec<usize>,
    /// Total profit per epoch (each epoch's full re-allocation).
    pub profit_timeline: Vec<Money>,
}

impl MobilityOutcome {
    /// Handovers per served-UE-epoch — the mobility cost figure.
    #[must_use]
    pub fn handover_rate(&self) -> f64 {
        let served_epochs: usize = self.served_timeline.iter().sum();
        if served_epochs == 0 {
            return 0.0;
        }
        self.handovers as f64 / served_epochs as f64
    }
}

/// Per-UE kinematic state.
#[derive(Debug, Clone, Copy)]
struct Kinematics {
    waypoint: Point,
    speed: f64,
}

/// The mobility simulator.
#[derive(Debug)]
pub struct MobilitySimulator {
    config: MobilityConfig,
}

impl MobilitySimulator {
    /// Creates a simulator.
    #[must_use]
    pub fn new(config: MobilityConfig) -> Self {
        Self { config }
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Propagates scenario/instance build errors.
    pub fn run(&self) -> Result<MobilityOutcome> {
        let cfg = &self.config;
        // Initial population from the scenario generator.
        let initial = cfg.scenario.clone().build()?;
        let mut ues: Vec<UeSpec> = initial.ues().to_vec();
        let region = cfg.scenario.region;
        let mut rng = component_rng(cfg.seed, "mobility");
        let (slo, shi) = cfg.speed_mps;
        let mut kin: Vec<Kinematics> = ues
            .iter()
            .map(|_| Kinematics {
                waypoint: random_point(region, &mut rng),
                speed: if shi > slo {
                    rng.random_range(slo..=shi)
                } else {
                    slo
                },
            })
            .collect();

        let dmra = Dmra::default();
        let mut previous: Option<Allocation> = None;
        let mut outcome = MobilityOutcome {
            handovers: 0,
            drops: 0,
            recoveries: 0,
            served_timeline: Vec::with_capacity(cfg.epochs),
            profit_timeline: Vec::with_capacity(cfg.epochs),
        };

        for _epoch in 0..cfg.epochs {
            let instance = ProblemInstance::build(
                initial.sps().to_vec(),
                initial.bss().to_vec(),
                ues.clone(),
                initial.catalog(),
                *initial.pricing(),
                *initial.radio(),
                initial.coverage(),
            )?;
            let allocation = match (cfg.policy, &previous) {
                (MobilityPolicy::Sticky, Some(prev)) => sticky_reallocate(&instance, prev, &dmra)?,
                _ => dmra.allocate(&instance),
            };
            debug_assert!(allocation.validate(&instance).is_ok());
            outcome.served_timeline.push(allocation.edge_served());
            outcome
                .profit_timeline
                .push(instance.total_profit(&allocation));
            if let Some(prev) = &previous {
                for ue in instance.ues() {
                    match (prev.bs_of(ue.id), allocation.bs_of(ue.id)) {
                        (Some(a), Some(b)) if a != b => outcome.handovers += 1,
                        (Some(_), None) => outcome.drops += 1,
                        (None, Some(_)) => outcome.recoveries += 1,
                        _ => {}
                    }
                }
            }
            previous = Some(allocation);

            // Advance the random-waypoint kinematics.
            for (ue, k) in ues.iter_mut().zip(kin.iter_mut()) {
                let mut budget = k.speed * cfg.epoch_seconds;
                while budget > 0.0 {
                    let to_target = ue.position.distance(k.waypoint).get();
                    if to_target <= budget {
                        ue.position = k.waypoint;
                        budget -= to_target;
                        k.waypoint = random_point(region, &mut rng);
                        if to_target == 0.0 {
                            break;
                        }
                    } else {
                        let frac = budget / to_target;
                        ue.position = Point::new(
                            ue.position.x + (k.waypoint.x - ue.position.x) * frac,
                            ue.position.y + (k.waypoint.y - ue.position.y) * frac,
                        );
                        budget = 0.0;
                    }
                }
            }
        }
        Ok(outcome)
    }
}

/// Keeps feasible previous assignments, re-matching only the broken ones
/// against the residual capacities.
fn sticky_reallocate(
    instance: &ProblemInstance,
    previous: &Allocation,
    matcher: &Dmra,
) -> Result<Allocation> {
    let mut rem_cru: Vec<Vec<Cru>> = instance
        .bss()
        .iter()
        .map(|b| b.cru_budget.clone())
        .collect();
    let mut rem_rrb: Vec<RrbCount> = instance.bss().iter().map(|b| b.rrb_budget).collect();
    let mut kept = Allocation::all_cloud(instance.n_ues());
    let mut rematch: Vec<UeId> = Vec::new();
    for ue in instance.ues() {
        let Some(bs) = previous.bs_of(ue.id) else {
            rematch.push(ue.id);
            continue;
        };
        // The UE moved: its link may have left coverage or grown too
        // expensive in RRBs.
        let keepable = instance.link(ue.id, bs).is_some_and(|link| {
            rem_cru[bs.as_usize()][ue.service.as_usize()] >= ue.cru_demand
                && rem_rrb[bs.as_usize()] >= link.n_rrbs
        });
        if keepable {
            let link = instance.link(ue.id, bs).expect("checked above");
            rem_cru[bs.as_usize()][ue.service.as_usize()] -= ue.cru_demand;
            rem_rrb[bs.as_usize()] -= link.n_rrbs;
            kept.assign(ue.id, bs);
        } else {
            rematch.push(ue.id);
        }
    }
    if rematch.is_empty() {
        return Ok(kept);
    }
    // Residual instance: the broken UEs (renumbered densely) against the
    // leftover capacities.
    let residual_ues: Vec<UeSpec> = rematch
        .iter()
        .enumerate()
        .map(|(new_id, &old)| {
            let mut spec = instance.ues()[old.as_usize()];
            spec.id = UeId::new(new_id as u32);
            spec
        })
        .collect();
    let residual = instance.residual(&rem_cru, &rem_rrb, residual_ues)?;
    let residual_alloc = matcher.allocate(&residual);
    for (new_id, &old) in rematch.iter().enumerate() {
        if let Some(bs) = residual_alloc.bs_of(UeId::new(new_id as u32)) {
            kept.assign(old, bs);
        }
    }
    Ok(kept)
}

fn random_point(region: Rect, rng: &mut StdRng) -> Point {
    Point::new(
        rng.random_range(region.min.x..=region.max.x),
        rng.random_range(region.min.y..=region.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(speed: (f64, f64), epochs: usize, seed: u64) -> MobilityConfig {
        MobilityConfig {
            scenario: ScenarioConfig::paper_defaults().with_ues(150),
            speed_mps: speed,
            epoch_seconds: 10.0,
            epochs,
            seed,
            policy: MobilityPolicy::FullReallocation,
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = MobilitySimulator::new(config((1.0, 3.0), 6, 1))
            .run()
            .unwrap();
        let b = MobilitySimulator::new(config((1.0, 3.0), 6, 1))
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stationary_ues_never_hand_over() {
        let out = MobilitySimulator::new(config((0.0, 0.0), 8, 2))
            .run()
            .unwrap();
        assert_eq!(out.handovers, 0);
        assert_eq!(out.drops, 0);
        assert_eq!(out.recoveries, 0);
        // The allocation is identical each epoch (deterministic matcher on
        // identical input), so the timeline is flat.
        assert!(out.served_timeline.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn faster_ues_hand_over_more() {
        let slow = MobilitySimulator::new(config((0.5, 1.0), 10, 3))
            .run()
            .unwrap();
        let fast = MobilitySimulator::new(config((20.0, 30.0), 10, 3))
            .run()
            .unwrap();
        assert!(
            fast.handovers > slow.handovers,
            "fast {} vs slow {}",
            fast.handovers,
            slow.handovers
        );
        assert!(fast.handover_rate() > slow.handover_rate());
    }

    #[test]
    fn timeline_lengths_match_epochs() {
        let out = MobilitySimulator::new(config((2.0, 4.0), 7, 4))
            .run()
            .unwrap();
        assert_eq!(out.served_timeline.len(), 7);
        assert_eq!(out.profit_timeline.len(), 7);
        assert!(out.profit_timeline.iter().all(|p| p.get() >= 0.0));
    }

    #[test]
    fn sticky_policy_reduces_handovers() {
        let mut full_cfg = config((15.0, 20.0), 12, 6);
        full_cfg.scenario = full_cfg.scenario.with_ues(400); // contended
        let mut sticky_cfg = full_cfg.clone();
        sticky_cfg.policy = MobilityPolicy::Sticky;
        let full = MobilitySimulator::new(full_cfg).run().unwrap();
        let sticky = MobilitySimulator::new(sticky_cfg).run().unwrap();
        assert!(
            sticky.handovers < full.handovers,
            "sticky {} vs full {}",
            sticky.handovers,
            full.handovers
        );
        // The profit cost of stickiness is bounded: the kept links were
        // chosen by DMRA recently and remain candidates.
        let full_profit: f64 = full.profit_timeline.iter().map(|p| p.get()).sum();
        let sticky_profit: f64 = sticky.profit_timeline.iter().map(|p| p.get()).sum();
        assert!(
            sticky_profit > 0.8 * full_profit,
            "sticky profit {sticky_profit} collapsed vs {full_profit}"
        );
    }

    #[test]
    fn sticky_allocations_stay_valid() {
        let mut cfg = config((25.0, 30.0), 10, 7);
        cfg.policy = MobilityPolicy::Sticky;
        // Runs with debug_assert validation inside; reaching here with a
        // consistent timeline is the test.
        let out = MobilitySimulator::new(cfg).run().unwrap();
        assert_eq!(out.served_timeline.len(), 10);
    }

    #[test]
    fn drops_and_recoveries_roughly_balance_in_steady_state() {
        // With a fixed population the served count is roughly stationary,
        // so cumulative drops and recoveries cannot diverge by more than
        // the served-count range.
        let out = MobilitySimulator::new(config((10.0, 15.0), 20, 5))
            .run()
            .unwrap();
        let max = *out.served_timeline.iter().max().unwrap() as i64;
        let min = *out.served_timeline.iter().min().unwrap() as i64;
        let imbalance = (out.drops as i64 - out.recoveries as i64).abs();
        assert!(
            imbalance <= (max - min) + 1,
            "drops {} vs recoveries {} with served range {}..{}",
            out.drops,
            out.recoveries,
            min,
            max
        );
    }
}
