//! Online (dynamic) simulation: UEs arrive, hold resources, and depart.
//!
//! Section V of the paper motivates DMRA's decentralized design with the
//! observation that "the best association changes over time" and each SP
//! must "adjust its resource allocation strategy in real time". This
//! module exercises exactly that regime:
//!
//! * tasks arrive as a Poisson process (`arrival_rate` per epoch),
//! * each admitted task holds its CRUs and RRBs for a geometrically
//!   distributed number of epochs (`mean_holding`),
//! * at every epoch the batch of *new* arrivals is matched by a fresh DMRA
//!   run against the BSs' *currently remaining* resources (existing
//!   assignments are never migrated — admitted tasks keep their BS until
//!   they complete, as in the paper's one-BS-per-task model).
//!
//! The per-epoch matching reuses the static machinery: an epoch instance
//! is built whose BS budgets are the remaining capacities, so all static
//! invariants (constraint validation, non-wastefulness) apply verbatim.
//!
//! # Examples
//!
//! ```
//! use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator};
//! use dmra_sim::ScenarioConfig;
//!
//! let config = DynamicConfig {
//!     scenario: ScenarioConfig::paper_defaults(),
//!     arrival_rate: 20.0,
//!     mean_holding: 5.0,
//!     epochs: 30,
//!     seed: 7,
//! };
//! let outcome = DynamicSimulator::new(config).run()?;
//! assert_eq!(
//!     outcome.arrivals,
//!     outcome.admitted + outcome.cloud_forwarded
//! );
//! # Ok::<(), dmra_types::Error>(())
//! ```

use crate::config::ScenarioConfig;
use dmra_core::{Allocator, Dmra};
use dmra_geo::rng::component_rng;
use dmra_types::{
    BitsPerSec, BsId, BsSpec, Cru, Money, Result, RrbCount, ServiceId, SpId, UeId, UeSpec,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Configuration of an online run.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// The static deployment (SPs, BSs, radio, pricing) and the workload
    /// *distributions* (demand ranges); its `n_ues` field is ignored.
    pub scenario: ScenarioConfig,
    /// Mean number of task arrivals per epoch (Poisson).
    pub arrival_rate: f64,
    /// Mean task duration in epochs (geometric holding time, ≥ 1).
    pub mean_holding: f64,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Seed for arrivals, workloads and holding times.
    pub seed: u64,
}

/// Aggregate results of an online run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicOutcome {
    /// Total task arrivals over the horizon.
    pub arrivals: u64,
    /// Tasks admitted to an edge BS.
    pub admitted: u64,
    /// Tasks forwarded to the remote cloud on arrival.
    pub cloud_forwarded: u64,
    /// Tasks that completed (departed) within the horizon.
    pub completed: u64,
    /// Sum over epochs of the MEC-layer profit *rate* (each admitted task
    /// contributes its one-shot Eq. (5) profit once, at admission).
    pub total_profit: Money,
    /// Per-epoch mean RRB occupancy across BSs (0–1), for steady-state
    /// inspection.
    pub rrb_occupancy: Vec<f64>,
    /// Per-epoch number of tasks in service at epoch end.
    pub in_service: Vec<usize>,
}

impl DynamicOutcome {
    /// Fraction of arrivals admitted at the edge.
    #[must_use]
    pub fn admission_ratio(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.admitted as f64 / self.arrivals as f64
    }

    /// Mean RRB occupancy over the second half of the horizon (a crude
    /// steady-state estimate).
    #[must_use]
    pub fn steady_state_occupancy(&self) -> f64 {
        let half = &self.rrb_occupancy[self.rrb_occupancy.len() / 2..];
        if half.is_empty() {
            return 0.0;
        }
        half.iter().sum::<f64>() / half.len() as f64
    }
}

/// A task currently holding resources.
#[derive(Debug, Clone, Copy)]
struct ActiveTask {
    bs: BsId,
    service: ServiceId,
    cru: Cru,
    rrbs: RrbCount,
    departs_at: usize,
}

/// The online simulator.
pub struct DynamicSimulator {
    config: DynamicConfig,
    allocator: Box<dyn Allocator>,
}

impl fmt::Debug for DynamicSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynamicSimulator")
            .field("config", &self.config)
            .field("allocator", &self.allocator.name())
            .finish()
    }
}

impl DynamicSimulator {
    /// Creates a simulator matching each epoch's arrivals with DMRA.
    #[must_use]
    pub fn new(config: DynamicConfig) -> Self {
        Self::with_allocator(config, Box::new(Dmra::default()))
    }

    /// Creates a simulator using a custom allocator for the per-epoch
    /// matching — lets the online regime compare algorithms on identical
    /// arrival traces (same seed ⇒ same arrivals, positions, demands and
    /// holding times regardless of the allocator).
    #[must_use]
    pub fn with_allocator(config: DynamicConfig, allocator: Box<dyn Allocator>) -> Self {
        Self { config, allocator }
    }

    /// Runs the simulation to the horizon.
    ///
    /// # Errors
    ///
    /// Propagates scenario/instance build errors (e.g. invalid pricing).
    pub fn run(&self) -> Result<DynamicOutcome> {
        let cfg = &self.config;
        // The static deployment: build once with zero UEs to get validated
        // SPs/BSs, then treat its BS budgets as the capacity baseline.
        let deployment = cfg
            .scenario
            .clone()
            .with_ues(0)
            .with_seed(cfg.seed)
            .build()?;
        let base_bss: Vec<BsSpec> = deployment.bss().to_vec();

        let mut rem_cru: Vec<Vec<Cru>> = base_bss.iter().map(|b| b.cru_budget.clone()).collect();
        let mut rem_rrb: Vec<RrbCount> = base_bss.iter().map(|b| b.rrb_budget).collect();
        let total_rrb: f64 = base_bss.iter().map(|b| b.rrb_budget.as_f64()).sum();

        let mut rng = component_rng(cfg.seed, "dynamic-arrivals");
        let mut active: Vec<ActiveTask> = Vec::new();
        let mut outcome = DynamicOutcome {
            arrivals: 0,
            admitted: 0,
            cloud_forwarded: 0,
            completed: 0,
            total_profit: Money::new(0.0),
            rrb_occupancy: Vec::with_capacity(cfg.epochs),
            in_service: Vec::with_capacity(cfg.epochs),
        };

        for epoch in 0..cfg.epochs {
            // 1. Departures release their resources.
            let before = active.len();
            active.retain(|t| {
                if t.departs_at <= epoch {
                    rem_cru[t.bs.as_usize()][t.service.as_usize()] += t.cru;
                    rem_rrb[t.bs.as_usize()] += t.rrbs;
                    false
                } else {
                    true
                }
            });
            outcome.completed += (before - active.len()) as u64;

            // 2. New arrivals this epoch.
            let n_new = poisson(cfg.arrival_rate, &mut rng);
            outcome.arrivals += n_new as u64;
            if n_new > 0 {
                let ues = self.draw_arrivals(n_new, &mut rng);
                // Draw holding times for *every* arrival up front so the
                // workload trace is identical across allocators (admission
                // decisions must not perturb the RNG stream).
                let holdings: Vec<usize> = (0..n_new)
                    .map(|_| geometric(cfg.mean_holding, &mut rng))
                    .collect();
                // 3. Build the epoch instance: same BSs, *remaining* budgets.
                let instance = deployment.residual(&rem_cru, &rem_rrb, ues)?;
                // 4. Match the batch and commit admissions.
                let allocation = self.allocator.allocate(&instance);
                debug_assert!(allocation.validate(&instance).is_ok());
                outcome.total_profit += instance.total_profit(&allocation);
                for (ue, bs) in allocation.edge_pairs() {
                    let spec = &instance.ues()[ue.as_usize()];
                    let link = instance.link(ue, bs).expect("candidate");
                    rem_cru[bs.as_usize()][spec.service.as_usize()] -= spec.cru_demand;
                    rem_rrb[bs.as_usize()] -= link.n_rrbs;
                    active.push(ActiveTask {
                        bs,
                        service: spec.service,
                        cru: spec.cru_demand,
                        rrbs: link.n_rrbs,
                        departs_at: epoch + 1 + holdings[ue.as_usize()],
                    });
                    outcome.admitted += 1;
                }
                outcome.cloud_forwarded += allocation.cloud_ues().count() as u64;
            }

            let used: f64 = total_rrb - rem_rrb.iter().map(|r| r.as_f64()).sum::<f64>();
            outcome.rrb_occupancy.push(if total_rrb > 0.0 {
                used / total_rrb
            } else {
                0.0
            });
            outcome.in_service.push(active.len());
        }
        Ok(outcome)
    }

    /// Draws one epoch's arrival batch from the scenario's workload
    /// distributions (dense fresh ids — each epoch instance is standalone).
    fn draw_arrivals(&self, n: usize, rng: &mut StdRng) -> Vec<UeSpec> {
        let cfg = &self.config.scenario;
        let (dlo, dhi) = cfg.cru_demand_range;
        let (rlo, rhi) = cfg.rate_demand_mbps;
        (0..n)
            .map(|u| {
                UeSpec::new(
                    UeId::new(u as u32),
                    SpId::new(rng.random_range(0..cfg.n_sps)),
                    dmra_types::Point::new(
                        rng.random_range(cfg.region.min.x..=cfg.region.max.x),
                        rng.random_range(cfg.region.min.y..=cfg.region.max.y),
                    ),
                    ServiceId::new(rng.random_range(0..cfg.n_services)),
                    Cru::new(rng.random_range(dlo..=dhi)),
                    BitsPerSec::from_mbps(rng.random_range(rlo..=rhi)),
                    cfg.ue_tx_power,
                )
            })
            .collect()
    }
}

/// Poisson sample via Knuth's product method (λ is small per epoch).
fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> usize {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        // Guard against pathological λ: cap at 100× the mean.
        if k as f64 > 100.0 * lambda + 100.0 {
            return k;
        }
    }
}

/// Geometric holding time with the given mean (in epochs, ≥ 0 extra
/// epochs beyond the first).
fn geometric<R: Rng>(mean: f64, rng: &mut R) -> usize {
    let mean = mean.max(1.0);
    let p = 1.0 / mean;
    let mut k = 0usize;
    while rng.random_range(0.0..1.0) > p {
        k += 1;
        if k > 10_000 {
            break;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config(rate: f64, seed: u64) -> DynamicConfig {
        DynamicConfig {
            scenario: ScenarioConfig::paper_defaults(),
            arrival_rate: rate,
            mean_holding: 4.0,
            epochs: 40,
            seed,
        }
    }

    #[test]
    fn conservation_of_tasks() {
        let out = DynamicSimulator::new(base_config(15.0, 1)).run().unwrap();
        assert_eq!(out.arrivals, out.admitted + out.cloud_forwarded);
        // Whatever is neither completed nor in service at the end was
        // forwarded to the cloud.
        let in_service_end = *out.in_service.last().unwrap() as u64;
        assert_eq!(out.admitted, out.completed + in_service_end);
    }

    #[test]
    fn run_is_deterministic() {
        let a = DynamicSimulator::new(base_config(10.0, 7)).run().unwrap();
        let b = DynamicSimulator::new(base_config(10.0, 7)).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn light_load_admits_nearly_everything() {
        let out = DynamicSimulator::new(base_config(5.0, 3)).run().unwrap();
        // At ~5 arrivals/epoch × 4-epoch holding ≈ 20 concurrent tasks on
        // 25 BSs, only coverage gaps cause cloud forwards.
        assert!(
            out.admission_ratio() > 0.9,
            "admission ratio {}",
            out.admission_ratio()
        );
    }

    #[test]
    fn heavier_load_increases_blocking_and_occupancy() {
        // Offered load: rate × mean holding (≈ 4 epochs). Capacity is
        // ≈ 880 concurrent tasks, so 10/epoch is uncongested and
        // 400/epoch (≈ 1600 concurrent offered) saturates the network.
        let light = DynamicSimulator::new(base_config(10.0, 11)).run().unwrap();
        let heavy = DynamicSimulator::new(base_config(400.0, 11)).run().unwrap();
        assert!(heavy.admission_ratio() < light.admission_ratio());
        assert!(heavy.steady_state_occupancy() > light.steady_state_occupancy());
        assert!(heavy.steady_state_occupancy() <= 1.0 + 1e-9);
    }

    #[test]
    fn occupancy_returns_to_zero_after_drain() {
        // Arrivals only in the first epochs (rate 0 later is not
        // expressible with a single rate, so use a short horizon and
        // verify monotone drain by construction: run long with tiny rate).
        let cfg = DynamicConfig {
            scenario: ScenarioConfig::paper_defaults(),
            arrival_rate: 0.0,
            mean_holding: 2.0,
            epochs: 10,
            seed: 5,
        };
        let out = DynamicSimulator::new(cfg).run().unwrap();
        assert_eq!(out.arrivals, 0);
        assert!(out.rrb_occupancy.iter().all(|&o| o == 0.0));
    }

    #[test]
    fn identical_arrival_traces_across_allocators() {
        // The workload stream must not depend on the allocator: arrivals
        // and totals line up between a DMRA run and a CloudOnly run.
        let dmra_run = DynamicSimulator::new(base_config(15.0, 21)).run().unwrap();
        let cloud_run = DynamicSimulator::with_allocator(
            base_config(15.0, 21),
            Box::new(dmra_baselines::CloudOnly::default()),
        )
        .run()
        .unwrap();
        assert_eq!(dmra_run.arrivals, cloud_run.arrivals);
        assert_eq!(cloud_run.admitted, 0);
        assert_eq!(cloud_run.cloud_forwarded, cloud_run.arrivals);
    }

    #[test]
    fn dmra_admits_at_least_as_much_profit_as_nonco_online() {
        let dmra_run = DynamicSimulator::new(base_config(60.0, 22)).run().unwrap();
        let nonco_run = DynamicSimulator::with_allocator(
            base_config(60.0, 22),
            Box::new(dmra_baselines::NonCo::default()),
        )
        .run()
        .unwrap();
        assert_eq!(dmra_run.arrivals, nonco_run.arrivals);
        assert!(
            dmra_run.total_profit.get() > nonco_run.total_profit.get(),
            "dmra {} vs nonco {}",
            dmra_run.total_profit,
            nonco_run.total_profit
        );
    }

    #[test]
    fn profit_accumulates_with_admissions() {
        let out = DynamicSimulator::new(base_config(20.0, 9)).run().unwrap();
        assert!(out.admitted > 0);
        assert!(out.total_profit.get() > 0.0);
    }
}
