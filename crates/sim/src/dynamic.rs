//! Online (dynamic) simulation: UEs arrive, hold resources, and depart.
//!
//! Section V of the paper motivates DMRA's decentralized design with the
//! observation that "the best association changes over time" and each SP
//! must "adjust its resource allocation strategy in real time". This
//! module exercises exactly that regime:
//!
//! * tasks arrive as a Poisson process (`arrival_rate` per epoch),
//! * each admitted task holds its CRUs and RRBs for a random duration
//!   drawn from a configurable [`HoldingDistribution`] (geometric — the
//!   paper-adjacent default — deterministic, or continuous exponential)
//!   with mean `mean_holding` (validated ≥ 1 epoch),
//! * at every epoch the batch of *new* arrivals is matched by a fresh DMRA
//!   run against the BSs' *currently remaining* resources (existing
//!   assignments are never migrated — admitted tasks keep their BS until
//!   they complete, as in the paper's one-BS-per-task model).
//!
//! The per-epoch matching reuses the static machinery: an epoch instance
//! is built whose BS budgets are the remaining capacities, so all static
//! invariants (constraint validation, non-wastefulness) apply verbatim.
//!
//! Three engines produce **bit-identical** outcomes (the `incremental`
//! and `event_engine` integration tests pin this for every allocator,
//! holding distribution, seed and thread count):
//!
//! * [`DynamicSimulator::run_event`] — the **event-driven engine**. A
//!   binary min-heap keyed on departure time replaces the per-epoch scan
//!   over all tasks in service, RRB occupancy is maintained as a running
//!   counter instead of being re-summed across BSs every epoch, and an
//!   epoch without arrivals costs one Poisson draw plus an `O(1)` heap
//!   peek — so low-load long-horizon runs cost `O(events)` matcher/build
//!   work instead of `O(epochs)` (see `BENCH_dynamic_event.json`).
//! * [`DynamicSimulator::run`] — the incremental fixed-epoch engine. A
//!   [`DeploymentContext`] validates the deployment once, keeps the
//!   spatial prune index and link evaluator across epochs, and rebuilds
//!   the epoch instance in place; the allocator runs through a reusable
//!   [`dmra_core::AllocatorSession`] so per-epoch solves stop allocating.
//! * [`DynamicSimulator::run_scratch`] — the original
//!   rebuild-from-scratch loop (full [`ProblemInstance::residual`] with
//!   an exhaustive candidate scan each epoch), kept as the executable
//!   specification and the benchmark baseline.
//!
//! All three consume the **same RNG stream** (per epoch: one Poisson
//! draw, then — only if the batch is non-empty — the arrival workloads
//! followed by one pre-drawn holding sample per arrival), so a seed fixes
//! the workload trace regardless of engine, allocator or telemetry.
//!
//! # Examples
//!
//! ```
//! use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
//! use dmra_sim::ScenarioConfig;
//!
//! let config = DynamicConfig {
//!     scenario: ScenarioConfig::paper_defaults(),
//!     arrival_rate: 20.0,
//!     mean_holding: 5.0,
//!     holding: HoldingDistribution::Geometric,
//!     epochs: 30,
//!     seed: 7,
//! };
//! let outcome = DynamicSimulator::new(config).run_event()?;
//! assert_eq!(
//!     outcome.arrivals,
//!     outcome.admitted + outcome.cloud_forwarded
//! );
//! # Ok::<(), dmra_types::Error>(())
//! ```

use crate::config::ScenarioConfig;
use crate::shard::{self, EpochBudgets, ShardGrid, ShardJob};
use dmra_core::agents::{run_protocol, ProtocolOptions};
use dmra_core::{
    solve_mode_default, Allocation, Allocator, CandidateLink, CandidateScan, DeploymentContext,
    Dmra, DmraConfig, ProblemInstance, SolveMode, Threads,
};
use dmra_geo::rng::component_rng;
use dmra_obs::{obs_warn, EpochObserver, EpochRecord};
use dmra_par::WorkerPool;
use dmra_proto::{DelayModel, DropPolicy};
use dmra_types::{
    BitsPerSec, BsId, BsSpec, Cru, Error, Money, Result, RrbCount, ServiceId, SpId, UeId, UeSpec,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// How long an admitted task holds its resources.
///
/// Every variant draws durations with mean [`DynamicConfig::mean_holding`]
/// epochs (validated ≥ 1). Samples are departure *offsets* from the
/// admission epoch; resources are released at the first epoch boundary at
/// or past the departure time, so every task occupies its BS for at least
/// one full epoch.
///
/// RNG-stream discipline (DESIGN.md §11): `Geometric` consumes the same
/// uniform draws as the pre-event-engine simulator (one per survived
/// epoch), `Exponential` consumes exactly one uniform per task, and
/// `Deterministic` consumes none — so within one distribution the
/// workload trace depends only on the seed, never on the allocator or
/// the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HoldingDistribution {
    /// Discrete geometric duration `1 + k`, `k ~ Geom(p = 1/mean)` —
    /// the memoryless discrete distribution the simulator always had.
    #[default]
    Geometric,
    /// Every task holds exactly `round(mean)` epochs (deterministic
    /// service, the `M/D/c/c` column of teletraffic tables).
    Deterministic,
    /// Continuous exponential duration with the given mean; departures
    /// land between epoch boundaries and take effect at the next one
    /// (so the *discrete* occupancy of a task is `ceil` of its draw,
    /// with mean `1 / (1 - e^(-1/mean))` ≈ `mean + ½` epochs).
    Exponential,
}

impl HoldingDistribution {
    /// Draws one departure offset (in epochs, ≥ 1 effective) for a task
    /// admitted now. `mean` must satisfy the validated `≥ 1` contract.
    fn sample<R: Rng>(self, mean: f64, rng: &mut R) -> f64 {
        debug_assert!(mean.is_finite() && mean >= 1.0);
        match self {
            HoldingDistribution::Geometric => (1 + geometric(mean, rng)) as f64,
            HoldingDistribution::Deterministic => mean.round(),
            HoldingDistribution::Exponential => {
                // `1 - u` maps [0, 1) onto (0, 1] so the logarithm is finite.
                -mean * (1.0 - rng.random_range(0.0..1.0)).ln()
            }
        }
    }
}

impl fmt::Display for HoldingDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HoldingDistribution::Geometric => "geometric",
            HoldingDistribution::Deterministic => "deterministic",
            HoldingDistribution::Exponential => "exponential",
        })
    }
}

/// Error parsing a [`HoldingDistribution`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHoldingError(String);

impl fmt::Display for ParseHoldingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown holding distribution '{}' (expected geometric, det or exp)",
            self.0
        )
    }
}

impl std::error::Error for ParseHoldingError {}

impl std::str::FromStr for HoldingDistribution {
    type Err = ParseHoldingError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "geometric" | "geo" => Ok(HoldingDistribution::Geometric),
            "det" | "deterministic" | "fixed" => Ok(HoldingDistribution::Deterministic),
            "exp" | "exponential" => Ok(HoldingDistribution::Exponential),
            other => Err(ParseHoldingError(other.to_owned())),
        }
    }
}

/// Configuration of an online run.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// The static deployment (SPs, BSs, radio, pricing) and the workload
    /// *distributions* (demand ranges); its `n_ues` field is ignored.
    pub scenario: ScenarioConfig,
    /// Mean number of task arrivals per epoch (Poisson). Must be finite
    /// and non-negative.
    pub arrival_rate: f64,
    /// Mean task duration in epochs. Must be finite and ≥ 1 — the same
    /// contract [`crate::erlang::TrunkModel::predicted_blocking`] clamps
    /// to, so analytics and simulation agree at the boundary.
    pub mean_holding: f64,
    /// Shape of the holding-time distribution (the mean comes from
    /// [`mean_holding`](DynamicConfig::mean_holding)).
    pub holding: HoldingDistribution,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Seed for arrivals, workloads and holding times.
    pub seed: u64,
}

impl DynamicConfig {
    /// Checks the numeric validity of the online-run parameters.
    ///
    /// Every engine calls this up front, so a bad configuration fails
    /// loudly instead of silently clamping (`mean_holding < 1` used to be
    /// clamped to 1 inside the sampler) or silently producing zero
    /// arrivals (a negative or NaN rate passed the old `debug_assert!`
    /// in release builds).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field when
    /// `arrival_rate` is negative or non-finite, or `mean_holding` is
    /// below one epoch or non-finite.
    pub fn validate(&self) -> Result<()> {
        if !self.arrival_rate.is_finite() || self.arrival_rate < 0.0 {
            return Err(Error::InvalidConfig(format!(
                "arrival_rate ({}) must be finite and non-negative",
                self.arrival_rate
            )));
        }
        if !self.mean_holding.is_finite() || self.mean_holding < 1.0 {
            return Err(Error::InvalidConfig(format!(
                "mean_holding ({}) must be finite and at least 1 epoch",
                self.mean_holding
            )));
        }
        Ok(())
    }
}

/// Delivery-delay spec for the protocol-backed dynamic engine.
///
/// This is [`DelayModel`] minus the seed: the engine derives a fresh,
/// deterministic seed per epoch from the run seed (see
/// [`ProtoFaults::epoch_options`]), so the same fault spec replays
/// different per-message draws each epoch while a run seed still fixes
/// every draw of the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoDelay {
    /// Every message arrives next round (the synchronous default).
    #[default]
    Immediate,
    /// Every message takes `1 + extra` rounds.
    Fixed(u32),
    /// Each message independently takes `1 + U{0..=max_extra}` rounds.
    Random(u32),
}

impl ProtoDelay {
    /// Upper bound on the extra in-flight rounds a message can spend —
    /// the quiescence grace must cover it so a long-delayed retry is not
    /// mistaken for silence.
    #[must_use]
    pub fn extra_bound(self) -> u32 {
        match self {
            ProtoDelay::Immediate => 0,
            ProtoDelay::Fixed(extra) | ProtoDelay::Random(extra) => extra,
        }
    }

    /// Instantiates the [`DelayModel`] this spec describes, seeding the
    /// random variant's per-message draws from `seed`.
    #[must_use]
    pub fn to_model(self, seed: u64) -> DelayModel {
        match self {
            ProtoDelay::Immediate => DelayModel::Immediate,
            ProtoDelay::Fixed(extra) => DelayModel::Fixed { extra },
            ProtoDelay::Random(max_extra) => DelayModel::Random { max_extra, seed },
        }
    }
}

impl fmt::Display for ProtoDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoDelay::Immediate => f.write_str("immediate"),
            ProtoDelay::Fixed(extra) => write!(f, "fixed:{extra}"),
            ProtoDelay::Random(max) => write!(f, "random:{max}"),
        }
    }
}

/// Error parsing a [`ProtoDelay`] spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDelayError(String);

impl fmt::Display for ParseDelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid delay spec '{}' (expected immediate, fixed:N or random:MAX)",
            self.0
        )
    }
}

impl std::error::Error for ParseDelayError {}

impl std::str::FromStr for ProtoDelay {
    type Err = ParseDelayError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        if s == "immediate" || s == "none" {
            return Ok(ProtoDelay::Immediate);
        }
        let parse_n = |n: &str| n.parse::<u32>().map_err(|_| ParseDelayError(s.to_owned()));
        match s.split_once(':') {
            Some(("fixed", n)) => parse_n(n).map(ProtoDelay::Fixed),
            Some(("random", n)) => parse_n(n).map(ProtoDelay::Random),
            _ => Err(ParseDelayError(s.to_owned())),
        }
    }
}

/// Fault injection for [`DynamicSimulator::run_proto`]: the per-epoch
/// protocol runs under message loss, delivery delay and BS fail-stop
/// crashes. [`ProtoFaults::default`] is reliable immediate delivery with
/// no crashes — under it the engine is bit-identical to
/// [`DynamicSimulator::run`].
#[derive(Debug, Clone, Default)]
pub struct ProtoFaults {
    /// Per-message drop probability, in `[0, 1)`.
    pub drop_prob: f64,
    /// Delivery-delay spec.
    pub delay: ProtoDelay,
    /// BSs that fail-stop at the given *simulation epoch*: from that epoch
    /// onward the BS is crashed from round 0 of every per-epoch protocol
    /// run, so it admits nothing new. Tasks it already serves run to
    /// completion (the radio keeps carrying committed traffic; only the
    /// control plane is dead), which keeps departure bookkeeping identical
    /// across engines.
    pub crashes: Vec<(BsId, usize)>,
    /// Per-epoch round bound before declaring non-termination
    /// (0 = the [`ProtocolOptions`] default of 100 000).
    pub max_rounds: usize,
}

impl ProtoFaults {
    /// Checks the fault spec against the deployment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `drop_prob` is outside
    /// `[0, 1)` (1 would drop everything and the protocol could never
    /// converge) or a crash names a BS the deployment does not have.
    pub fn validate(&self, n_bss: usize) -> Result<()> {
        if !(0.0..1.0).contains(&self.drop_prob) {
            return Err(Error::InvalidConfig(format!(
                "drop probability ({}) must be in [0, 1)",
                self.drop_prob
            )));
        }
        for &(bs, _) in &self.crashes {
            if bs.as_usize() >= n_bss {
                return Err(Error::InvalidConfig(format!(
                    "crash names unknown {bs} (deployment has {n_bss} BSs)"
                )));
            }
        }
        Ok(())
    }

    /// Builds the [`ProtocolOptions`] for one epoch's protocol run.
    ///
    /// Fault randomness is a *separate* RNG stream from the workload: the
    /// drop and delay samplers are seeded from `(run_seed, epoch)` via a
    /// splitmix-style mix (and further separated per component inside
    /// `dmra-proto`), never from the arrival RNG — so attaching telemetry
    /// or changing the fault spec cannot perturb the workload trace, and
    /// the workload seed cannot perturb the fault draws of another epoch.
    #[must_use]
    pub fn epoch_options(&self, run_seed: u64, epoch: usize) -> ProtocolOptions {
        let seed = epoch_fault_seed(run_seed, epoch);
        let defaults = ProtocolOptions::default();
        ProtocolOptions {
            drop_policy: DropPolicy::new(self.drop_prob, seed),
            delay: self.delay.to_model(seed),
            crashed_bss: self
                .crashes
                .iter()
                .filter(|&&(_, at)| at <= epoch)
                .map(|&(bs, _)| (bs, 0))
                .collect(),
            max_rounds: if self.max_rounds == 0 {
                defaults.max_rounds
            } else {
                self.max_rounds
            },
            // The default grace covers the retry timeout under immediate
            // delivery; widen it by the delay bound so a maximally-delayed
            // retry still counts as activity.
            quiescence_grace: defaults.quiescence_grace + self.delay.extra_bound() as usize,
        }
    }
}

/// Splitmix64-style mix of the run seed and the epoch index: each epoch's
/// protocol faults get an independent, deterministic seed stream.
fn epoch_fault_seed(run_seed: u64, epoch: usize) -> u64 {
    let mut z = run_seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregate results of an online run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicOutcome {
    /// Total task arrivals over the horizon.
    pub arrivals: u64,
    /// Tasks admitted to an edge BS.
    pub admitted: u64,
    /// Tasks forwarded to the remote cloud on arrival.
    pub cloud_forwarded: u64,
    /// Tasks that completed (departed) within the horizon.
    pub completed: u64,
    /// Sum over epochs of the MEC-layer profit *rate* (each admitted task
    /// contributes its one-shot Eq. (5) profit once, at admission).
    pub total_profit: Money,
    /// Per-epoch mean RRB occupancy across BSs (0–1), for steady-state
    /// inspection.
    pub rrb_occupancy: Vec<f64>,
    /// Per-epoch number of tasks in service at epoch end.
    pub in_service: Vec<usize>,
}

impl DynamicOutcome {
    /// Fraction of arrivals admitted at the edge.
    #[must_use]
    pub fn admission_ratio(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.admitted as f64 / self.arrivals as f64
    }

    /// Mean RRB occupancy over the second half of the horizon (a crude
    /// steady-state estimate).
    #[must_use]
    pub fn steady_state_occupancy(&self) -> f64 {
        let half = &self.rrb_occupancy[self.rrb_occupancy.len() / 2..];
        if half.is_empty() {
            return 0.0;
        }
        half.iter().sum::<f64>() / half.len() as f64
    }
}

/// A task currently holding resources (fixed-epoch engines).
#[derive(Debug, Clone, Copy)]
struct ActiveTask {
    bs: BsId,
    service: ServiceId,
    cru: Cru,
    rrbs: RrbCount,
    /// Departure time in epochs; resources release at the first epoch
    /// boundary `t` with `departs_at <= t`. Integral for geometric and
    /// deterministic holding, fractional for exponential.
    departs_at: f64,
}

/// The online simulator.
pub struct DynamicSimulator {
    config: DynamicConfig,
    allocator: Box<dyn Allocator>,
    observer: Option<Arc<dyn EpochObserver>>,
}

impl fmt::Debug for DynamicSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynamicSimulator")
            .field("config", &self.config)
            .field("allocator", &self.allocator.name())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl DynamicSimulator {
    /// Creates a simulator matching each epoch's arrivals with DMRA.
    #[must_use]
    pub fn new(config: DynamicConfig) -> Self {
        Self::with_allocator(config, Box::new(Dmra::default()))
    }

    /// Creates a simulator using a custom allocator for the per-epoch
    /// matching — lets the online regime compare algorithms on identical
    /// arrival traces (same seed ⇒ same arrivals, positions, demands and
    /// holding times regardless of the allocator).
    #[must_use]
    pub fn with_allocator(config: DynamicConfig, allocator: Box<dyn Allocator>) -> Self {
        Self {
            config,
            allocator,
            observer: None,
        }
    }

    /// Attaches an [`EpochObserver`] (flight recorder, time-series
    /// collector, …) that receives one `"sim.epoch"` record per epoch
    /// from every engine. Without an explicit attachment the engines
    /// fall back to the process-wide slot
    /// ([`dmra_obs::set_epoch_observer`]). Observe-only: records are
    /// built after each epoch's bookkeeping is committed, so outcomes
    /// stay bit-identical with or without an observer.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn EpochObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs the simulation to the horizon with the **incremental engine**:
    /// the deployment is validated once into a [`DeploymentContext`], each
    /// epoch patches remaining budgets in place and evaluates only the new
    /// arrival batch (spatially pruned), and the allocator solves through
    /// a reusable session. Bit-identical to
    /// [`DynamicSimulator::run_scratch`] and
    /// [`DynamicSimulator::run_event`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an invalid [`DynamicConfig`]
    /// and propagates scenario/instance build errors (e.g. invalid
    /// pricing).
    pub fn run(&self) -> Result<DynamicOutcome> {
        let cfg = &self.config;
        cfg.validate()?;
        // The static deployment: build once with zero UEs to get validated
        // SPs/BSs, then treat its BS budgets as the capacity baseline.
        let deployment = cfg
            .scenario
            .clone()
            .with_ues(0)
            .with_seed(cfg.seed)
            .build()?;
        let mut ctx = delta_aware_ctx(&deployment);
        let mut session = self.allocator.session();
        let mut rng = component_rng(cfg.seed, "dynamic-arrivals");
        let mut state = EngineState::new(deployment.bss(), cfg.epochs);
        // Observe-only telemetry: the flag is read once per run and every
        // recording happens after the epoch's bookkeeping is committed, so
        // the engine stays bit-identical to `run_scratch`.
        let obs_on = dmra_obs::enabled();
        let observer = self.observer.clone().or_else(dmra_obs::epoch_observer);
        let aux_counters = observer.as_ref().map(|_| AuxCounters::fetch());

        for epoch in 0..cfg.epochs {
            let epoch_started = obs_on.then(std::time::Instant::now);
            let admitted_before = state.outcome.admitted;
            let cloud_before = state.outcome.cloud_forwarded;
            let completed_before = state.outcome.completed;
            let aux_before = aux_counters.as_ref().map_or((0, 0, 0), AuxCounters::read);
            state.release_departures(epoch);
            let n_new = poisson(cfg.arrival_rate, &mut rng);
            state.outcome.arrivals += n_new as u64;
            let mut solve_ns = 0u64;
            let mut digest = 0u64;
            if n_new > 0 {
                let ues = self.draw_arrivals(n_new, &mut rng);
                // Draw holding times for *every* arrival up front so the
                // workload trace is identical across allocators (admission
                // decisions must not perturb the RNG stream).
                let offsets: Vec<f64> = (0..n_new)
                    .map(|_| cfg.holding.sample(cfg.mean_holding, &mut rng))
                    .collect();
                let instance = ctx.epoch_instance(&state.rem_cru, &state.rem_rrb, ues)?;
                let solve_started = obs_on.then(std::time::Instant::now);
                let allocation = session.allocate(instance);
                solve_ns = record_solve_phase(obs_on, solve_started);
                debug_assert!(allocation.validate(instance).is_ok());
                if observer.is_some() {
                    digest = allocation.digest();
                }
                state.commit_epoch(instance, &allocation, &offsets, epoch);
            }
            state.finish_epoch();
            let epoch_ns = epoch_started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            if obs_on {
                // Cached handles: one atomic op per metric per epoch.
                static EPOCHS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("sim.epochs");
                static ARRIVALS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("sim.arrivals");
                static EPOCH_NS: dmra_obs::LazyHistogram =
                    dmra_obs::LazyHistogram::new("sim.epoch_ns");
                EPOCHS.get().inc();
                ARRIVALS.get().add(n_new as u64);
                EPOCH_NS.get().record(epoch_ns);
                dmra_obs::global_trace().record(dmra_obs::TraceEvent {
                    name: "sim.epoch",
                    index: epoch as u64,
                    fields: vec![
                        ("arrivals", n_new as f64),
                        (
                            "admitted",
                            (state.outcome.admitted - admitted_before) as f64,
                        ),
                        (
                            "in_service",
                            state.outcome.in_service.last().copied().unwrap_or(0) as f64,
                        ),
                        (
                            "occupancy",
                            state.outcome.rrb_occupancy.last().copied().unwrap_or(0.0),
                        ),
                        ("wall_ns", epoch_ns as f64),
                    ],
                });
            }
            if let Some(obs) = &observer {
                let record = push_common_aux(
                    finished_epoch_record(
                        epoch,
                        n_new,
                        &state.outcome,
                        admitted_before,
                        cloud_before,
                        completed_before,
                        digest,
                    ),
                    epoch_ns,
                    solve_ns,
                    aux_counters.as_ref().expect("fetched alongside observer"),
                    aux_before,
                );
                obs.on_record(&record);
            }
        }
        Ok(state.outcome)
    }

    /// Runs the simulation with the **protocol-backed engine**: each
    /// epoch's arrival batch is matched by the *actual message-passing
    /// DMRA protocol* ([`dmra_core::agents::run_protocol`]) — one
    /// `UeAgent` per arrival and one `BsAgent` per BS exchanging service
    /// requests, accepts and resource broadcasts on the synchronous-round
    /// engine — instead of the in-memory matcher. The epoch instance is
    /// the same residual build as [`DynamicSimulator::run`]
    /// ([`DeploymentContext::epoch_instance`] against remaining budgets),
    /// and the RNG stream is identical, so under
    /// [`ProtoFaults::default`] (reliable immediate delivery, no
    /// crashes) the outcome — and every per-epoch record digest — is
    /// bit-identical to the incremental engine (`tests/recorder.rs` pins
    /// this across seeds).
    ///
    /// Under faults the committed allocation is whatever the protocol
    /// actually converged to: message loss and delay can leave UEs
    /// unserved or double-booked (BS-side accounting keeps every budget
    /// safe), and a crashed BS admits nothing from its crash epoch
    /// onward. When an observer is attached, each `"sim.epoch"` record
    /// carries degradation telemetry in its aux section: protocol
    /// rounds/messages/drops/crash-absorbed counts, conflicting accepts,
    /// and the profit / served-UE gap against the oracle matcher (the
    /// simulator's allocator solving the same instance). The protocol
    /// always runs DMRA with paper-default parameters; the attached
    /// allocator is only the telemetry oracle.
    ///
    /// # Errors
    ///
    /// Same as [`DynamicSimulator::run`], plus [`Error::InvalidConfig`]
    /// for an invalid [`ProtoFaults`] spec and
    /// [`Error::NonTermination`] if an epoch's protocol run exhausts its
    /// round bound.
    pub fn run_proto(&self, faults: &ProtoFaults) -> Result<DynamicOutcome> {
        let cfg = &self.config;
        cfg.validate()?;
        let deployment = cfg
            .scenario
            .clone()
            .with_ues(0)
            .with_seed(cfg.seed)
            .build()?;
        faults.validate(deployment.bss().len())?;
        let mut ctx = delta_aware_ctx(&deployment);
        let proto_config = DmraConfig::paper_defaults();
        // The oracle session only runs when an observer wants the
        // degradation gap; it never touches the RNG or the engine state.
        let mut oracle = self.allocator.session();
        let mut rng = component_rng(cfg.seed, "dynamic-arrivals");
        let mut state = EngineState::new(deployment.bss(), cfg.epochs);
        let obs_on = dmra_obs::enabled();
        let observer = self.observer.clone().or_else(dmra_obs::epoch_observer);
        let aux_counters = observer.as_ref().map(|_| AuxCounters::fetch());

        for epoch in 0..cfg.epochs {
            let epoch_started = obs_on.then(std::time::Instant::now);
            let admitted_before = state.outcome.admitted;
            let cloud_before = state.outcome.cloud_forwarded;
            let completed_before = state.outcome.completed;
            let aux_before = aux_counters.as_ref().map_or((0, 0, 0), AuxCounters::read);
            state.release_departures(epoch);
            let n_new = poisson(cfg.arrival_rate, &mut rng);
            state.outcome.arrivals += n_new as u64;
            let mut solve_ns = 0u64;
            let mut digest = 0u64;
            let mut degradation = ProtoEpochAux::default();
            if n_new > 0 {
                let ues = self.draw_arrivals(n_new, &mut rng);
                let offsets: Vec<f64> = (0..n_new)
                    .map(|_| cfg.holding.sample(cfg.mean_holding, &mut rng))
                    .collect();
                let instance = ctx.epoch_instance(&state.rem_cru, &state.rem_rrb, ues)?;
                let options = faults.epoch_options(cfg.seed, epoch);
                let solve_started = obs_on.then(std::time::Instant::now);
                let outcome = run_protocol(instance, &proto_config, options)?;
                solve_ns = record_solve_phase(obs_on, solve_started);
                let allocation = outcome.allocation;
                debug_assert!(allocation.validate(instance).is_ok());
                if observer.is_some() {
                    digest = allocation.digest();
                    let oracle_alloc = oracle.allocate(instance);
                    degradation = ProtoEpochAux {
                        rounds: outcome.stats.rounds as u64,
                        messages: outcome.stats.messages_sent,
                        dropped: outcome.stats.messages_dropped,
                        absorbed: outcome.stats.absorbed_by_crash,
                        conflicts: outcome.conflicting_accepts,
                        oracle_profit_gap: instance.total_profit(&oracle_alloc).get()
                            - instance.total_profit(&allocation).get(),
                        oracle_unserved_gap: oracle_alloc.edge_served() as f64
                            - allocation.edge_served() as f64,
                    };
                }
                state.commit_epoch(instance, &allocation, &offsets, epoch);
            }
            state.finish_epoch();
            let epoch_ns = epoch_started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            if obs_on {
                // Same stream names as the other engines, so traces line
                // up epoch for epoch.
                static EPOCHS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("sim.epochs");
                static ARRIVALS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("sim.arrivals");
                static EPOCH_NS: dmra_obs::LazyHistogram =
                    dmra_obs::LazyHistogram::new("sim.epoch_ns");
                EPOCHS.get().inc();
                ARRIVALS.get().add(n_new as u64);
                EPOCH_NS.get().record(epoch_ns);
                dmra_obs::global_trace().record(dmra_obs::TraceEvent {
                    name: "sim.epoch",
                    index: epoch as u64,
                    fields: vec![
                        ("arrivals", n_new as f64),
                        (
                            "admitted",
                            (state.outcome.admitted - admitted_before) as f64,
                        ),
                        (
                            "in_service",
                            state.outcome.in_service.last().copied().unwrap_or(0) as f64,
                        ),
                        (
                            "occupancy",
                            state.outcome.rrb_occupancy.last().copied().unwrap_or(0.0),
                        ),
                        ("wall_ns", epoch_ns as f64),
                    ],
                });
            }
            if let Some(obs) = &observer {
                let record = degradation.push(push_common_aux(
                    finished_epoch_record(
                        epoch,
                        n_new,
                        &state.outcome,
                        admitted_before,
                        cloud_before,
                        completed_before,
                        digest,
                    ),
                    epoch_ns,
                    solve_ns,
                    aux_counters.as_ref().expect("fetched alongside observer"),
                    aux_before,
                ));
                obs.on_record(&record);
            }
        }
        Ok(state.outcome)
    }

    /// Runs the simulation with the **region-sharded engine**: the site
    /// grid is partitioned into `rows × cols` rectangular shards
    /// ([`ShardGrid`]), each owning a long-lived worker thread
    /// ([`dmra_par::WorkerPool`]) with its own [`DeploymentContext`]
    /// whose prune index is narrowed to the shard's sites plus a
    /// coverage-radius halo. Each epoch the coordinator draws the
    /// arrival batch (same RNG stream as [`DynamicSimulator::run`] —
    /// a seed fixes the workload trace across engines), routes UEs to
    /// shards by position, fans the row builds out to the workers,
    /// merges the rows back into global order and assembles the epoch
    /// instance with `epoch_instance_prebuilt`; the allocator then
    /// solves the merged instance **once** — coverage discs chain the
    /// candidate graph across shard seams and BS budgets couple
    /// admissions globally, so per-shard solves could not match. The
    /// outcome is bit-identical to the unsharded engines for every
    /// shard count (`tests/sharding.rs` pins it).
    ///
    /// # Errors
    ///
    /// Same as [`DynamicSimulator::run`], plus [`Error::InvalidConfig`]
    /// for a zero shard dimension or a load-proportional interference
    /// model (per-shard row builds cannot see the whole batch).
    pub fn run_sharded(&self, rows: usize, cols: usize) -> Result<DynamicOutcome> {
        let grid = ShardGrid::new(rows, cols, self.config.scenario.region)?;
        self.run_sharded_grid(&grid)
    }

    /// [`DynamicSimulator::run_sharded`] with a near-square shard grid of
    /// exactly `shards` cells ([`ShardGrid::for_count`]).
    ///
    /// # Errors
    ///
    /// Same as [`DynamicSimulator::run_sharded`].
    pub fn run_sharded_n(&self, shards: usize) -> Result<DynamicOutcome> {
        let grid = ShardGrid::for_count(shards, self.config.scenario.region)?;
        self.run_sharded_grid(&grid)
    }

    fn run_sharded_grid(&self, grid: &ShardGrid) -> Result<DynamicOutcome> {
        let cfg = &self.config;
        cfg.validate()?;
        shard::reject_interference(&cfg.scenario.radio)?;
        let deployment = cfg
            .scenario
            .clone()
            .with_ues(0)
            .with_seed(cfg.seed)
            .build()?;
        // Long-lived shard workers: each slot keeps its filtered context
        // (buffers, prune index, link evaluator) across epochs. No row
        // cache — arrival batches are fresh UEs every epoch, matching
        // the unsharded incremental engine.
        let (slots, registries) = shard::build_slots(&deployment, grid, false);
        let pool = WorkerPool::new(slots);
        let obs_on = dmra_obs::enabled();
        let observer = self.observer.clone().or_else(dmra_obs::epoch_observer);
        let aux_counters = observer.as_ref().map(|_| AuxCounters::fetch());
        // While the run is in flight the per-shard registries are only
        // merged into the global one at the end; registering them as
        // live scrape sources lets a concurrent `/metrics` scrape see
        // shard-local counters mid-run.
        let scrape_guard = obs_on.then(|| dmra_obs::register_scrape_sources(&registries));
        let worker = shard::row_build_worker(obs_on);
        // The coordinator context assembles the merged instance and
        // performs the global validation (budgets, UEs, pricing margin).
        let mut asm = DeploymentContext::new(&deployment);
        let mut session = self.allocator.session();
        let mut rng = component_rng(cfg.seed, "dynamic-arrivals");
        let mut state = EngineState::new(deployment.bss(), cfg.epochs);
        let mut merged_links: Vec<CandidateLink> = Vec::new();
        let mut merged_starts: Vec<usize> = Vec::new();

        for epoch in 0..cfg.epochs {
            let epoch_started = obs_on.then(std::time::Instant::now);
            let admitted_before = state.outcome.admitted;
            let cloud_before = state.outcome.cloud_forwarded;
            let completed_before = state.outcome.completed;
            let aux_before = aux_counters.as_ref().map_or((0, 0, 0), AuxCounters::read);
            state.release_departures(epoch);
            let n_new = poisson(cfg.arrival_rate, &mut rng);
            state.outcome.arrivals += n_new as u64;
            let mut solve_ns = 0u64;
            let mut digest = 0u64;
            let mut shard_load: Option<Vec<u64>> = None;
            if n_new > 0 {
                let ues = self.draw_arrivals(n_new, &mut rng);
                let offsets: Vec<f64> = (0..n_new)
                    .map(|_| cfg.holding.sample(cfg.mean_holding, &mut rng))
                    .collect();
                let (owners, batches) = shard::route(grid, &ues);
                if observer.is_some() {
                    shard_load = Some(batches.iter().map(|b| b.len() as u64).collect());
                }
                // Budgets move into a shared read-only snapshot for the
                // barrier, then back — no copy on the happy path.
                let budgets = Arc::new(EpochBudgets {
                    cru: std::mem::take(&mut state.rem_cru),
                    rrb: std::mem::take(&mut state.rem_rrb),
                });
                let jobs: Vec<ShardJob> = batches
                    .into_iter()
                    .map(|batch| (Arc::clone(&budgets), batch))
                    .collect();
                let built = pool.run(jobs, worker.clone());
                match Arc::try_unwrap(budgets) {
                    Ok(b) => {
                        state.rem_cru = b.cru;
                        state.rem_rrb = b.rrb;
                    }
                    Err(shared) => {
                        state.rem_cru = shared.cru.clone();
                        state.rem_rrb = shared.rrb.clone();
                    }
                }
                let rows = built.into_iter().collect::<Result<Vec<_>>>()?;
                shard::merge_rows(&owners, &rows, &mut merged_links, &mut merged_starts);
                let instance = asm.epoch_instance_prebuilt(
                    &state.rem_cru,
                    &state.rem_rrb,
                    ues,
                    &merged_links,
                    &merged_starts,
                )?;
                let solve_started = obs_on.then(std::time::Instant::now);
                let allocation = session.allocate(instance);
                solve_ns = record_solve_phase(obs_on, solve_started);
                debug_assert!(allocation.validate(instance).is_ok());
                if observer.is_some() {
                    digest = allocation.digest();
                }
                state.commit_epoch(instance, &allocation, &offsets, epoch);
            }
            state.finish_epoch();
            let epoch_ns = epoch_started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            if obs_on {
                // Same stream names as the incremental engine, so traces
                // from sharded and unsharded runs line up epoch for epoch.
                static EPOCHS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("sim.epochs");
                static ARRIVALS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("sim.arrivals");
                static EPOCH_NS: dmra_obs::LazyHistogram =
                    dmra_obs::LazyHistogram::new("sim.epoch_ns");
                EPOCHS.get().inc();
                ARRIVALS.get().add(n_new as u64);
                EPOCH_NS.get().record(epoch_ns);
                dmra_obs::global_trace().record(dmra_obs::TraceEvent {
                    name: "sim.epoch",
                    index: epoch as u64,
                    fields: vec![
                        ("arrivals", n_new as f64),
                        (
                            "admitted",
                            (state.outcome.admitted - admitted_before) as f64,
                        ),
                        (
                            "in_service",
                            state.outcome.in_service.last().copied().unwrap_or(0) as f64,
                        ),
                        (
                            "occupancy",
                            state.outcome.rrb_occupancy.last().copied().unwrap_or(0.0),
                        ),
                        ("wall_ns", epoch_ns as f64),
                    ],
                });
            }
            if let Some(obs) = &observer {
                let mut record = push_common_aux(
                    finished_epoch_record(
                        epoch,
                        n_new,
                        &state.outcome,
                        admitted_before,
                        cloud_before,
                        completed_before,
                        digest,
                    ),
                    epoch_ns,
                    solve_ns,
                    aux_counters.as_ref().expect("fetched alongside observer"),
                    aux_before,
                );
                record = record.aux("shard_load", shard_load.unwrap_or_default());
                obs.on_record(&record);
            }
        }
        // Unregister the live scrape sources *before* folding the shard
        // registries into the global one, so no scrape double-counts.
        drop(scrape_guard);
        if obs_on {
            shard::merge_registries(&registries);
        }
        Ok(state.outcome)
    }

    /// Runs the simulation with the **event-driven engine**: departures
    /// live in a binary min-heap keyed on departure time, RRB occupancy
    /// is a running counter, and an epoch with no arrivals and no due
    /// departures costs one Poisson draw plus a heap peek — no task scan,
    /// no per-BS re-summation, no instance build. Bit-identical to
    /// [`DynamicSimulator::run`] for every [`HoldingDistribution`]
    /// (`tests/event_engine.rs` pins the full allocator × seed × rate
    /// grid with telemetry on and off).
    ///
    /// # Errors
    ///
    /// Same as [`DynamicSimulator::run`].
    pub fn run_event(&self) -> Result<DynamicOutcome> {
        let cfg = &self.config;
        cfg.validate()?;
        let deployment = cfg
            .scenario
            .clone()
            .with_ues(0)
            .with_seed(cfg.seed)
            .build()?;
        let mut ctx = delta_aware_ctx(&deployment);
        let mut session = self.allocator.session();
        let mut rng = component_rng(cfg.seed, "dynamic-arrivals");
        let mut state = EventState::new(deployment.bss(), cfg.epochs);
        let obs_on = dmra_obs::enabled();
        let observer = self.observer.clone().or_else(dmra_obs::epoch_observer);
        let aux_counters = observer.as_ref().map(|_| AuxCounters::fetch());

        for epoch in 0..cfg.epochs {
            let now = epoch as f64;
            let admitted_before = state.outcome.admitted;
            let cloud_before = state.outcome.cloud_forwarded;
            let completed_before = state.outcome.completed;
            let aux_before = aux_counters.as_ref().map_or((0, 0, 0), AuxCounters::read);
            state.release_due(now);
            let n_new = poisson(cfg.arrival_rate, &mut rng);
            state.outcome.arrivals += n_new as u64;
            if n_new == 0 {
                // Idle epoch: no arrival event, every due departure is
                // already drained, so occupancy and the in-service count
                // are the cached values — this path is O(1).
                state.record_epoch();
                if obs_on {
                    static IDLE: dmra_obs::LazyCounter =
                        dmra_obs::LazyCounter::new("sim.idle_epochs");
                    IDLE.get().inc();
                }
                if let Some(obs) = &observer {
                    // One record per *epoch*, idle or not, so the event
                    // engine's record stream lines up byte for byte with
                    // the fixed-epoch engines'.
                    let record = push_common_aux(
                        finished_epoch_record(
                            epoch,
                            0,
                            &state.outcome,
                            admitted_before,
                            cloud_before,
                            completed_before,
                            0,
                        ),
                        0,
                        0,
                        aux_counters.as_ref().expect("fetched alongside observer"),
                        aux_before,
                    );
                    obs.on_record(&record);
                }
                continue;
            }
            let event_started = obs_on.then(std::time::Instant::now);
            let ues = self.draw_arrivals(n_new, &mut rng);
            let offsets: Vec<f64> = (0..n_new)
                .map(|_| cfg.holding.sample(cfg.mean_holding, &mut rng))
                .collect();
            let instance = ctx.event_instance(now, &state.rem_cru, &state.rem_rrb, ues)?;
            let solve_started = obs_on.then(std::time::Instant::now);
            let allocation = session.allocate(instance);
            let solve_ns = record_solve_phase(obs_on, solve_started);
            debug_assert!(allocation.validate(instance).is_ok());
            let digest = if observer.is_some() {
                allocation.digest()
            } else {
                0
            };
            state.commit_event(instance, &allocation, &offsets, now);
            state.record_epoch();
            let event_ns = event_started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            if let Some(obs) = &observer {
                let record = push_common_aux(
                    finished_epoch_record(
                        epoch,
                        n_new,
                        &state.outcome,
                        admitted_before,
                        cloud_before,
                        completed_before,
                        digest,
                    ),
                    event_ns,
                    solve_ns,
                    aux_counters.as_ref().expect("fetched alongside observer"),
                    aux_before,
                );
                obs.on_record(&record);
            }
            if obs_on {
                // Event-loop telemetry mirroring the epoch engine's
                // `sim.epochs`/`sim.arrivals`/`sim.epoch_ns`/`sim.epoch`
                // set, recorded only when an arrival event fires.
                static EVENTS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("sim.events");
                static EVENT_ARRIVALS: dmra_obs::LazyCounter =
                    dmra_obs::LazyCounter::new("sim.event_arrivals");
                static EVENT_NS: dmra_obs::LazyHistogram =
                    dmra_obs::LazyHistogram::new("sim.event_ns");
                EVENTS.get().inc();
                EVENT_ARRIVALS.get().add(n_new as u64);
                EVENT_NS.get().record(event_ns);
                dmra_obs::global_trace().record(dmra_obs::TraceEvent {
                    name: "sim.event",
                    index: epoch as u64,
                    fields: vec![
                        ("time", now),
                        ("arrivals", n_new as f64),
                        (
                            "admitted",
                            (state.outcome.admitted - admitted_before) as f64,
                        ),
                        ("in_service", state.heap.len() as f64),
                        ("occupancy", state.occupancy),
                        ("wall_ns", event_ns as f64),
                    ],
                });
            }
        }
        Ok(state.outcome)
    }

    /// Runs the simulation with the original **rebuild-from-scratch
    /// engine**: every epoch clones the deployment into a full
    /// [`ProblemInstance::residual`] build with an exhaustive candidate
    /// scan. Kept as the executable specification the incremental and
    /// event engines are tested bit-identical against, and as the
    /// benchmark baseline (`BENCH_dynamic.json`,
    /// `BENCH_dynamic_event.json`).
    ///
    /// # Errors
    ///
    /// Same as [`DynamicSimulator::run`].
    pub fn run_scratch(&self) -> Result<DynamicOutcome> {
        self.run_scratch_with_threads(Threads::Auto)
    }

    /// [`DynamicSimulator::run_scratch`] with an explicit thread knob for
    /// the per-epoch instance builds — the equality tests sweep this to
    /// show the incremental engine matches every thread count.
    ///
    /// # Errors
    ///
    /// Same as [`DynamicSimulator::run`].
    pub fn run_scratch_with_threads(&self, threads: Threads) -> Result<DynamicOutcome> {
        let cfg = &self.config;
        cfg.validate()?;
        let deployment = cfg
            .scenario
            .clone()
            .with_ues(0)
            .with_seed(cfg.seed)
            .build()?;
        let mut rng = component_rng(cfg.seed, "dynamic-arrivals");
        let mut state = EngineState::new(deployment.bss(), cfg.epochs);
        let obs_on = dmra_obs::enabled();
        let observer = self.observer.clone().or_else(dmra_obs::epoch_observer);
        let aux_counters = observer.as_ref().map(|_| AuxCounters::fetch());

        for epoch in 0..cfg.epochs {
            let epoch_started = obs_on.then(std::time::Instant::now);
            let admitted_before = state.outcome.admitted;
            let cloud_before = state.outcome.cloud_forwarded;
            let completed_before = state.outcome.completed;
            let aux_before = aux_counters.as_ref().map_or((0, 0, 0), AuxCounters::read);
            state.release_departures(epoch);
            let n_new = poisson(cfg.arrival_rate, &mut rng);
            state.outcome.arrivals += n_new as u64;
            let mut solve_ns = 0u64;
            let mut digest = 0u64;
            if n_new > 0 {
                let ues = self.draw_arrivals(n_new, &mut rng);
                let offsets: Vec<f64> = (0..n_new)
                    .map(|_| cfg.holding.sample(cfg.mean_holding, &mut rng))
                    .collect();
                let instance = deployment.residual_with(
                    &state.rem_cru,
                    &state.rem_rrb,
                    ues,
                    threads,
                    CandidateScan::Exhaustive,
                )?;
                let solve_started = obs_on.then(std::time::Instant::now);
                let allocation = self.allocator.allocate(&instance);
                solve_ns = record_solve_phase(obs_on, solve_started);
                debug_assert!(allocation.validate(&instance).is_ok());
                if observer.is_some() {
                    digest = allocation.digest();
                }
                state.commit_epoch(&instance, &allocation, &offsets, epoch);
            }
            state.finish_epoch();
            if let Some(obs) = &observer {
                let epoch_ns = epoch_started.map_or(0, |t| {
                    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                });
                let record = push_common_aux(
                    finished_epoch_record(
                        epoch,
                        n_new,
                        &state.outcome,
                        admitted_before,
                        cloud_before,
                        completed_before,
                        digest,
                    ),
                    epoch_ns,
                    solve_ns,
                    aux_counters.as_ref().expect("fetched alongside observer"),
                    aux_before,
                );
                obs.on_record(&record);
            }
        }
        Ok(state.outcome)
    }

    /// Draws one epoch's arrival batch from the scenario's workload
    /// distributions (dense fresh ids — each epoch instance is standalone).
    fn draw_arrivals(&self, n: usize, rng: &mut StdRng) -> Vec<UeSpec> {
        let cfg = &self.config.scenario;
        let (dlo, dhi) = cfg.cru_demand_range;
        let (rlo, rhi) = cfg.rate_demand_mbps;
        (0..n)
            .map(|u| {
                UeSpec::new(
                    UeId::new(u as u32),
                    SpId::new(rng.random_range(0..cfg.n_sps)),
                    dmra_types::Point::new(
                        rng.random_range(cfg.region.min.x..=cfg.region.max.x),
                        rng.random_range(cfg.region.min.y..=cfg.region.max.y),
                    ),
                    ServiceId::new(rng.random_range(0..cfg.n_services)),
                    Cru::new(rng.random_range(dlo..=dhi)),
                    BitsPerSec::from_mbps(rng.random_range(rlo..=rhi)),
                    cfg.ue_tx_power,
                )
            })
            .collect()
    }
}

/// The per-run mutable state shared by the two fixed-epoch engines:
/// remaining budgets, tasks in service, and the outcome accumulators.
/// Keeping the epoch bookkeeping in one place guarantees the engines
/// account identically — their only difference is how the epoch instance
/// is produced.
struct EngineState {
    rem_cru: Vec<Vec<Cru>>,
    rem_rrb: Vec<RrbCount>,
    total_rrb: f64,
    active: Vec<ActiveTask>,
    outcome: DynamicOutcome,
}

impl EngineState {
    fn new(bss: &[BsSpec], epochs: usize) -> Self {
        Self {
            rem_cru: bss.iter().map(|b| b.cru_budget.clone()).collect(),
            rem_rrb: bss.iter().map(|b| b.rrb_budget).collect(),
            total_rrb: bss.iter().map(|b| b.rrb_budget.as_f64()).sum(),
            active: Vec::new(),
            outcome: empty_outcome(epochs),
        }
    }

    /// Departures due at the start of an epoch release their resources.
    fn release_departures(&mut self, epoch: usize) {
        let now = epoch as f64;
        let before = self.active.len();
        let rem_cru = &mut self.rem_cru;
        let rem_rrb = &mut self.rem_rrb;
        self.active.retain(|t| {
            if t.departs_at <= now {
                rem_cru[t.bs.as_usize()][t.service.as_usize()] += t.cru;
                rem_rrb[t.bs.as_usize()] += t.rrbs;
                false
            } else {
                true
            }
        });
        self.outcome.completed += (before - self.active.len()) as u64;
    }

    /// Commits one epoch's admissions: deduct resources, register the
    /// departure times, and accumulate profit/admission counters.
    fn commit_epoch(
        &mut self,
        instance: &ProblemInstance,
        allocation: &Allocation,
        offsets: &[f64],
        epoch: usize,
    ) {
        self.outcome.total_profit += instance.total_profit(allocation);
        for (ue, bs) in allocation.edge_pairs() {
            let spec = &instance.ues()[ue.as_usize()];
            let link = instance.link(ue, bs).expect("candidate");
            self.rem_cru[bs.as_usize()][spec.service.as_usize()] -= spec.cru_demand;
            self.rem_rrb[bs.as_usize()] -= link.n_rrbs;
            self.active.push(ActiveTask {
                bs,
                service: spec.service,
                cru: spec.cru_demand,
                rrbs: link.n_rrbs,
                departs_at: epoch as f64 + offsets[ue.as_usize()],
            });
            self.outcome.admitted += 1;
        }
        self.outcome.cloud_forwarded += allocation.cloud_ues().count() as u64;
    }

    /// Records end-of-epoch occupancy and in-service counts.
    fn finish_epoch(&mut self) {
        let used: f64 = self.total_rrb - self.rem_rrb.iter().map(|r| r.as_f64()).sum::<f64>();
        self.outcome.rrb_occupancy.push(if self.total_rrb > 0.0 {
            used / self.total_rrb
        } else {
            0.0
        });
        self.outcome.in_service.push(self.active.len());
    }
}

fn empty_outcome(epochs: usize) -> DynamicOutcome {
    DynamicOutcome {
        arrivals: 0,
        admitted: 0,
        cloud_forwarded: 0,
        completed: 0,
        total_profit: Money::new(0.0),
        rrb_occupancy: Vec::with_capacity(epochs),
        in_service: Vec::with_capacity(epochs),
    }
}

/// A scheduled departure in the event engine's heap.
#[derive(Debug, Clone, Copy)]
struct Departure {
    /// Departure time in epochs (fractional under exponential holding).
    time: f64,
    bs: BsId,
    service: ServiceId,
    cru: Cru,
    rrbs: RrbCount,
}

// The heap orders departures by time only. Ties release in arbitrary
// order, which is sound: releases are commutative additions into the
// remaining-budget arrays, so the drained state never depends on it.
impl PartialEq for Departure {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal
    }
}

impl Eq for Departure {}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // departure on top.
        other.time.total_cmp(&self.time)
    }
}

/// Mutable state of the event-driven engine: the departure heap plus the
/// running occupancy counter that replaces the per-epoch re-summation.
struct EventState {
    rem_cru: Vec<Vec<Cru>>,
    rem_rrb: Vec<RrbCount>,
    total_rrb: f64,
    /// RRBs currently held across all BSs, updated at admissions and
    /// departures only. `used as f64 / total_rrb` is bit-identical to the
    /// epoch engines' `total − Σ remaining` because every quantity is an
    /// exact small integer in `f64`.
    used_rrb: u64,
    /// Cached `used_rrb / total_rrb`, refreshed only when `used_rrb`
    /// changes — idle epochs re-push this value untouched.
    occupancy: f64,
    heap: BinaryHeap<Departure>,
    outcome: DynamicOutcome,
}

impl EventState {
    fn new(bss: &[BsSpec], epochs: usize) -> Self {
        Self {
            rem_cru: bss.iter().map(|b| b.cru_budget.clone()).collect(),
            rem_rrb: bss.iter().map(|b| b.rrb_budget).collect(),
            total_rrb: bss.iter().map(|b| b.rrb_budget.as_f64()).sum(),
            used_rrb: 0,
            occupancy: 0.0,
            heap: BinaryHeap::new(),
            outcome: empty_outcome(epochs),
        }
    }

    /// Pops every departure due at or before `now` and releases its
    /// resources. Heap invariant: the top is always the earliest pending
    /// departure, so the drain stops at the first one still in service.
    fn release_due(&mut self, now: f64) {
        let mut changed = false;
        while let Some(top) = self.heap.peek() {
            if top.time > now {
                break;
            }
            let d = self.heap.pop().expect("peeked");
            self.rem_cru[d.bs.as_usize()][d.service.as_usize()] += d.cru;
            self.rem_rrb[d.bs.as_usize()] += d.rrbs;
            self.used_rrb -= u64::from(u32::from(d.rrbs));
            self.outcome.completed += 1;
            changed = true;
        }
        if changed {
            self.refresh_occupancy();
        }
    }

    /// Commits one arrival event's admissions: deduct resources, schedule
    /// the departures, accumulate profit/admission counters.
    fn commit_event(
        &mut self,
        instance: &ProblemInstance,
        allocation: &Allocation,
        offsets: &[f64],
        now: f64,
    ) {
        self.outcome.total_profit += instance.total_profit(allocation);
        let mut changed = false;
        for (ue, bs) in allocation.edge_pairs() {
            let spec = &instance.ues()[ue.as_usize()];
            let link = instance.link(ue, bs).expect("candidate");
            self.rem_cru[bs.as_usize()][spec.service.as_usize()] -= spec.cru_demand;
            self.rem_rrb[bs.as_usize()] -= link.n_rrbs;
            self.used_rrb += u64::from(u32::from(link.n_rrbs));
            self.heap.push(Departure {
                time: now + offsets[ue.as_usize()],
                bs,
                service: spec.service,
                cru: spec.cru_demand,
                rrbs: link.n_rrbs,
            });
            self.outcome.admitted += 1;
            changed = true;
        }
        self.outcome.cloud_forwarded += allocation.cloud_ues().count() as u64;
        if changed {
            self.refresh_occupancy();
        }
    }

    fn refresh_occupancy(&mut self) {
        self.occupancy = if self.total_rrb > 0.0 {
            self.used_rrb as f64 / self.total_rrb
        } else {
            0.0
        };
    }

    /// Records the end-of-epoch samples from the cached values — O(1),
    /// no scan over BSs or tasks.
    fn record_epoch(&mut self) {
        self.outcome.rrb_occupancy.push(self.occupancy);
        self.outcome.in_service.push(self.heap.len());
    }
}

/// The single-context engines' epoch context. Under the delta solve mode
/// the cross-epoch row cache is enabled so every epoch instance carries
/// the [`dmra_core::DeltaInfo`] churn metadata the delta solver replays
/// against; otherwise the plain context is returned. The cache never
/// changes a candidate row (the incremental tests pin bit-identity), so
/// outcomes are the same either way — only the solve path differs.
pub(crate) fn delta_aware_ctx(deployment: &ProblemInstance) -> DeploymentContext {
    let ctx = DeploymentContext::new(deployment);
    if solve_mode_default() == SolveMode::Delta {
        ctx.with_row_cache()
    } else {
        ctx
    }
}

/// Records the allocator-solve slice of an epoch into the `sim.solve_ns`
/// histogram, so the `figures -- bench` per-phase breakdown can separate
/// matching time from the rest of the epoch (instance assembly, commit,
/// departure bookkeeping), which `sim.epoch_ns` lumps together. Observe
/// only: called after the allocation exists, records nothing when
/// telemetry is off.
pub(crate) fn record_solve_phase(obs_on: bool, solve_started: Option<std::time::Instant>) -> u64 {
    if !obs_on {
        return 0;
    }
    static SOLVE_NS: dmra_obs::LazyHistogram = dmra_obs::LazyHistogram::new("sim.solve_ns");
    let solve_ns = solve_started.map_or(0, |t| {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    });
    SOLVE_NS.get().record(solve_ns);
    solve_ns
}

/// Handles to the global counters surfaced as per-epoch deltas in a
/// flight record's aux section (row-cache traffic, component counts).
/// Fetched once per run, and only when an observer is attached.
pub(crate) struct AuxCounters {
    hits: Arc<dmra_obs::Counter>,
    misses: Arc<dmra_obs::Counter>,
    components: Arc<dmra_obs::Counter>,
}

impl AuxCounters {
    pub(crate) fn fetch() -> Self {
        let g = dmra_obs::global();
        Self {
            hits: g.counter("online.row_cache_hits"),
            misses: g.counter("online.row_cache_misses"),
            components: g.counter("core.components"),
        }
    }

    /// Current cumulative `(hits, misses, components)` readings.
    pub(crate) fn read(&self) -> (u64, u64, u64) {
        (self.hits.get(), self.misses.get(), self.components.get())
    }
}

/// Per-epoch degradation telemetry of the protocol-backed engine,
/// appended to the aux section only (the det section stays byte-identical
/// to the other engines — that is the whole point of the recorder test).
/// All-zero for epochs with no arrivals, matching the digest convention.
#[derive(Debug, Default)]
struct ProtoEpochAux {
    rounds: u64,
    messages: u64,
    dropped: u64,
    absorbed: u64,
    conflicts: u64,
    oracle_profit_gap: f64,
    oracle_unserved_gap: f64,
}

impl ProtoEpochAux {
    fn push(&self, record: EpochRecord) -> EpochRecord {
        record
            .aux("proto_rounds", self.rounds)
            .aux("proto_messages", self.messages)
            .aux("proto_dropped", self.dropped)
            .aux("proto_absorbed", self.absorbed)
            .aux("proto_conflicts", self.conflicts)
            .aux("oracle_profit_gap", self.oracle_profit_gap)
            .aux("oracle_unserved_gap", self.oracle_unserved_gap)
    }
}

/// Appends the standard aux fields shared by the dynamic engines:
/// wall/solve timing plus per-epoch row-cache and component-count
/// deltas against the `before` reading.
pub(crate) fn push_common_aux(
    record: EpochRecord,
    wall_ns: u64,
    solve_ns: u64,
    counters: &AuxCounters,
    before: (u64, u64, u64),
) -> EpochRecord {
    let (hits, misses, components) = counters.read();
    record
        .aux("wall_ns", wall_ns)
        .aux("solve_ns", solve_ns)
        .aux("row_cache_hits", hits - before.0)
        .aux("row_cache_misses", misses - before.1)
        .aux("components", components - before.2)
}

/// Builds the engine-independent `det` section of a `"sim.epoch"`
/// flight record. Every dynamic engine goes through this one helper so
/// field order and content are byte-identical across engines — which
/// is exactly what `tests/recorder.rs` pins. `digest` is the epoch
/// allocation's [`Allocation::digest`] (0 for an epoch with no
/// arrivals, uniformly across engines).
#[allow(clippy::too_many_arguments)]
fn epoch_det_record(
    epoch: usize,
    arrivals: usize,
    admitted: u64,
    cloud: u64,
    departed: u64,
    in_service: usize,
    occupancy: f64,
    digest: u64,
) -> EpochRecord {
    EpochRecord::new("sim.epoch", epoch as u64)
        .det("arrivals", arrivals)
        .det("admitted", admitted)
        .det("cloud", cloud)
        .det("departed", departed)
        .det("in_service", in_service)
        .det("occupancy", occupancy)
        .det("digest", digest)
}

/// The det record for the epoch just finished, reading the end-of-epoch
/// occupancy / in-service samples off the outcome vectors (identical
/// accounting in every engine).
#[allow(clippy::too_many_arguments)]
fn finished_epoch_record(
    epoch: usize,
    arrivals: usize,
    outcome: &DynamicOutcome,
    admitted_before: u64,
    cloud_before: u64,
    completed_before: u64,
    digest: u64,
) -> EpochRecord {
    epoch_det_record(
        epoch,
        arrivals,
        outcome.admitted - admitted_before,
        outcome.cloud_forwarded - cloud_before,
        outcome.completed - completed_before,
        outcome.in_service.last().copied().unwrap_or(0),
        outcome.rrb_occupancy.last().copied().unwrap_or(0.0),
        digest,
    )
}

/// λ above which [`poisson`] switches from exact inversion to the normal
/// approximation. Well below the ~745 threshold where `exp(-λ)`
/// underflows to zero.
const POISSON_NORMAL_CUTOFF: f64 = 64.0;

/// Deterministic Poisson sample, split by rate:
///
/// * `λ ≤ 64` — inversion by sequential CDF search: **one** uniform draw,
///   exact distribution, O(λ) additions.
/// * `λ > 64` — normal approximation with continuity correction,
///   `k = ⌊λ + √λ·z + ½⌋` clamped at zero, with `z` from a Box–Muller
///   transform (two uniform draws). At this scale the approximation
///   error is negligible against simulation noise.
///
/// This replaces Knuth's product-of-uniforms method, which drew `k + 1`
/// uniforms per sample (O(λ) RNG calls) and broke down entirely for
/// λ ≳ 745: `exp(-λ)` underflows to `0.0`, the product can never reach
/// it, and the guard returned a constant ≈ 1074 regardless of λ.
fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> usize {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda <= POISSON_NORMAL_CUTOFF {
        let u = rng.random_range(0.0..1.0);
        poisson_inversion(lambda, u)
    } else {
        // `1 - u` maps [0, 1) onto (0, 1] so the logarithm stays finite.
        let u1 = 1.0 - rng.random_range(0.0..1.0);
        let u2 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let k = lambda + lambda.sqrt() * z + 0.5;
        if k < 0.0 {
            0
        } else {
            k as usize
        }
    }
}

/// CDF inversion for `0 < λ ≤ 64` with the uniform already drawn — split
/// out so the tail guard is testable with an adversarial `u` no real
/// generator can produce.
fn poisson_inversion(lambda: f64, u: f64) -> usize {
    let mut k = 0usize;
    let mut p = (-lambda).exp(); // P[X = 0]; strictly positive here
    let mut cdf = p;
    while u > cdf {
        k += 1;
        p *= lambda / k as f64;
        cdf += p;
        // Deep in the tail `p` underflows and the CDF stops moving;
        // the cap (≫ 30σ out) guards against an infinite loop.
        if k as f64 > 100.0 * lambda + 100.0 {
            record_sampler_truncation("poisson CDF tail guard");
            break;
        }
    }
    k
}

/// Geometric holding time with the given mean (in epochs, ≥ 0 extra
/// epochs beyond the first). `mean` must already satisfy the validated
/// `≥ 1` contract — the old silent `mean.max(1.0)` clamp is gone.
fn geometric<R: Rng>(mean: f64, rng: &mut R) -> usize {
    debug_assert!(mean >= 1.0, "mean_holding must be validated to >= 1");
    let p = 1.0 / mean;
    let mut k = 0usize;
    while rng.random_range(0.0..1.0) > p {
        k += 1;
        if k > 10_000 {
            record_sampler_truncation("geometric holding cap");
            break;
        }
    }
    k
}

/// The "no silent caps" signal: both sampler caps are unreachable under
/// the validated configuration space at realistic scales, and if one ever
/// fires the drawn distribution has been clipped — so say so, through the
/// `sim.sampler_truncations` counter and a warning.
#[cold]
fn record_sampler_truncation(which: &str) {
    if dmra_obs::enabled() {
        static TRUNCATIONS: dmra_obs::LazyCounter =
            dmra_obs::LazyCounter::new("sim.sampler_truncations");
        TRUNCATIONS.get().inc();
    }
    obs_warn!("sampler draw truncated: {which}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config(rate: f64, seed: u64) -> DynamicConfig {
        DynamicConfig {
            scenario: ScenarioConfig::paper_defaults(),
            arrival_rate: rate,
            mean_holding: 4.0,
            holding: HoldingDistribution::Geometric,
            epochs: 40,
            seed,
        }
    }

    #[test]
    fn conservation_of_tasks() {
        let out = DynamicSimulator::new(base_config(15.0, 1)).run().unwrap();
        assert_eq!(out.arrivals, out.admitted + out.cloud_forwarded);
        // Whatever is neither completed nor in service at the end was
        // forwarded to the cloud.
        let in_service_end = *out.in_service.last().unwrap() as u64;
        assert_eq!(out.admitted, out.completed + in_service_end);
    }

    #[test]
    fn run_is_deterministic() {
        let a = DynamicSimulator::new(base_config(10.0, 7)).run().unwrap();
        let b = DynamicSimulator::new(base_config(10.0, 7)).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn light_load_admits_nearly_everything() {
        let out = DynamicSimulator::new(base_config(5.0, 3)).run().unwrap();
        // At ~5 arrivals/epoch × 4-epoch holding ≈ 20 concurrent tasks on
        // 25 BSs, only coverage gaps cause cloud forwards.
        assert!(
            out.admission_ratio() > 0.9,
            "admission ratio {}",
            out.admission_ratio()
        );
    }

    #[test]
    fn heavier_load_increases_blocking_and_occupancy() {
        // Offered load: rate × mean holding (≈ 4 epochs). Capacity is
        // ≈ 880 concurrent tasks, so 10/epoch is uncongested and
        // 400/epoch (≈ 1600 concurrent offered) saturates the network.
        let light = DynamicSimulator::new(base_config(10.0, 11)).run().unwrap();
        let heavy = DynamicSimulator::new(base_config(400.0, 11)).run().unwrap();
        assert!(heavy.admission_ratio() < light.admission_ratio());
        assert!(heavy.steady_state_occupancy() > light.steady_state_occupancy());
        assert!(heavy.steady_state_occupancy() <= 1.0 + 1e-9);
    }

    #[test]
    fn occupancy_returns_to_zero_after_drain() {
        // Arrivals only in the first epochs (rate 0 later is not
        // expressible with a single rate, so use a short horizon and
        // verify monotone drain by construction: run long with tiny rate).
        let cfg = DynamicConfig {
            scenario: ScenarioConfig::paper_defaults(),
            arrival_rate: 0.0,
            mean_holding: 2.0,
            holding: HoldingDistribution::Geometric,
            epochs: 10,
            seed: 5,
        };
        let out = DynamicSimulator::new(cfg).run().unwrap();
        assert_eq!(out.arrivals, 0);
        assert!(out.rrb_occupancy.iter().all(|&o| o == 0.0));
    }

    #[test]
    fn identical_arrival_traces_across_allocators() {
        // The workload stream must not depend on the allocator: arrivals
        // and totals line up between a DMRA run and a CloudOnly run.
        let dmra_run = DynamicSimulator::new(base_config(15.0, 21)).run().unwrap();
        let cloud_run = DynamicSimulator::with_allocator(
            base_config(15.0, 21),
            Box::new(dmra_baselines::CloudOnly::default()),
        )
        .run()
        .unwrap();
        assert_eq!(dmra_run.arrivals, cloud_run.arrivals);
        assert_eq!(cloud_run.admitted, 0);
        assert_eq!(cloud_run.cloud_forwarded, cloud_run.arrivals);
    }

    #[test]
    fn dmra_admits_at_least_as_much_profit_as_nonco_online() {
        let dmra_run = DynamicSimulator::new(base_config(60.0, 22)).run().unwrap();
        let nonco_run = DynamicSimulator::with_allocator(
            base_config(60.0, 22),
            Box::new(dmra_baselines::NonCo::default()),
        )
        .run()
        .unwrap();
        assert_eq!(dmra_run.arrivals, nonco_run.arrivals);
        assert!(
            dmra_run.total_profit.get() > nonco_run.total_profit.get(),
            "dmra {} vs nonco {}",
            dmra_run.total_profit,
            nonco_run.total_profit
        );
    }

    #[test]
    fn profit_accumulates_with_admissions() {
        let out = DynamicSimulator::new(base_config(20.0, 9)).run().unwrap();
        assert!(out.admitted > 0);
        assert!(out.total_profit.get() > 0.0);
    }

    #[test]
    fn incremental_and_scratch_engines_agree() {
        // Full-outcome equality between the incremental engine and the
        // rebuild-from-scratch specification (the workspace-root
        // `incremental` tests sweep allocators, seeds and thread counts).
        let sim = DynamicSimulator::new(base_config(25.0, 2));
        assert_eq!(sim.run().unwrap(), sim.run_scratch().unwrap());
    }

    #[test]
    fn sharded_engine_agrees_with_incremental() {
        // The workspace-root `sharding` tests sweep shard counts ×
        // allocators × seeds; this is the in-crate smoke version.
        let sim = DynamicSimulator::new(base_config(25.0, 2));
        let unsharded = sim.run().unwrap();
        for shards in [1usize, 2, 4] {
            assert_eq!(
                sim.run_sharded_n(shards).unwrap(),
                unsharded,
                "{shards} shards diverged"
            );
        }
    }

    #[test]
    fn sharded_engine_rejects_load_proportional_interference() {
        let mut cfg = base_config(10.0, 1);
        cfg.scenario.radio.interference =
            dmra_radio::InterferenceModel::LoadProportional { factor: 0.1 };
        let err = DynamicSimulator::new(cfg).run_sharded(2, 2).unwrap_err();
        assert!(
            matches!(&err, Error::InvalidConfig(m) if m.contains("interference")),
            "unexpected error {err}"
        );
    }

    #[test]
    fn proto_engine_matches_incremental_under_reliable_delivery() {
        // The message-passing protocol, run per epoch against residual
        // budgets, is bit-identical to the in-memory matcher when nothing
        // is lost, delayed or crashed.
        for seed in [2u64, 7, 13] {
            let sim = DynamicSimulator::new(base_config(25.0, seed));
            assert_eq!(
                sim.run_proto(&ProtoFaults::default()).unwrap(),
                sim.run().unwrap(),
                "seed {seed} diverged"
            );
        }
    }

    #[test]
    fn proto_engine_with_faults_conserves_tasks() {
        let sim = DynamicSimulator::new(base_config(20.0, 5));
        let out = sim
            .run_proto(&ProtoFaults {
                drop_prob: 0.2,
                delay: ProtoDelay::Random(2),
                crashes: vec![(BsId::new(3), 10)],
                max_rounds: 0,
            })
            .unwrap();
        assert_eq!(out.arrivals, out.admitted + out.cloud_forwarded);
        let in_service_end = *out.in_service.last().unwrap() as u64;
        assert_eq!(out.admitted, out.completed + in_service_end);
        assert!(out
            .rrb_occupancy
            .iter()
            .all(|&o| (0.0..=1.0 + 1e-9).contains(&o)));
    }

    #[test]
    fn proto_engine_all_bss_crashed_forwards_everything_to_cloud() {
        let n_bss = ScenarioConfig::paper_defaults().n_bss();
        let sim = DynamicSimulator::new(base_config(10.0, 9));
        let out = sim
            .run_proto(&ProtoFaults {
                crashes: (0..n_bss).map(|i| (BsId::new(i), 0)).collect(),
                ..ProtoFaults::default()
            })
            .unwrap();
        assert!(out.arrivals > 0);
        assert_eq!(out.admitted, 0, "dead control plane admitted tasks");
        assert_eq!(out.cloud_forwarded, out.arrivals);
    }

    #[test]
    fn proto_engine_rejects_bad_fault_specs() {
        let sim = DynamicSimulator::new(base_config(10.0, 1));
        let err = sim
            .run_proto(&ProtoFaults {
                drop_prob: 1.0,
                ..ProtoFaults::default()
            })
            .unwrap_err();
        assert!(
            matches!(&err, Error::InvalidConfig(m) if m.contains("drop probability")),
            "unexpected error {err}"
        );
        let err = sim
            .run_proto(&ProtoFaults {
                crashes: vec![(BsId::new(9999), 0)],
                ..ProtoFaults::default()
            })
            .unwrap_err();
        assert!(
            matches!(&err, Error::InvalidConfig(m) if m.contains("unknown")),
            "unexpected error {err}"
        );
    }

    #[test]
    fn proto_delay_parses_and_displays() {
        for (raw, want) in [
            ("immediate", ProtoDelay::Immediate),
            ("none", ProtoDelay::Immediate),
            ("fixed:3", ProtoDelay::Fixed(3)),
            ("random:5", ProtoDelay::Random(5)),
        ] {
            assert_eq!(raw.parse::<ProtoDelay>().unwrap(), want);
        }
        for bad in ["", "fixed", "fixed:", "fixed:-1", "random:x", "gamma:2"] {
            let err = bad.parse::<ProtoDelay>().unwrap_err();
            assert!(err.to_string().contains("invalid delay spec"), "{bad}");
        }
        assert_eq!(ProtoDelay::Fixed(2).to_string(), "fixed:2");
        assert_eq!(ProtoDelay::Random(4).to_string(), "random:4");
        assert_eq!(ProtoDelay::Immediate.to_string(), "immediate");
    }

    #[test]
    fn epoch_fault_seeds_differ_across_epochs_and_seeds() {
        let mut seen = std::collections::HashSet::new();
        for run_seed in [1u64, 2, 3] {
            for epoch in 0..100usize {
                assert!(
                    seen.insert(epoch_fault_seed(run_seed, epoch)),
                    "collision at run_seed {run_seed} epoch {epoch}"
                );
            }
        }
    }

    #[test]
    fn event_engine_agrees_with_both_epoch_engines() {
        // The workspace-root `event_engine` tests sweep the full grid;
        // this is the in-crate smoke version.
        let sim = DynamicSimulator::new(base_config(25.0, 2));
        let event = sim.run_event().unwrap();
        assert_eq!(event, sim.run().unwrap());
        assert_eq!(event, sim.run_scratch().unwrap());
    }

    #[test]
    fn event_engine_matches_for_every_holding_distribution() {
        for dist in [
            HoldingDistribution::Geometric,
            HoldingDistribution::Deterministic,
            HoldingDistribution::Exponential,
        ] {
            let mut cfg = base_config(30.0, 17);
            cfg.holding = dist;
            let sim = DynamicSimulator::new(cfg);
            assert_eq!(
                sim.run_event().unwrap(),
                sim.run().unwrap(),
                "{dist} holding diverged between event and incremental engines"
            );
        }
    }

    #[test]
    fn event_engine_zero_rate_never_builds_an_instance() {
        let mut cfg = base_config(0.0, 5);
        cfg.epochs = 1000;
        let out = DynamicSimulator::new(cfg).run_event().unwrap();
        assert_eq!(out.arrivals, 0);
        assert_eq!(out.rrb_occupancy.len(), 1000);
        assert!(out.rrb_occupancy.iter().all(|&o| o == 0.0));
    }

    #[test]
    fn invalid_configs_are_rejected_by_every_engine() {
        let bad_rates = [f64::NAN, f64::INFINITY, -1.0];
        for rate in bad_rates {
            let cfg = base_config(rate, 1);
            let sim = DynamicSimulator::new(cfg);
            for out in [sim.run(), sim.run_event(), sim.run_scratch()] {
                let err = out.unwrap_err();
                assert!(
                    matches!(&err, Error::InvalidConfig(m) if m.contains("arrival_rate")),
                    "rate {rate}: unexpected error {err}"
                );
            }
        }
        for mean in [f64::NAN, 0.5, 0.0, -3.0] {
            let mut cfg = base_config(10.0, 1);
            cfg.mean_holding = mean;
            let sim = DynamicSimulator::new(cfg);
            for out in [sim.run(), sim.run_event(), sim.run_scratch()] {
                let err = out.unwrap_err();
                assert!(
                    matches!(&err, Error::InvalidConfig(m) if m.contains("mean_holding")),
                    "mean {mean}: unexpected error {err}"
                );
            }
        }
    }

    #[test]
    fn holding_distribution_parses_and_displays() {
        for (raw, want) in [
            ("geometric", HoldingDistribution::Geometric),
            ("geo", HoldingDistribution::Geometric),
            ("det", HoldingDistribution::Deterministic),
            ("deterministic", HoldingDistribution::Deterministic),
            ("fixed", HoldingDistribution::Deterministic),
            ("exp", HoldingDistribution::Exponential),
            ("exponential", HoldingDistribution::Exponential),
        ] {
            assert_eq!(raw.parse::<HoldingDistribution>().unwrap(), want);
        }
        let err = "weibull".parse::<HoldingDistribution>().unwrap_err();
        assert!(err.to_string().contains("weibull"));
        assert_eq!(HoldingDistribution::Exponential.to_string(), "exponential");
    }

    #[test]
    fn holding_samples_match_their_moments() {
        // n = 100k draws per variant; check mean and variance against the
        // analytic values. Durations: geometric 1 + Geom0(1/m) has mean m
        // and variance m(m−1); deterministic is constant round(m);
        // exponential has mean m and variance m².
        let n = 100_000usize;
        let draw = |dist: HoldingDistribution, mean: f64| -> Vec<f64> {
            let mut rng = component_rng(99, "holding-dist");
            (0..n).map(|_| dist.sample(mean, &mut rng)).collect()
        };
        let moments = |xs: &[f64]| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var =
                xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
            (mean, var)
        };

        let (m, v) = moments(&draw(HoldingDistribution::Geometric, 6.0));
        // σ of the sample mean: √(30/100k) ≈ 0.017; allow 6σ.
        assert!((m - 6.0).abs() < 0.11, "geometric mean {m}");
        assert!((v / 30.0 - 1.0).abs() < 0.1, "geometric variance {v}");

        let samples = draw(HoldingDistribution::Deterministic, 4.0);
        assert!(samples.iter().all(|&d| d == 4.0), "deterministic varies");
        // Non-integer means round to the nearest whole number of epochs.
        assert_eq!(
            HoldingDistribution::Deterministic.sample(4.4, &mut component_rng(1, "det-round")),
            4.0
        );

        let (m, v) = moments(&draw(HoldingDistribution::Exponential, 5.0));
        assert!((m - 5.0).abs() < 0.1, "exponential mean {m}");
        assert!((v / 25.0 - 1.0).abs() < 0.1, "exponential variance {v}");
    }

    #[test]
    fn holding_samples_are_deterministic_per_seed() {
        for dist in [
            HoldingDistribution::Geometric,
            HoldingDistribution::Deterministic,
            HoldingDistribution::Exponential,
        ] {
            let draw = |seed: u64| -> Vec<f64> {
                let mut rng = component_rng(seed, "holding-det");
                (0..1000).map(|_| dist.sample(5.0, &mut rng)).collect()
            };
            assert_eq!(draw(7), draw(7), "{dist} not reproducible");
            if dist != HoldingDistribution::Deterministic {
                assert_ne!(draw(7), draw(8), "{dist} ignores the seed");
            }
        }
    }

    #[test]
    fn poisson_is_deterministic() {
        for &lambda in &[0.7, 12.0, 64.0, 300.0, 900.0] {
            let mut a = component_rng(17, "poisson-det");
            let mut b = component_rng(17, "poisson-det");
            for _ in 0..32 {
                assert_eq!(poisson(lambda, &mut a), poisson(lambda, &mut b));
            }
        }
    }

    #[test]
    fn poisson_zero_rate_draws_nothing() {
        let mut rng = component_rng(1, "poisson-zero");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_mean_and_variance_are_sane_on_both_sides_of_the_cutoff() {
        // λ = 12 and 40 exercise the exact inversion sampler, 150 and 900
        // the normal approximation (the old Knuth sampler already failed
        // at 900: exp(-900) == 0.0).
        for &lambda in &[12.0, 40.0, 150.0, 900.0] {
            let mut rng = component_rng(23, "poisson-dist");
            let n = 3000usize;
            let draws: Vec<f64> = (0..n).map(|_| poisson(lambda, &mut rng) as f64).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
            // Mean of n draws has σ = √(λ/n); allow 6σ.
            let tol = 6.0 * (lambda / n as f64).sqrt();
            assert!(
                (mean - lambda).abs() < tol,
                "λ = {lambda}: mean {mean} (tolerance {tol})"
            );
            // A Poisson's variance equals its mean.
            assert!(
                (0.75..=1.25).contains(&(var / lambda)),
                "λ = {lambda}: variance {var}"
            );
        }
    }

    #[test]
    fn poisson_is_continuous_across_the_normal_cutoff() {
        // λ = 63 inverts the CDF, λ = 65 uses the normal approximation;
        // both branch means must track λ so the switch at 64 introduces
        // no step in the arrival process. 6σ of a 100k-draw mean is
        // ≈ 0.15; the approximation's own bias is far smaller.
        for &lambda in &[63.0, 65.0] {
            let mut rng = component_rng(29, "poisson-cutoff");
            let n = 100_000usize;
            let mean = (0..n)
                .map(|_| poisson(lambda, &mut rng) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < 0.2,
                "λ = {lambda}: mean {mean} drifted across the cutoff"
            );
        }
    }

    #[test]
    fn poisson_handles_huge_rates_without_garbage() {
        // The old sampler returned ≈ 1074 for *every* λ ≳ 745; the fixed
        // one must track the mean at any scale.
        let mut rng = component_rng(31, "poisson-huge");
        let lambda = 50_000.0;
        for _ in 0..64 {
            let k = poisson(lambda, &mut rng) as f64;
            assert!(
                (k - lambda).abs() < 10.0 * lambda.sqrt(),
                "draw {k} too far from λ = {lambda}"
            );
        }
    }

    #[test]
    fn sampler_truncations_are_counted_not_silent() {
        // Both caps increment `sim.sampler_truncations` when they fire.
        dmra_obs::set_enabled(true);
        let counter = dmra_obs::global().counter("sim.sampler_truncations");
        let before = counter.get();

        // The geometric cap: a mean so large that survival past 10 000
        // epochs is near-certain (p = 1e-12 per epoch).
        let mut rng = component_rng(3, "trunc-geo");
        let k = geometric(1e12, &mut rng);
        assert_eq!(k, 10_001, "cap should clip the draw at 10 001");
        assert!(counter.get() > before, "geometric cap fired silently");

        // The Poisson tail guard: an adversarial u beyond any achievable
        // CDF models the pathological stall the guard defends against
        // (no 53-bit uniform can reach it, so we inject it directly).
        let mid = counter.get();
        let k = poisson_inversion(8.0, 1.5);
        assert!(k as f64 > 100.0 * 8.0, "guard should run out the cap");
        assert!(counter.get() > mid, "poisson tail guard fired silently");
        dmra_obs::set_enabled(false);
    }
}
