//! Parameter sweeps with seed replication, and the tables they produce.

use crate::config::ScenarioConfig;
use crate::metrics::Metrics;
use dmra_core::{Allocation, Allocator, ProblemInstance};
use dmra_par::{par_map_indexed, Threads};
use dmra_types::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean and spread of a set of replicated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (zero for a single sample).
    pub std_dev: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stat {
    /// Computes mean and sample standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std_dev = if n > 1 {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            var.sqrt()
        } else {
            0.0
        };
        Self { mean, std_dev, n }
    }
}

impl fmt::Display for Stat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std_dev)
    }
}

/// One row of a sweep table: the x value and one [`Stat`] per series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// The sweep parameter value (number of UEs, ρ, …).
    pub x: f64,
    /// One aggregated measurement per series, in series order.
    pub values: Vec<Stat>,
}

/// A figure's data: a titled table with one series per algorithm/metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Title, e.g. `"Fig. 2: total profit vs #UEs (ι = 2, regular)"`.
    pub title: String,
    /// Label of the x column.
    pub x_label: String,
    /// Label of each series (column), e.g. `["DMRA", "DCSP", "NonCo"]`.
    pub series_labels: Vec<String>,
    /// Rows in ascending x order.
    pub rows: Vec<TableRow>,
}

impl Table {
    /// The `(x, mean)` points of one series, by label.
    #[must_use]
    pub fn series(&self, label: &str) -> Option<Vec<(f64, f64)>> {
        let idx = self.series_labels.iter().position(|l| l == label)?;
        Some(
            self.rows
                .iter()
                .map(|r| (r.x, r.values[idx].mean))
                .collect(),
        )
    }

    /// Renders a GitHub-flavoured markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |", self.x_label));
        for label in &self.series_labels {
            out.push_str(&format!(" {label} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series_labels {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("| {} |", trim_float(row.x)));
            for v in &row.values {
                out.push_str(&format!(" {v} |"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV with `mean` and `std` columns per series.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(&self.x_label.replace(' ', "_"));
        for label in &self.series_labels {
            let slug = label.replace(' ', "_");
            out.push_str(&format!(",{slug}_mean,{slug}_std"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&trim_float(row.x));
            for v in &row.values {
                out.push_str(&format!(",{},{}", v.mean, v.std_dev));
            }
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Renders a self-contained gnuplot script that plots every series
    /// with error bars from the matching CSV file (written next to the
    /// script by the `figures` binary).
    #[must_use]
    pub fn to_gnuplot(&self, csv_filename: &str) -> String {
        let mut out = String::new();
        out.push_str("set datafile separator ','\n");
        out.push_str(&format!("set title \"{}\"\n", self.title.replace('"', "'")));
        out.push_str(&format!("set xlabel \"{}\"\n", self.x_label));
        out.push_str("set key left top\nset grid\n");
        out.push_str("plot ");
        let parts: Vec<String> = self
            .series_labels
            .iter()
            .enumerate()
            .map(|(i, label)| {
                // Column 1 is x; each series contributes (mean, std).
                let mean_col = 2 + 2 * i;
                let std_col = mean_col + 1;
                format!(
                    "'{csv_filename}' skip 1 using 1:{mean_col}:{std_col} \
                     with yerrorlines title \"{label}\""
                )
            })
            .collect();
        out.push_str(&parts.join(", \\\n     "));
        out.push('\n');
        out
    }

    /// Renders each series as a unicode sparkline (mean values scaled to
    /// the series' own min–max), for at-a-glance terminal output.
    #[must_use]
    pub fn to_sparklines(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let mut out = String::new();
        let width = self
            .series_labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(0);
        for (i, label) in self.series_labels.iter().enumerate() {
            let values: Vec<f64> = self.rows.iter().map(|r| r.values[i].mean).collect();
            let (lo, hi) = values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let spark: String = values
                .iter()
                .map(|&v| {
                    if hi <= lo {
                        BARS[0]
                    } else {
                        let t = (v - lo) / (hi - lo);
                        BARS[((t * 7.0).round() as usize).min(7)]
                    }
                })
                .collect();
            out.push_str(&format!("{label:<width$}  {spark}  [{lo:.1} .. {hi:.1}]\n"));
        }
        out
    }
}

/// A stable fingerprint of the current worker thread, used to attribute
/// sweep cells to workers after the join (the rank assignment happens
/// serially, so only the raw identity crosses the fan-out boundary).
fn worker_fingerprint() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    hasher.finish()
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

/// Runs algorithm sweeps with seed replication.
///
/// Every algorithm sees the *same* instances (paired comparison), and each
/// replication uses an independent derived seed, so tables are
/// reproducible and differences between series are not placement noise.
///
/// The (point, replication) grid is fanned out over worker threads (see
/// [`Threads`]); because every cell derives its own seed and writes only
/// its own slot, the resulting [`Table`] is bit-identical to a serial run
/// for any thread count — the workspace `parallelism` tests assert `==`
/// on whole tables across thread counts.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    /// Instances drawn per sweep point (mean/std aggregate over these).
    pub replications: u32,
    /// Base seed; replication `r` of point `p` uses `base_seed` mixed with
    /// `(p, r)`.
    pub base_seed: u64,
    /// Worker threads for the (point, replication) grid. Defaults to
    /// [`Threads::Auto`] (the `DMRA_THREADS` environment variable, then
    /// the machine's parallelism); purely a throughput knob — results do
    /// not depend on it.
    pub threads: Threads,
}

impl SweepRunner {
    /// A runner with the given replication count and base seed.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    #[must_use]
    pub fn new(replications: u32, base_seed: u64) -> Self {
        assert!(replications > 0, "need at least one replication");
        Self {
            replications,
            base_seed,
            threads: Threads::Auto,
        }
    }

    /// Returns a copy with a different thread-count knob.
    #[must_use]
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Runs `algorithms` over `points` and aggregates
    /// `metric(instance, allocation)` per (point, algorithm).
    ///
    /// `points` pairs each x value with the scenario to draw (the seed
    /// field of the supplied config is overridden per replication).
    ///
    /// # Errors
    ///
    /// Propagates scenario build errors (the error of the first failing
    /// grid cell in (point, replication) order, as in a serial run).
    pub fn run<F>(
        &self,
        title: impl Into<String>,
        x_label: impl Into<String>,
        points: &[(f64, ScenarioConfig)],
        algorithms: &[&dyn Allocator],
        metric: F,
    ) -> Result<Table>
    where
        F: Fn(&ProblemInstance, &Allocation) -> f64 + Sync,
    {
        let reps = self.replications as usize;
        // Observe-only telemetry: each cell carries its wall time and a
        // worker fingerprint out of the fan-out; everything is recorded
        // serially after the join, so workers never contend on a registry
        // and the Table stays bit-identical for any thread count.
        let obs_on = dmra_obs::enabled();
        // One grid cell per (point, replication): build the instance from
        // its independently derived seed and measure every algorithm on
        // it. Cells share nothing mutable, so the fan-out is order-free.
        let cells: Vec<(Result<Vec<f64>>, u64, u64)> =
            par_map_indexed(self.threads, points.len() * reps, |g| {
                let cell_started = obs_on.then(std::time::Instant::now);
                let p_idx = g / reps;
                let r = g % reps;
                let values = (|| {
                    let seed = dmra_geo::rng::sub_seed(
                        self.base_seed,
                        &format!("sweep-point-{p_idx}-rep-{r}"),
                    );
                    let instance = points[p_idx].1.clone().with_seed(seed).build()?;
                    Ok(algorithms
                        .iter()
                        .map(|algo| {
                            let allocation = algo.allocate(&instance);
                            debug_assert!(allocation.validate(&instance).is_ok());
                            metric(&instance, &allocation)
                        })
                        .collect())
                })();
                let cell_ns = cell_started.map_or(0, |t| {
                    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                });
                let worker = if obs_on { worker_fingerprint() } else { 0 };
                (values, cell_ns, worker)
            });

        if obs_on {
            let reg = dmra_obs::global();
            let cell_hist = reg.histogram("sweep.cell_ns");
            let mut workers: Vec<u64> = Vec::new();
            for (g, (_, cell_ns, worker)) in cells.iter().enumerate() {
                cell_hist.record(*cell_ns);
                // Dense worker rank by first appearance in grid order.
                let rank = workers.iter().position(|w| w == worker).unwrap_or_else(|| {
                    workers.push(*worker);
                    workers.len() - 1
                });
                reg.counter(&format!("sweep.worker.{rank}.cells")).inc();
                dmra_obs::global_trace().record(dmra_obs::TraceEvent {
                    name: "sweep.cell",
                    index: g as u64,
                    fields: vec![
                        ("point", (g / reps) as f64),
                        ("rep", (g % reps) as f64),
                        ("worker", rank as f64),
                        ("wall_ns", *cell_ns as f64),
                    ],
                });
            }
            reg.counter("sweep.cells").add(cells.len() as u64);
            reg.counter("sweep.points").add(points.len() as u64);
            reg.gauge("sweep.workers_used")
                .set_max(workers.len() as u64);
        }

        // Flight-record stream: one `"sweep.cell"` record per grid cell,
        // emitted serially after the join in grid order, so the recorded
        // det projection (point, rep, metric values) is byte-identical
        // for any thread count. Worker attribution and wall time ride in
        // the aux section.
        if let Some(observer) = dmra_obs::epoch_observer() {
            for (g, (values, cell_ns, worker)) in cells.iter().enumerate() {
                let record = dmra_obs::EpochRecord::new("sweep.cell", g as u64)
                    .det("point", (g / reps) as u64)
                    .det("rep", (g % reps) as u64)
                    .det("values", values.clone().unwrap_or_default())
                    .aux("wall_ns", *cell_ns)
                    .aux("worker", *worker);
                observer.on_record(&record);
            }
        }

        let mut cells = cells.into_iter().map(|(values, _, _)| values);
        let mut rows = Vec::with_capacity(points.len());
        for (x, _) in points {
            let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); algorithms.len()];
            for _ in 0..reps {
                let values = cells.next().expect("one cell per (point, rep)")?;
                for (a_idx, value) in values.into_iter().enumerate() {
                    samples[a_idx].push(value);
                }
            }
            rows.push(TableRow {
                x: *x,
                values: samples.iter().map(|s| Stat::from_samples(s)).collect(),
            });
        }
        Ok(Table {
            title: title.into(),
            x_label: x_label.into(),
            series_labels: algorithms.iter().map(|a| a.name().to_owned()).collect(),
            rows,
        })
    }

    /// Convenience: sweep with total SP profit as the metric (Figs. 2–6).
    ///
    /// # Errors
    ///
    /// Propagates scenario build errors.
    pub fn run_profit(
        &self,
        title: impl Into<String>,
        x_label: impl Into<String>,
        points: &[(f64, ScenarioConfig)],
        algorithms: &[&dyn Allocator],
    ) -> Result<Table> {
        self.run(title, x_label, points, algorithms, |inst, alloc| {
            Metrics::compute(inst, alloc).total_profit.get()
        })
    }

    /// Convenience: sweep with forwarded traffic load as the metric
    /// (Fig. 7).
    ///
    /// # Errors
    ///
    /// Propagates scenario build errors.
    pub fn run_forwarded_load(
        &self,
        title: impl Into<String>,
        x_label: impl Into<String>,
        points: &[(f64, ScenarioConfig)],
        algorithms: &[&dyn Allocator],
    ) -> Result<Table> {
        self.run(title, x_label, points, algorithms, |inst, alloc| {
            Metrics::compute(inst, alloc).forwarded_load_mbps
        })
    }
}

impl Default for SweepRunner {
    /// Five replications, base seed 42 — the setting the committed
    /// EXPERIMENTS.md numbers use.
    fn default() -> Self {
        Self::new(5, 42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmra_baselines::CloudOnly;
    use dmra_core::Dmra;

    #[test]
    fn stat_mean_and_std() {
        let s = Stat::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
        let single = Stat::from_samples(&[5.0]);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn single_sample_std_dev_is_zero_not_nan() {
        // n = 1 would divide by n - 1 = 0 in the sample-variance formula;
        // the guard must yield an exact 0.0, never NaN, so single-
        // replication sweeps render and serialize cleanly.
        let s = Stat::from_samples(&[123.456]);
        assert_eq!(s.mean, 123.456);
        assert_eq!(s.std_dev, 0.0);
        assert!(!s.std_dev.is_nan());
        assert_eq!(s.n, 1);
        assert_eq!(s.to_string(), "123.46 ± 0.00");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = Stat::from_samples(&[]);
    }

    fn tiny_points() -> Vec<(f64, ScenarioConfig)> {
        [30usize, 60]
            .iter()
            .map(|&n| (n as f64, ScenarioConfig::paper_defaults().with_ues(n)))
            .collect()
    }

    #[test]
    fn sweep_produces_one_row_per_point() {
        let runner = SweepRunner::new(2, 7);
        let dmra = Dmra::default();
        let cloud = CloudOnly::default();
        let algos: Vec<&dyn Allocator> = vec![&dmra, &cloud];
        let table = runner
            .run_profit("test", "#UEs", &tiny_points(), &algos)
            .unwrap();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.series_labels, vec!["DMRA", "CloudOnly"]);
        // CloudOnly earns exactly zero in every cell.
        for row in &table.rows {
            assert_eq!(row.values[1].mean, 0.0);
            assert!(row.values[0].mean > 0.0);
        }
    }

    #[test]
    fn sweep_is_reproducible() {
        let runner = SweepRunner::new(2, 7);
        let dmra = Dmra::default();
        let algos: Vec<&dyn Allocator> = vec![&dmra];
        let a = runner.run_profit("t", "x", &tiny_points(), &algos).unwrap();
        let b = runner.run_profit("t", "x", &tiny_points(), &algos).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn markdown_and_csv_render() {
        let table = Table {
            title: "Fig. X".into(),
            x_label: "#UEs".into(),
            series_labels: vec!["DMRA".into()],
            rows: vec![TableRow {
                x: 400.0,
                values: vec![Stat {
                    mean: 123.4,
                    std_dev: 5.6,
                    n: 5,
                }],
            }],
        };
        let md = table.to_markdown();
        assert!(md.contains("| 400 |"));
        assert!(md.contains("123.40 ± 5.60"));
        let csv = table.to_csv();
        assert!(csv.starts_with("#UEs,DMRA_mean,DMRA_std"));
        assert!(csv.contains("400,123.4,5.6"));
    }

    #[test]
    fn gnuplot_script_references_every_series() {
        let table = Table {
            title: "Fig. X".into(),
            x_label: "#UEs".into(),
            series_labels: vec!["DMRA".into(), "DCSP".into()],
            rows: vec![],
        };
        let script = table.to_gnuplot("fig_x.csv");
        assert!(script.contains("set title \"Fig. X\""));
        assert!(script.contains("using 1:2:3"));
        assert!(script.contains("using 1:4:5"));
        assert!(script.contains("title \"DCSP\""));
    }

    #[test]
    fn sparklines_scale_per_series() {
        let stat = |m: f64| Stat {
            mean: m,
            std_dev: 0.0,
            n: 1,
        };
        let table = Table {
            title: "t".into(),
            x_label: "x".into(),
            series_labels: vec!["up".into(), "flat".into()],
            rows: (0..4)
                .map(|i| TableRow {
                    x: f64::from(i),
                    values: vec![stat(f64::from(i)), stat(5.0)],
                })
                .collect(),
        };
        let text = table.to_sparklines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('▁') && lines[0].contains('█'));
        // A constant series renders as the lowest bar throughout.
        assert!(lines[1].matches('▁').count() == 4);
        assert!(lines[1].contains("[5.0 .. 5.0]"));
    }

    #[test]
    fn series_lookup() {
        let table = Table {
            title: "t".into(),
            x_label: "x".into(),
            series_labels: vec!["A".into(), "B".into()],
            rows: vec![TableRow {
                x: 1.0,
                values: vec![
                    Stat {
                        mean: 10.0,
                        std_dev: 0.0,
                        n: 1,
                    },
                    Stat {
                        mean: 20.0,
                        std_dev: 0.0,
                        n: 1,
                    },
                ],
            }],
        };
        assert_eq!(table.series("B"), Some(vec![(1.0, 20.0)]));
        assert_eq!(table.series("C"), None);
    }
}
