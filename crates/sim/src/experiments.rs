//! One function per figure of the paper's evaluation, plus ablations.
//!
//! Every function returns a [`Table`] whose rows reproduce the data series
//! of the corresponding figure (see DESIGN.md §4 for the full index):
//!
//! | Function | Paper figure | Sweep | Fixed parameters |
//! |---|---|---|---|
//! | [`fig2`] | Fig. 2 | #UEs 400–900 | ι = 2, regular placement |
//! | [`fig3`] | Fig. 3 | #UEs 400–900 | ι = 2, random placement |
//! | [`fig4`] | Fig. 4 | #UEs 400–900 | ι = 1.1, regular placement |
//! | [`fig5`] | Fig. 5 | #UEs 400–900 | ι = 1.1, random placement |
//! | [`fig6`] | Fig. 6 | ρ | ι = 2, 1000 UEs, regular, total profit |
//! | [`fig7`] | Fig. 7 | ρ | ι = 1.1, 1000 UEs, regular, forwarded load |
//!
//! The paper reports no absolute axis calibration we could match (its
//! price constants are symbolic), so EXPERIMENTS.md compares *shapes*:
//! ordering of algorithms, saturation with #UEs, monotonicity in ρ.

use crate::config::ScenarioConfig;
use crate::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
use crate::metrics::Metrics;
use crate::sweep::{Stat, SweepRunner, Table, TableRow};
use dmra_baselines::{Dcsp, NonCo};
use dmra_core::agents::run_decentralized;
use dmra_core::{Allocation, Allocator, Dmra, DmraConfig, ProblemInstance};
use dmra_proto::DropPolicy;
use dmra_radio::InterferenceModel;
use dmra_types::Result;

/// Replication and seeding options shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentOptions {
    /// Instances drawn per sweep point.
    pub replications: u32,
    /// Base seed for the derived per-point streams.
    pub base_seed: u64,
}

impl ExperimentOptions {
    /// The setting used for the committed EXPERIMENTS.md numbers.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            replications: 5,
            base_seed: 42,
        }
    }

    /// A cheaper setting for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            replications: 2,
            base_seed: 42,
        }
    }

    fn runner(&self) -> SweepRunner {
        SweepRunner::new(self.replications, self.base_seed)
    }
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self::paper()
    }
}

/// The UE counts on the x axis of Figs. 2–5.
pub const UE_COUNTS: [usize; 6] = [400, 500, 600, 700, 800, 900];

/// The ρ values swept in Figs. 6–7 (the paper does not print its grid;
/// this range spans "price-only" ρ = 0 to strongly resource-seeking).
pub const RHO_VALUES: [f64; 7] = [0.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0];

/// An [`Allocator`] wrapper that renames its inner algorithm — used to
/// plot two configurations of the same algorithm side by side.
#[derive(Debug, Clone)]
pub struct Named<A> {
    name: String,
    inner: A,
}

impl<A: Allocator> Named<A> {
    /// Wraps `inner` under a new series label.
    #[must_use]
    pub fn new(name: impl Into<String>, inner: A) -> Self {
        Self {
            name: name.into(),
            inner,
        }
    }
}

impl<A: Allocator> Allocator for Named<A> {
    fn name(&self) -> &str {
        &self.name
    }
    fn allocate(&self, instance: &ProblemInstance) -> Allocation {
        self.inner.allocate(instance)
    }
}

fn ue_sweep_points(base: &ScenarioConfig) -> Vec<(f64, ScenarioConfig)> {
    UE_COUNTS
        .iter()
        .map(|&n| (n as f64, base.clone().with_ues(n)))
        .collect()
}

fn profit_vs_ues(opts: &ExperimentOptions, title: &str, base: ScenarioConfig) -> Result<Table> {
    let dmra = Dmra::default();
    let dcsp = Dcsp::default();
    let nonco = NonCo::default();
    let algos: Vec<&dyn Allocator> = vec![&dmra, &dcsp, &nonco];
    opts.runner()
        .run_profit(title, "#UEs", &ue_sweep_points(&base), &algos)
}

/// Fig. 2: total SP profit vs #UEs, ι = 2, regular BS placement.
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn fig2(opts: &ExperimentOptions) -> Result<Table> {
    profit_vs_ues(
        opts,
        "Fig. 2: total profit of SPs vs number of UEs (iota = 2, regular BS placement)",
        ScenarioConfig::paper_defaults().with_iota(2.0),
    )
}

/// Fig. 3: total SP profit vs #UEs, ι = 2, random BS placement.
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn fig3(opts: &ExperimentOptions) -> Result<Table> {
    profit_vs_ues(
        opts,
        "Fig. 3: total profit of SPs vs number of UEs (iota = 2, random BS placement)",
        ScenarioConfig::paper_defaults()
            .with_iota(2.0)
            .with_random_placement(),
    )
}

/// Fig. 4: total SP profit vs #UEs, ι = 1.1, regular BS placement.
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn fig4(opts: &ExperimentOptions) -> Result<Table> {
    profit_vs_ues(
        opts,
        "Fig. 4: total profit of SPs vs number of UEs (iota = 1.1, regular BS placement)",
        ScenarioConfig::paper_defaults().with_iota(1.1),
    )
}

/// Fig. 5: total SP profit vs #UEs, ι = 1.1, random BS placement.
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn fig5(opts: &ExperimentOptions) -> Result<Table> {
    profit_vs_ues(
        opts,
        "Fig. 5: total profit of SPs vs number of UEs (iota = 1.1, random BS placement)",
        ScenarioConfig::paper_defaults()
            .with_iota(1.1)
            .with_random_placement(),
    )
}

fn rho_sweep(
    opts: &ExperimentOptions,
    title: &str,
    base: ScenarioConfig,
    forwarded_load: bool,
) -> Result<Table> {
    // The ρ knob lives in the algorithm, not the scenario, so build one
    // series per ρ is wrong — instead x = ρ and the single series is DMRA
    // with that ρ. Implemented directly on top of the runner primitives.
    let runner = opts.runner();
    let mut rows = Vec::with_capacity(RHO_VALUES.len());
    for (p_idx, &rho) in RHO_VALUES.iter().enumerate() {
        let dmra = Dmra::new(DmraConfig::paper_defaults().with_rho(rho));
        let mut samples = Vec::with_capacity(runner.replications as usize);
        for r in 0..runner.replications {
            // Seed derivation matches SweepRunner::run so ρ sweeps and UE
            // sweeps draw comparable instance families.
            let seed =
                dmra_geo::rng::sub_seed(runner.base_seed, &format!("sweep-point-{p_idx}-rep-{r}"));
            let instance = base.clone().with_seed(seed).build()?;
            let allocation = dmra.allocate(&instance);
            let m = Metrics::compute(&instance, &allocation);
            samples.push(if forwarded_load {
                m.forwarded_load_mbps
            } else {
                m.total_profit.get()
            });
        }
        rows.push(TableRow {
            x: rho,
            values: vec![Stat::from_samples(&samples)],
        });
    }
    Ok(Table {
        title: title.into(),
        x_label: "rho".into(),
        series_labels: vec!["DMRA".into()],
        rows,
    })
}

/// Fig. 6: total SP profit vs ρ (ι = 2, 1000 UEs, regular placement).
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn fig6(opts: &ExperimentOptions) -> Result<Table> {
    rho_sweep(
        opts,
        "Fig. 6: total profit of SPs vs rho (iota = 2, 1000 UEs, regular BS placement)",
        ScenarioConfig::paper_defaults()
            .with_iota(2.0)
            .with_ues(1000),
        false,
    )
}

/// Fig. 7: total forwarded traffic load vs ρ (ι = 1.1, 1000 UEs, regular
/// placement).
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn fig7(opts: &ExperimentOptions) -> Result<Table> {
    rho_sweep(
        opts,
        "Fig. 7: total forwarded traffic load vs rho (iota = 1.1, 1000 UEs, regular BS placement)",
        ScenarioConfig::paper_defaults()
            .with_iota(1.1)
            .with_ues(1000),
        true,
    )
}

/// Ablation: DMRA with and without the BS-side same-SP preference
/// (line 13 of Algorithm 1), profit vs #UEs at ι = 2.
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn ablation_same_sp_preference(opts: &ExperimentOptions) -> Result<Table> {
    let with_pref = Named::new("DMRA", Dmra::default());
    let without = Named::new(
        "DMRA (no same-SP preference)",
        Dmra::new(DmraConfig {
            same_sp_preference: false,
            ..DmraConfig::paper_defaults()
        }),
    );
    let algos: Vec<&dyn Allocator> = vec![&with_pref, &without];
    opts.runner().run_profit(
        "Ablation: same-SP preference on/off (iota = 2, regular BS placement)",
        "#UEs",
        &ue_sweep_points(&ScenarioConfig::paper_defaults().with_iota(2.0)),
        &algos,
    )
}

/// Ablation: DMRA profit under noise-only vs load-proportional
/// interference (DESIGN.md §5), profit vs #UEs.
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn ablation_interference(opts: &ExperimentOptions) -> Result<Table> {
    let runner = opts.runner();
    let dmra = Dmra::default();
    let mut noise_only = ScenarioConfig::paper_defaults();
    noise_only.radio.interference = InterferenceModel::NoiseOnly;
    let mut loaded = ScenarioConfig::paper_defaults();
    loaded.radio.interference = InterferenceModel::LoadProportional { factor: 0.01 };

    let mut rows = Vec::with_capacity(UE_COUNTS.len());
    for (p_idx, &n) in UE_COUNTS.iter().enumerate() {
        let mut per_series: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for r in 0..runner.replications {
            let seed =
                dmra_geo::rng::sub_seed(runner.base_seed, &format!("sweep-point-{p_idx}-rep-{r}"));
            for (s_idx, base) in [&noise_only, &loaded].iter().enumerate() {
                let instance = (*base).clone().with_ues(n).with_seed(seed).build()?;
                let allocation = dmra.allocate(&instance);
                per_series[s_idx].push(Metrics::compute(&instance, &allocation).total_profit.get());
            }
        }
        rows.push(TableRow {
            x: n as f64,
            values: per_series.iter().map(|s| Stat::from_samples(s)).collect(),
        });
    }
    Ok(Table {
        title: "Ablation: interference model (DMRA profit vs #UEs)".into(),
        x_label: "#UEs".into(),
        series_labels: vec!["noise-only".into(), "load-proportional (1%)".into()],
        rows,
    })
}

/// Extension: continuous sweep of the cross-SP markup ι (the paper only
/// samples ι ∈ {1.1, 2}) — profit of DMRA/DCSP/NonCo at 700 UEs, showing
/// where the same-SP steering starts to pay.
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn iota_sweep(opts: &ExperimentOptions) -> Result<Table> {
    // Constraint (16) with b = 2 and m_k − m_k^o = 8 bounds ι ≲ 2.9 at
    // the longest reachable link; stay within.
    const IOTAS: [f64; 6] = [1.05, 1.1, 1.25, 1.5, 2.0, 2.4];
    let points: Vec<(f64, ScenarioConfig)> = IOTAS
        .iter()
        .map(|&iota| {
            (
                iota,
                ScenarioConfig::paper_defaults()
                    .with_iota(iota)
                    .with_ues(700),
            )
        })
        .collect();
    let dmra = Dmra::default();
    let dcsp = Dcsp::default();
    let nonco = NonCo::default();
    let algos: Vec<&dyn Allocator> = vec![&dmra, &dcsp, &nonco];
    opts.runner().run_profit(
        "Extension: total profit vs cross-SP markup iota (700 UEs, regular placement)",
        "iota",
        &points,
        &algos,
    )
}

/// Extension: the online regime — total profit accumulated over a 60-epoch
/// arrival/departure run, per algorithm, against offered load. All
/// algorithms see identical arrival traces (same seeds).
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn online_comparison(opts: &ExperimentOptions) -> Result<Table> {
    const RATES: [f64; 4] = [60.0, 120.0, 180.0, 240.0];
    type MakeAllocator = fn() -> Box<dyn Allocator>;
    let algos: [(&str, MakeAllocator); 3] = [
        ("DMRA", || Box::new(Dmra::default())),
        ("DCSP", || Box::new(Dcsp::default())),
        ("NonCo", || Box::new(NonCo::default())),
    ];
    let runner = opts.runner();
    let mut rows = Vec::with_capacity(RATES.len());
    for (p_idx, &rate) in RATES.iter().enumerate() {
        let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
        for r in 0..runner.replications {
            let seed =
                dmra_geo::rng::sub_seed(runner.base_seed, &format!("online-point-{p_idx}-rep-{r}"));
            for (a_idx, (_, make)) in algos.iter().enumerate() {
                let out = DynamicSimulator::with_allocator(
                    DynamicConfig {
                        scenario: ScenarioConfig::paper_defaults(),
                        arrival_rate: rate,
                        mean_holding: 5.0,
                        holding: HoldingDistribution::Geometric,
                        epochs: 60,
                        seed,
                    },
                    make(),
                )
                .run()?;
                per_algo[a_idx].push(out.total_profit.get());
            }
        }
        rows.push(TableRow {
            x: rate,
            values: per_algo.iter().map(|s| Stat::from_samples(s)).collect(),
        });
    }
    Ok(Table {
        title: "Extension: online regime — accumulated profit vs arrival rate                 (60 epochs, mean holding 5)"
            .into(),
        x_label: "arrivals/epoch".into(),
        series_labels: algos.iter().map(|(n, _)| (*n).to_owned()).collect(),
        rows,
    })
}

/// Ablation: communication cost of the decentralized execution — protocol
/// rounds and messages per UE count (reliable delivery).
///
/// # Errors
///
/// Propagates scenario build and protocol errors.
pub fn decentralized_cost(opts: &ExperimentOptions) -> Result<Table> {
    let runner = opts.runner();
    let config = DmraConfig::paper_defaults();
    let mut rows = Vec::with_capacity(UE_COUNTS.len());
    for (p_idx, &n) in UE_COUNTS.iter().enumerate() {
        let mut rounds = Vec::new();
        let mut messages = Vec::new();
        for r in 0..runner.replications {
            let seed =
                dmra_geo::rng::sub_seed(runner.base_seed, &format!("sweep-point-{p_idx}-rep-{r}"));
            let instance = ScenarioConfig::paper_defaults()
                .with_ues(n)
                .with_seed(seed)
                .build()?;
            let out = run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000)?;
            rounds.push(out.stats.rounds as f64);
            messages.push(out.stats.messages_sent as f64);
        }
        rows.push(TableRow {
            x: n as f64,
            values: vec![Stat::from_samples(&rounds), Stat::from_samples(&messages)],
        });
    }
    Ok(Table {
        title: "Decentralized execution cost (reliable delivery)".into(),
        x_label: "#UEs".into(),
        series_labels: vec!["protocol rounds".into(), "messages delivered".into()],
        rows,
    })
}

/// Runs every paper figure (not the ablations) and returns the tables in
/// figure order.
///
/// # Errors
///
/// Propagates scenario build errors.
pub fn all_figures(opts: &ExperimentOptions) -> Result<Vec<Table>> {
    Ok(vec![
        fig2(opts)?,
        fig3(opts)?,
        fig4(opts)?,
        fig5(opts)?,
        fig6(opts)?,
        fig7(opts)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny option set so unit tests stay fast; the shape assertions on
    /// the real UE counts live in the workspace integration tests.
    fn tiny() -> ExperimentOptions {
        ExperimentOptions {
            replications: 1,
            base_seed: 42,
        }
    }

    #[test]
    fn named_wrapper_renames() {
        let named = Named::new("DMRA (tuned)", Dmra::default());
        assert_eq!(named.name(), "DMRA (tuned)");
    }

    #[test]
    fn fig2_has_expected_layout() {
        let t = fig2(&tiny()).unwrap();
        assert_eq!(t.rows.len(), UE_COUNTS.len());
        assert_eq!(t.series_labels, vec!["DMRA", "DCSP", "NonCo"]);
        assert!((t.rows[0].x - 400.0).abs() < 1e-12);
    }

    #[test]
    fn fig6_sweeps_rho() {
        let t = fig6(&tiny()).unwrap();
        assert_eq!(t.rows.len(), RHO_VALUES.len());
        assert_eq!(t.series_labels, vec!["DMRA"]);
        assert_eq!(t.rows[0].x, 0.0);
    }

    #[test]
    fn iota_sweep_produces_all_points() {
        let t = iota_sweep(&tiny()).unwrap();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.series_labels.len(), 3);
        assert!((t.rows[0].x - 1.05).abs() < 1e-12);
    }

    #[test]
    fn online_comparison_layout() {
        let t = online_comparison(&tiny()).unwrap();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.series_labels, vec!["DMRA", "DCSP", "NonCo"]);
        // Profit grows with offered load for every algorithm.
        for col in 0..3 {
            assert!(t.rows[3].values[col].mean > t.rows[0].values[col].mean);
        }
    }

    #[test]
    fn decentralized_cost_reports_rounds_and_messages() {
        let mut opts = tiny();
        opts.replications = 1;
        // Shrink the sweep through a directly-built row instead of the
        // full UE_COUNTS to keep this a unit test: just check fig layout
        // on the first point by running the real function once.
        let t = decentralized_cost(&opts).unwrap();
        assert_eq!(t.series_labels.len(), 2);
        assert!(t.rows.iter().all(|r| r.values[0].mean >= 1.0));
    }
}
