//! Scenario generation, metrics, parameter sweeps and the experiment
//! registry reproducing every figure of the paper's evaluation.
//!
//! * [`ScenarioConfig`] encodes Section VI-A's simulation setup (5 SPs ×
//!   5 BSs × 6 services, CRU budgets 100–150, demands 3–5, rates 2–6
//!   Mbit/s, 10 MHz uplink, 180 kHz RRBs, 10 dBm UEs, the Eq. (18) path
//!   loss) with every knob overridable; [`ScenarioConfig::build`] produces
//!   a validated [`dmra_core::ProblemInstance`].
//! * [`Metrics`] computes the quantities the figures plot: total SP
//!   profit, forwarded traffic load, served fractions, utilizations.
//! * [`SweepRunner`] runs a set of allocators over a parameter sweep with
//!   seed replications, producing [`Table`]s with mean ± stddev per cell —
//!   all algorithms see *identical* instances (paired comparison).
//! * [`experiments`] holds one function per paper figure (`fig2` … `fig7`)
//!   plus the ablations documented in DESIGN.md §5.
//! * [`dynamic`] runs the online regime the paper motivates in Section V:
//!   Poisson task arrivals, geometric holding times, per-epoch DMRA
//!   matching against the remaining capacities.
//! * [`mobility`] moves a fixed UE population under a random-waypoint
//!   model and measures the handover cost of re-running DMRA each epoch.
//! * [`erlang`] cross-checks the online simulator against Erlang-B loss
//!   theory (blocking prediction and trunk dimensioning).
//! * [`shard`] partitions the site grid into rectangular spatial shards
//!   with long-lived worker threads building candidate rows in parallel;
//!   the sharded engines ([`dynamic::DynamicSimulator::run_sharded`],
//!   [`mobility::MobilitySimulator::run_sharded`]) stay bit-identical to
//!   their unsharded counterparts.
//!
//! # Examples
//!
//! ```
//! use dmra_baselines::Dcsp;
//! use dmra_core::{Allocator, Dmra};
//! use dmra_sim::{Metrics, ScenarioConfig};
//!
//! let instance = ScenarioConfig::paper_defaults()
//!     .with_ues(150)
//!     .with_seed(7)
//!     .build()?;
//! let dmra = Metrics::compute(&instance, &Dmra::default().allocate(&instance));
//! let dcsp = Metrics::compute(&instance, &Dcsp::default().allocate(&instance));
//! assert!(dmra.total_profit >= dcsp.total_profit);
//! # Ok::<(), dmra_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod dynamic;
pub mod erlang;
pub mod experiments;
mod metrics;
pub mod mobility;
pub mod shard;
mod sweep;

pub use config::{BsPlacement, ScenarioConfig, ServicePopularity, SpOverride, UePlacement};
pub use metrics::Metrics;
pub use shard::ShardGrid;
pub use sweep::{Stat, SweepRunner, Table, TableRow};
