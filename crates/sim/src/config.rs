//! The scenario described in Section VI-A, as a configurable builder.

use dmra_core::{CoverageModel, ProblemInstance};
use dmra_econ::PricingConfig;
use dmra_geo::rng::component_rng;
use dmra_geo::{placement, SpAssignment};
use dmra_radio::RadioConfig;
use dmra_types::{
    BitsPerSec, BsId, BsSpec, Cru, Dbm, Error, Hertz, Meters, Money, Point, Rect, Result,
    ServiceCatalog, ServiceId, SpId, SpSpec, UeId, UeSpec,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the BS sites are laid out — the paper's two placement methods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BsPlacement {
    /// `rows × cols` grid with the given inter-site distance, centered in
    /// the region (paper: 5 × 5, 300 m).
    RegularGrid {
        /// Grid rows.
        rows: u32,
        /// Grid columns.
        cols: u32,
        /// Inter-site distance.
        isd: Meters,
    },
    /// Uniformly random sites inside the region (paper: 1200 m × 1200 m).
    UniformRandom,
    /// `rows × cols` hexagonal lattice — the classical cellular layout,
    /// an extension beyond the paper's two placements.
    HexGrid {
        /// Lattice rows.
        rows: u32,
        /// Lattice columns.
        cols: u32,
        /// Inter-site distance.
        isd: Meters,
    },
}

impl Default for BsPlacement {
    fn default() -> Self {
        BsPlacement::RegularGrid {
            rows: 5,
            cols: 5,
            isd: Meters::new(300.0),
        }
    }
}

/// Overrides the generated (uniform) spec of one SP — used to model
/// asymmetric markets (premium vs budget operators).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpOverride {
    /// Index of the SP to override (must be `< n_sps`).
    pub sp: u32,
    /// Replacement `m_k`.
    pub cru_price: Money,
    /// Replacement `m_k^o`.
    pub other_cost: Money,
}

/// How UEs pick their requested service.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ServicePopularity {
    /// Every service equally likely (the paper's setting).
    #[default]
    Uniform,
    /// Zipf-distributed popularity with the given exponent: service 0 is
    /// the most requested. Models the skewed demand ("diversity of
    /// services requested by UE") the paper's contribution list calls out.
    Zipf {
        /// Zipf exponent `s` (0 = uniform, 1 = classic web-like skew).
        exponent: f64,
    },
}

impl ServicePopularity {
    /// Builds the reusable sampler for this distribution: the Zipf weight
    /// table depends only on `(n_services, exponent)`, so it is computed
    /// once per scenario build instead of once per UE draw. Each
    /// [`ServiceSampler::draw`] consumes exactly one RNG value, matching
    /// the naive per-draw implementation stream-for-stream.
    fn sampler(self, n_services: u32) -> ServiceSampler {
        match self {
            ServicePopularity::Uniform => ServiceSampler::Uniform { n: n_services },
            ServicePopularity::Zipf { exponent } => {
                let weights: Vec<f64> = (1..=n_services)
                    .map(|r| 1.0 / f64::from(r).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                ServiceSampler::Weighted { weights, total }
            }
        }
    }
}

/// Precomputed service-popularity sampler (see
/// [`ServicePopularity::sampler`]).
#[derive(Debug, Clone)]
enum ServiceSampler {
    Uniform { n: u32 },
    Weighted { weights: Vec<f64>, total: f64 },
}

impl ServiceSampler {
    /// Draws a service index from `0..n_services`.
    fn draw<R: Rng>(&self, rng: &mut R) -> u32 {
        match self {
            ServiceSampler::Uniform { n } => rng.random_range(0..*n),
            ServiceSampler::Weighted { weights, total } => {
                // Inverse-CDF over the (small) finite support.
                let mut draw = rng.random_range(0.0..*total);
                for (idx, w) in weights.iter().enumerate() {
                    if draw < *w {
                        return idx as u32;
                    }
                    draw -= w;
                }
                weights.len() as u32 - 1
            }
        }
    }
}

/// How UEs are scattered.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum UePlacement {
    /// Uniformly random in the region (the paper's setting).
    #[default]
    Uniform,
    /// A hotspot mixture: `fraction` of UEs cluster (std-dev `spread`)
    /// around `n_hotspots` random centers — the "popular areas" of the
    /// introduction.
    Hotspots {
        /// Number of hotspot centers.
        n_hotspots: u32,
        /// Gaussian spread around each center.
        spread: Meters,
        /// Fraction of UEs drawn from hotspots rather than uniformly.
        fraction: f64,
    },
}

/// Full description of one simulated scenario.
///
/// Start from [`ScenarioConfig::paper_defaults`] and override with the
/// `with_*` methods; [`build`](ScenarioConfig::build) draws the concrete
/// entities deterministically from [`seed`](ScenarioConfig::seed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of SPs (paper: 5).
    pub n_sps: u32,
    /// BSs deployed per SP (paper: 5).
    pub bss_per_sp: u32,
    /// Size of the service catalog (paper: 6).
    pub n_services: u32,
    /// How many services each BS hosts (`|S_i|`): `None` hosts the full
    /// catalog (the paper's evaluation setting); `Some(k)` draws a random
    /// `k`-subset per BS, exercising the `z_{i,j}` hosting constraint
    /// (13) the system model defines.
    pub services_per_bs: Option<u32>,
    /// Number of UEs with offloading tasks (paper: 400–1000).
    pub n_ues: usize,
    /// The deployment region (paper: 1200 m × 1200 m).
    pub region: Rect,
    /// BS site layout.
    pub bs_placement: BsPlacement,
    /// How sites are divided among SPs.
    pub sp_assignment: SpAssignment,
    /// UE scattering.
    pub ue_placement: UePlacement,
    /// Service request popularity (paper: uniform).
    pub service_popularity: ServicePopularity,
    /// Per-service CRU budget range `c_{i,j}` (paper: 100–150).
    pub cru_budget_range: (u32, u32),
    /// Per-task CRU demand range `c_j^u` (paper: 3–5).
    pub cru_demand_range: (u32, u32),
    /// Required data-rate range `w_u` in Mbit/s (paper: 2–6).
    pub rate_demand_mbps: (f64, f64),
    /// Uplink bandwidth per BS `W_i` (paper: 10 MHz).
    pub uplink_bandwidth: Hertz,
    /// UE transmit power (paper: 10 dBm).
    pub ue_tx_power: Dbm,
    /// `m_k`: per-CRU price every SP charges subscribers (see DESIGN.md §2
    /// — the paper leaves it symbolic).
    pub sp_cru_price: Money,
    /// `m_k^o`: per-CRU overhead cost of every SP.
    pub sp_other_cost: Money,
    /// Per-SP deviations from the uniform `m_k`/`m_k^o` (asymmetric
    /// markets). Every override must still satisfy constraint (16); the
    /// instance builder rejects it otherwise.
    pub sp_overrides: Vec<SpOverride>,
    /// BS pricing rule (Eqs. (9)–(10); `ι` lives here).
    pub pricing: PricingConfig,
    /// Radio model (Eq. (18), noise, RRB bandwidth).
    pub radio: RadioConfig,
    /// Coverage predicate.
    pub coverage: CoverageModel,
    /// Master seed; every random component derives an independent stream.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper's Section VI-A configuration.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            n_sps: 5,
            bss_per_sp: 5,
            n_services: 6,
            services_per_bs: None,
            n_ues: 500,
            region: Rect::default(),
            bs_placement: BsPlacement::default(),
            sp_assignment: SpAssignment::RoundRobin,
            ue_placement: UePlacement::Uniform,
            service_popularity: ServicePopularity::Uniform,
            cru_budget_range: (100, 150),
            cru_demand_range: (3, 5),
            rate_demand_mbps: (2.0, 6.0),
            uplink_bandwidth: Hertz::from_mhz(10.0),
            ue_tx_power: Dbm::new(10.0),
            sp_cru_price: Money::new(9.0),
            sp_other_cost: Money::new(1.0),
            sp_overrides: Vec::new(),
            pricing: PricingConfig::paper_defaults(),
            radio: RadioConfig::paper_defaults(),
            coverage: CoverageModel::default(),
            seed: 0,
        }
    }

    /// Sets the number of UEs.
    #[must_use]
    pub fn with_ues(mut self, n_ues: usize) -> Self {
        self.n_ues = n_ues;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cross-SP price markup `ι` (the knob Figs. 2–5 vary).
    #[must_use]
    pub fn with_iota(mut self, iota: f64) -> Self {
        self.pricing.cross_sp_markup = iota;
        self
    }

    /// Switches to random BS placement (Figs. 3 and 5).
    #[must_use]
    pub fn with_random_placement(mut self) -> Self {
        self.bs_placement = BsPlacement::UniformRandom;
        self
    }

    /// Sets the BS placement explicitly.
    #[must_use]
    pub fn with_bs_placement(mut self, placement: BsPlacement) -> Self {
        self.bs_placement = placement;
        self
    }

    /// Sets the UE placement model.
    #[must_use]
    pub fn with_ue_placement(mut self, placement: UePlacement) -> Self {
        self.ue_placement = placement;
        self
    }

    /// Adds a per-SP pricing override.
    #[must_use]
    pub fn with_sp_override(mut self, sp_override: SpOverride) -> Self {
        self.sp_overrides.push(sp_override);
        self
    }

    /// Sets the service-popularity distribution.
    #[must_use]
    pub fn with_service_popularity(mut self, popularity: ServicePopularity) -> Self {
        self.service_popularity = popularity;
        self
    }

    /// Restricts each BS to hosting a random `k`-subset of the catalog
    /// (`S_i ⊆ S` in the paper's system model).
    #[must_use]
    pub fn with_services_per_bs(mut self, k: u32) -> Self {
        self.services_per_bs = Some(k);
        self
    }

    /// Total number of BSs (`n_sps × bss_per_sp`).
    #[must_use]
    pub fn n_bss(&self) -> u32 {
        self.n_sps * self.bss_per_sp
    }

    /// Checks the structural validity of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.n_sps == 0 {
            return Err(Error::InvalidConfig("n_sps must be positive".into()));
        }
        if self.bss_per_sp == 0 {
            return Err(Error::InvalidConfig("bss_per_sp must be positive".into()));
        }
        if self.n_services == 0 {
            return Err(Error::InvalidConfig("n_services must be positive".into()));
        }
        if let BsPlacement::RegularGrid { rows, cols, .. }
        | BsPlacement::HexGrid { rows, cols, .. } = self.bs_placement
        {
            if rows * cols != self.n_bss() {
                return Err(Error::InvalidConfig(format!(
                    "grid {rows}×{cols} has {} sites but n_sps×bss_per_sp = {}",
                    rows * cols,
                    self.n_bss()
                )));
            }
        }
        if let Some(k) = self.services_per_bs {
            if k == 0 || k > self.n_services {
                return Err(Error::InvalidConfig(format!(
                    "services_per_bs ({k}) must be in 1..={}",
                    self.n_services
                )));
            }
        }
        let (lo, hi) = self.cru_budget_range;
        if lo > hi || lo == 0 {
            return Err(Error::InvalidConfig(format!(
                "cru_budget_range ({lo}, {hi}) must be a non-empty positive range"
            )));
        }
        let (lo, hi) = self.cru_demand_range;
        if lo > hi || lo == 0 {
            return Err(Error::InvalidConfig(format!(
                "cru_demand_range ({lo}, {hi}) must be a non-empty positive range"
            )));
        }
        let (lo, hi) = self.rate_demand_mbps;
        if !(0.0 < lo && lo <= hi) {
            return Err(Error::InvalidConfig(format!(
                "rate_demand_mbps ({lo}, {hi}) must be a non-empty positive range"
            )));
        }
        if let UePlacement::Hotspots {
            n_hotspots,
            spread,
            fraction,
        } = self.ue_placement
        {
            if n_hotspots == 0 {
                return Err(Error::InvalidConfig(
                    "hotspot placement needs at least one hotspot".into(),
                ));
            }
            if !spread.get().is_finite() || spread.get() < 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "hotspot spread ({spread}) must be finite and non-negative"
                )));
            }
            if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                return Err(Error::InvalidConfig(format!(
                    "hotspot fraction ({fraction}) must be within [0, 1]"
                )));
            }
        }
        if let ServicePopularity::Zipf { exponent } = self.service_popularity {
            if !exponent.is_finite() || exponent < 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "zipf exponent ({exponent}) must be finite and non-negative"
                )));
            }
        }
        self.pricing.validate()?;
        Ok(())
    }

    /// Draws the concrete scenario and builds the validated instance.
    ///
    /// Deterministic in [`seed`](ScenarioConfig::seed): placement, budgets
    /// and workloads use independent derived streams, so e.g. changing
    /// `n_ues` does not reshuffle the BS layout.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::validate`] and
    /// [`dmra_core::ProblemInstance::build`] errors.
    pub fn build(&self) -> Result<ProblemInstance> {
        self.build_with_threads(dmra_par::Threads::Auto)
    }

    /// [`ScenarioConfig::build`] with an explicit thread-count knob for
    /// the candidate-link precomputation (scenario drawing itself is a
    /// single sequential RNG pass). The result is bit-identical for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioConfig::build`].
    pub fn build_with_threads(&self, threads: dmra_par::Threads) -> Result<ProblemInstance> {
        self.validate()?;
        let catalog = ServiceCatalog::new(self.n_services);

        let mut sps: Vec<SpSpec> = (0..self.n_sps)
            .map(|k| SpSpec::new(SpId::new(k), self.sp_cru_price, self.sp_other_cost))
            .collect();
        for o in &self.sp_overrides {
            let Some(spec) = sps.get_mut(o.sp as usize) else {
                return Err(Error::UnknownSp(SpId::new(o.sp)));
            };
            spec.cru_price = o.cru_price;
            spec.other_cost = o.other_cost;
        }

        // BS sites and ownership.
        let n_bss = self.n_bss() as usize;
        let mut placement_rng = component_rng(self.seed, "bs-placement");
        let sites: Vec<Point> = match self.bs_placement {
            BsPlacement::RegularGrid { rows, cols, isd } => {
                placement::regular_grid(rows, cols, isd, self.region)
            }
            BsPlacement::UniformRandom => {
                placement::uniform_random(n_bss, self.region, &mut placement_rng)
            }
            BsPlacement::HexGrid { rows, cols, isd } => {
                placement::hex_grid(rows, cols, isd, self.region)
            }
        };
        let mut assign_rng = component_rng(self.seed, "sp-assignment");
        let owners = self
            .sp_assignment
            .assign(n_bss, self.n_sps, &mut assign_rng);

        let mut budget_rng = component_rng(self.seed, "bs-budgets");
        let (blo, bhi) = self.cru_budget_range;
        let rrb_budget = self.radio.max_rrbs(self.uplink_bandwidth);
        let bss: Vec<BsSpec> = sites
            .iter()
            .zip(&owners)
            .enumerate()
            .map(|(i, (&pos, &sp))| {
                // z_{i,j}: hosted services get a budget draw, others zero.
                let hosted: Vec<bool> = match self.services_per_bs {
                    None => vec![true; self.n_services as usize],
                    Some(k) => {
                        let mut mask = vec![false; self.n_services as usize];
                        // Partial Fisher–Yates over service indices.
                        let mut idx: Vec<usize> = (0..self.n_services as usize).collect();
                        for slot in 0..k as usize {
                            let j = budget_rng.random_range(slot..idx.len());
                            idx.swap(slot, j);
                            mask[idx[slot]] = true;
                        }
                        mask
                    }
                };
                let budgets: Vec<Cru> = hosted
                    .iter()
                    .map(|&h| {
                        if h {
                            Cru::new(budget_rng.random_range(blo..=bhi))
                        } else {
                            Cru::ZERO
                        }
                    })
                    .collect();
                BsSpec::new(
                    BsId::new(i as u32),
                    sp,
                    pos,
                    budgets,
                    self.uplink_bandwidth,
                    rrb_budget,
                )
            })
            .collect();

        // UE positions and workloads.
        let mut ue_pos_rng = component_rng(self.seed, "ue-placement");
        let positions: Vec<Point> = match self.ue_placement {
            UePlacement::Uniform => {
                placement::uniform_random(self.n_ues, self.region, &mut ue_pos_rng)
            }
            UePlacement::Hotspots {
                n_hotspots,
                spread,
                fraction,
            } => {
                let centers =
                    placement::uniform_random(n_hotspots as usize, self.region, &mut ue_pos_rng);
                placement::hotspot_mixture(
                    self.n_ues,
                    self.region,
                    &centers,
                    spread,
                    fraction,
                    &mut ue_pos_rng,
                )
            }
        };
        let mut workload_rng = component_rng(self.seed, "ue-workload");
        let (dlo, dhi) = self.cru_demand_range;
        let (rlo, rhi) = self.rate_demand_mbps;
        let service_sampler = self.service_popularity.sampler(self.n_services);
        let ues: Vec<UeSpec> = positions
            .into_iter()
            .enumerate()
            .map(|(u, pos)| {
                UeSpec::new(
                    UeId::new(u as u32),
                    SpId::new(workload_rng.random_range(0..self.n_sps)),
                    pos,
                    ServiceId::new(service_sampler.draw(&mut workload_rng)),
                    Cru::new(workload_rng.random_range(dlo..=dhi)),
                    BitsPerSec::from_mbps(workload_rng.random_range(rlo..=rhi)),
                    self.ue_tx_power,
                )
            })
            .collect();

        ProblemInstance::build_with_threads(
            sps,
            bss,
            ues,
            catalog,
            self.pricing,
            self.radio,
            self.coverage,
            threads,
        )
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_build() {
        let inst = ScenarioConfig::paper_defaults()
            .with_ues(100)
            .build()
            .unwrap();
        assert_eq!(inst.n_sps(), 5);
        assert_eq!(inst.n_bss(), 25);
        assert_eq!(inst.n_ues(), 100);
        assert_eq!(inst.catalog().len(), 6);
        // 10 MHz / 180 kHz = 55 RRBs.
        assert_eq!(inst.bss()[0].rrb_budget.get(), 55);
    }

    #[test]
    fn build_is_deterministic_in_seed() {
        let cfg = ScenarioConfig::paper_defaults().with_ues(50).with_seed(9);
        let a = cfg.build().unwrap();
        let b = cfg.build().unwrap();
        assert_eq!(a.ues(), b.ues());
        assert_eq!(a.bss(), b.bss());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioConfig::paper_defaults()
            .with_ues(50)
            .with_seed(1)
            .build()
            .unwrap();
        let b = ScenarioConfig::paper_defaults()
            .with_ues(50)
            .with_seed(2)
            .build()
            .unwrap();
        assert_ne!(a.ues(), b.ues());
    }

    #[test]
    fn changing_ue_count_keeps_bs_layout() {
        let a = ScenarioConfig::paper_defaults()
            .with_ues(10)
            .with_seed(3)
            .build()
            .unwrap();
        let b = ScenarioConfig::paper_defaults()
            .with_ues(200)
            .with_seed(3)
            .build()
            .unwrap();
        assert_eq!(a.bss(), b.bss());
    }

    #[test]
    fn random_placement_stays_in_region() {
        let inst = ScenarioConfig::paper_defaults()
            .with_random_placement()
            .with_ues(20)
            .build()
            .unwrap();
        for bs in inst.bss() {
            assert!(!inst.ues().is_empty());
            assert!(Rect::default().contains(bs.position), "{:?}", bs.position);
        }
    }

    #[test]
    fn grid_mismatch_is_rejected() {
        let cfg = ScenarioConfig {
            bss_per_sp: 4, // 20 BSs ≠ 5×5 grid
            ..ScenarioConfig::paper_defaults()
        };
        assert!(matches!(cfg.build(), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn degenerate_ranges_are_rejected() {
        let mut cfg = ScenarioConfig::paper_defaults();
        cfg.cru_demand_range = (5, 3);
        assert!(cfg.validate().is_err());
        let mut cfg = ScenarioConfig::paper_defaults();
        cfg.rate_demand_mbps = (0.0, 6.0);
        assert!(cfg.validate().is_err());
        let mut cfg = ScenarioConfig::paper_defaults();
        cfg.n_services = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn invalid_hotspot_parameters_are_rejected() {
        let base = ScenarioConfig::paper_defaults().with_ues(10);
        let cases = [
            (
                UePlacement::Hotspots {
                    n_hotspots: 0,
                    spread: Meters::new(80.0),
                    fraction: 0.5,
                },
                "hotspot",
            ),
            (
                UePlacement::Hotspots {
                    n_hotspots: 3,
                    spread: Meters::new(-1.0),
                    fraction: 0.5,
                },
                "spread",
            ),
            (
                UePlacement::Hotspots {
                    n_hotspots: 3,
                    spread: Meters::new(f64::NAN),
                    fraction: 0.5,
                },
                "spread",
            ),
            (
                UePlacement::Hotspots {
                    n_hotspots: 3,
                    spread: Meters::new(80.0),
                    fraction: 1.5,
                },
                "fraction",
            ),
            (
                UePlacement::Hotspots {
                    n_hotspots: 3,
                    spread: Meters::new(80.0),
                    fraction: f64::NAN,
                },
                "fraction",
            ),
        ];
        for (placement, needle) in cases {
            let err = base
                .clone()
                .with_ue_placement(placement)
                .build()
                .unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{placement:?}: error {err} does not mention {needle}"
            );
        }
        // Boundary values are legal: fraction 0 and 1, zero spread.
        for fraction in [0.0, 1.0] {
            base.clone()
                .with_ue_placement(UePlacement::Hotspots {
                    n_hotspots: 2,
                    spread: Meters::new(0.0),
                    fraction,
                })
                .build()
                .unwrap();
        }
    }

    #[test]
    fn invalid_zipf_exponent_is_rejected() {
        let base = ScenarioConfig::paper_defaults().with_ues(10);
        for exponent in [f64::NAN, f64::INFINITY, -0.5] {
            let err = base
                .clone()
                .with_service_popularity(ServicePopularity::Zipf { exponent })
                .build()
                .unwrap_err();
            assert!(
                err.to_string().contains("zipf"),
                "exponent {exponent}: error {err} does not mention zipf"
            );
        }
    }

    #[test]
    fn hotspot_placement_builds() {
        let inst = ScenarioConfig::paper_defaults()
            .with_ues(100)
            .with_ue_placement(UePlacement::Hotspots {
                n_hotspots: 3,
                spread: Meters::new(80.0),
                fraction: 0.8,
            })
            .build()
            .unwrap();
        assert_eq!(inst.n_ues(), 100);
    }

    #[test]
    fn partial_service_hosting_zeroes_budgets() {
        let inst = ScenarioConfig::paper_defaults()
            .with_ues(10)
            .with_services_per_bs(2)
            .build()
            .unwrap();
        for bs in inst.bss() {
            let hosted = bs.hosted_services().count();
            assert_eq!(hosted, 2, "{} hosts {hosted} services", bs.id);
        }
        // UEs of an unhosted service must not see that BS as a candidate.
        for ue in inst.ues() {
            for link in inst.candidates(ue.id) {
                assert!(inst.bss()[link.bs.as_usize()].hosts(ue.service));
            }
        }
    }

    #[test]
    fn services_per_bs_zero_or_excess_is_rejected() {
        let cfg = ScenarioConfig::paper_defaults().with_services_per_bs(0);
        assert!(cfg.validate().is_err());
        let cfg = ScenarioConfig::paper_defaults().with_services_per_bs(7);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn serde_roundtrip_of_scenario_config() {
        // ScenarioConfig is the persistence surface for experiment
        // definitions; assert the serde derives stay intact.
        let cfg = ScenarioConfig::paper_defaults()
            .with_ues(123)
            .with_iota(1.1)
            .with_services_per_bs(3)
            .with_random_placement();
        // No JSON crate in the dependency set, so round-trip through the
        // self-describing `serde_test`-style token check is unavailable;
        // instead assert Clone/PartialEq coherence (the derives the sweep
        // machinery relies on).
        let copy = cfg.clone();
        assert_eq!(cfg, copy);
    }

    #[test]
    fn hex_placement_builds_and_validates_grid_size() {
        let mut cfg = ScenarioConfig::paper_defaults().with_ues(50);
        cfg.bs_placement = BsPlacement::HexGrid {
            rows: 5,
            cols: 5,
            isd: Meters::new(300.0),
        };
        let inst = cfg.build().unwrap();
        assert_eq!(inst.n_bss(), 25);
        let mut bad = ScenarioConfig::paper_defaults();
        bad.bs_placement = BsPlacement::HexGrid {
            rows: 4,
            cols: 5,
            isd: Meters::new(300.0),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn zipf_popularity_skews_requests() {
        let inst = ScenarioConfig::paper_defaults()
            .with_ues(3000)
            .with_service_popularity(ServicePopularity::Zipf { exponent: 1.2 })
            .build()
            .unwrap();
        let mut counts = [0usize; 6];
        for ue in inst.ues() {
            counts[ue.service.as_usize()] += 1;
        }
        // Service 0 clearly dominates service 5 under s = 1.2.
        assert!(counts[0] > 3 * counts[5], "counts not skewed: {counts:?}");
        // Zipf weights are monotone; allow sampling noise on neighbours
        // but require the broad ordering head > mid > tail.
        assert!(counts[0] > counts[2] && counts[2] > counts[5]);
    }

    #[test]
    fn zipf_exponent_zero_is_distributionally_uniform() {
        // Exponent 0 gives equal weights; the draw path differs from the
        // Uniform variant (different RNG calls), so compare frequencies,
        // not streams.
        let inst = ScenarioConfig::paper_defaults()
            .with_ues(6000)
            .with_service_popularity(ServicePopularity::Zipf { exponent: 0.0 })
            .build()
            .unwrap();
        let mut counts = [0usize; 6];
        for ue in inst.ues() {
            counts[ue.service.as_usize()] += 1;
        }
        // Expected 1000 per service; 4 sigma is about 115.
        for (svc, &c) in counts.iter().enumerate() {
            assert!(
                (880..=1120).contains(&c),
                "service {svc} drawn {c} times, expected about 1000"
            );
        }
    }

    #[test]
    fn hoisted_service_sampler_preserves_the_draw_stream() {
        // The precomputed sampler must consume exactly one RNG value per
        // draw and return the same service as the naive implementation
        // that rebuilds the Zipf weight table on every call — otherwise
        // hoisting it out of the UE loop would silently reseed every
        // workload downstream of a scenario build.
        use dmra_geo::rng::component_rng;
        use rand::rngs::StdRng;
        let naive_draw = |n_services: u32, exponent: f64, rng: &mut StdRng| -> u32 {
            let weights: Vec<f64> = (1..=n_services)
                .map(|r| 1.0 / f64::from(r).powf(exponent))
                .collect();
            let total: f64 = weights.iter().sum();
            let mut draw = rng.random_range(0.0..total);
            for (idx, w) in weights.iter().enumerate() {
                if draw < *w {
                    return idx as u32;
                }
                draw -= w;
            }
            n_services - 1
        };
        for popularity in [
            ServicePopularity::Uniform,
            ServicePopularity::Zipf { exponent: 0.0 },
            ServicePopularity::Zipf { exponent: 0.9 },
            ServicePopularity::Zipf { exponent: 2.5 },
        ] {
            let sampler = popularity.sampler(6);
            let mut rng_a = component_rng(11, "ue-workload");
            let mut rng_b = component_rng(11, "ue-workload");
            for i in 0..500 {
                let fast = sampler.draw(&mut rng_a);
                let slow = match popularity {
                    ServicePopularity::Uniform => rng_b.random_range(0..6),
                    ServicePopularity::Zipf { exponent } => naive_draw(6, exponent, &mut rng_b),
                };
                assert_eq!(fast, slow, "draw {i} diverged under {popularity:?}");
            }
        }
    }

    #[test]
    fn sp_overrides_apply_and_validate() {
        let inst = ScenarioConfig::paper_defaults()
            .with_ues(20)
            .with_sp_override(SpOverride {
                sp: 2,
                cru_price: Money::new(9.5),
                other_cost: Money::new(0.5),
            })
            .build()
            .unwrap();
        assert!((inst.sps()[2].cru_price.get() - 9.5).abs() < 1e-12);
        assert!((inst.sps()[0].cru_price.get() - 9.0).abs() < 1e-12);
        // Dangling SP index is rejected.
        let err = ScenarioConfig::paper_defaults()
            .with_sp_override(SpOverride {
                sp: 99,
                cru_price: Money::new(9.0),
                other_cost: Money::new(1.0),
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnknownSp(_)));
        // An override violating constraint (16) is rejected by the
        // instance builder.
        let err = ScenarioConfig::paper_defaults()
            .with_ues(20)
            .with_sp_override(SpOverride {
                sp: 0,
                cru_price: Money::new(4.0),
                other_cost: Money::new(1.0),
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnprofitablePricing { .. }));
    }

    #[test]
    fn each_sp_owns_equal_bss() {
        let inst = ScenarioConfig::paper_defaults()
            .with_ues(10)
            .build()
            .unwrap();
        for k in 0..5u32 {
            let owned = inst.bss().iter().filter(|b| b.sp.index() == k).count();
            assert_eq!(owned, 5);
        }
    }

    #[test]
    fn with_iota_updates_pricing() {
        let cfg = ScenarioConfig::paper_defaults().with_iota(1.1);
        assert!((cfg.pricing.cross_sp_markup - 1.1).abs() < 1e-12);
    }
}
