//! Region sharding for the online engines.
//!
//! The paper's matcher is decentralized per base station, and Zeng &
//! Fodor's large-scale multi-cell framing (PAPERS.md) argues allocation
//! at millions of UEs must decompose spatially. This module supplies the
//! spatial half of that decomposition (DESIGN.md §13):
//!
//! * [`ShardGrid`] partitions the deployment region into a rows × cols
//!   grid of rectangular shards and routes each UE to the shard owning
//!   its position;
//! * every shard owns a [`ShardSlot`]: a full-deployment
//!   [`DeploymentContext`] whose spatial prune index is narrowed to the
//!   sites within the shard rectangle **plus a coverage-radius halo**
//!   ([`ShardGrid::keep_mask`]), so a UE routed anywhere inside the
//!   rectangle sees exactly the candidate BSs the unsharded build would
//!   — boundary-straddling coverage discs are mirrored into both shards'
//!   kept sets rather than split;
//! * shard workers (long-lived [`dmra_par::WorkerPool`] threads) build
//!   candidate rows for their batch; the coordinator merges the rows back
//!   into global UE order ([`merge_rows`]) and assembles the epoch
//!   instance with [`DeploymentContext::epoch_instance_prebuilt`].
//!
//! The allocator itself still solves the **merged** instance once per
//! epoch: coverage discs chain candidate graphs across shard seams and
//! BS budgets couple admissions globally, so per-shard solves could not
//! reproduce the unsharded matching. Sharding parallelizes the row
//! build — the dominant per-epoch cost at scale — and leaves the matcher
//! bit-identical by construction (`tests/sharding.rs` pins it).

use dmra_core::{CandidateLink, CoverageModel, DeltaInfo, DeploymentContext, ProblemInstance};
use dmra_obs::{Histogram, Registry};
use dmra_radio::{InterferenceModel, RadioConfig};
use dmra_types::{Cru, Error, Meters, Point, Rect, Result, RrbCount, UeId, UeSpec};
use std::sync::Arc;

/// Absorbs floating-point disagreement between [`ShardGrid::shard_of`]'s
/// cell arithmetic and the shard rectangle's edge coordinates: a UE
/// routed to a shard is guaranteed within this distance (in meters) of
/// the shard's rectangle, so a site mask built with this slack keeps
/// every BS the UE's prune query can hit. Over-inclusion is harmless —
/// the prune query re-checks exact distances.
const BOUNDARY_SLACK: f64 = 1e-6;

/// A rows × cols rectangular partition of the deployment region.
///
/// Shards are numbered row-major: shard `s` covers grid cell
/// `(s / cols, s % cols)`. Positions outside the region clamp to the
/// nearest edge shard, so routing is total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardGrid {
    rows: usize,
    cols: usize,
    region: Rect,
}

impl ShardGrid {
    /// Builds a rows × cols shard grid over the region.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when either dimension is zero.
    pub fn new(rows: usize, cols: usize, region: Rect) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(Error::InvalidConfig(format!(
                "shard grid must be at least 1×1, got {rows}×{cols}"
            )));
        }
        Ok(Self { rows, cols, region })
    }

    /// Builds a near-square grid with exactly `shards` cells: rows is the
    /// largest divisor of `shards` at most `√shards` (so 1 → 1×1, 2 →
    /// 1×2, 4 → 2×2, 6 → 2×3, 9 → 3×3; primes degrade to a 1×p strip).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `shards` is zero.
    pub fn for_count(shards: usize, region: Rect) -> Result<Self> {
        if shards == 0 {
            return Err(Error::InvalidConfig(
                "shard count must be at least 1".to_string(),
            ));
        }
        let mut rows = (shards as f64).sqrt().floor() as usize;
        rows = rows.clamp(1, shards);
        while rows > 1 && !shards.is_multiple_of(rows) {
            rows -= 1;
        }
        Self::new(rows, shards / rows, region)
    }

    /// Number of shard rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of shard columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }

    /// The shard owning a position (row-major cell id). Positions on a
    /// seam or outside the region clamp deterministically, so every UE
    /// has exactly one owner.
    #[must_use]
    pub fn shard_of(&self, p: Point) -> usize {
        let col = cell_of(p.x, self.region.min.x, self.region.max.x, self.cols);
        let row = cell_of(p.y, self.region.min.y, self.region.max.y, self.rows);
        row * self.cols + col
    }

    /// The rectangle of one shard (row-major id).
    #[must_use]
    pub fn shard_rect(&self, shard: usize) -> Rect {
        debug_assert!(shard < self.count());
        let (row, col) = (shard / self.cols, shard % self.cols);
        Rect {
            min: Point::new(
                edge_of(self.region.min.x, self.region.max.x, col, self.cols),
                edge_of(self.region.min.y, self.region.max.y, row, self.rows),
            ),
            max: Point::new(
                edge_of(self.region.min.x, self.region.max.x, col + 1, self.cols),
                edge_of(self.region.min.y, self.region.max.y, row + 1, self.rows),
            ),
        }
    }

    /// One flag per site: `true` iff the site lies within `halo` (plus
    /// [`BOUNDARY_SLACK`]) of the shard's rectangle. With `halo` set to
    /// the coverage/prune radius this is the **mirroring invariant**: for
    /// every UE routed to the shard, each BS its prune disc can reach is
    /// kept, so the shard-filtered context builds a row bit-identical to
    /// the unsharded one. Sites near a seam are kept by every adjacent
    /// shard (mirrored), never split.
    #[must_use]
    pub fn keep_mask(&self, shard: usize, sites: &[Point], halo: Meters) -> Vec<bool> {
        let rect = self.shard_rect(shard);
        let limit = halo.get() + BOUNDARY_SLACK;
        sites
            .iter()
            .map(|s| {
                let dx = (rect.min.x - s.x).max(s.x - rect.max.x).max(0.0);
                let dy = (rect.min.y - s.y).max(s.y - rect.max.y).max(0.0);
                dx.hypot(dy) <= limit
            })
            .collect()
    }
}

/// Clamped cell coordinate of `x` on one axis split into `n` cells.
fn cell_of(x: f64, min: f64, max: f64, n: usize) -> usize {
    if n == 1 || max <= min {
        return 0;
    }
    let t = ((x - min) / (max - min) * n as f64).floor();
    // The float→int cast saturates (NaN → 0), so out-of-region positions
    // clamp to an edge shard instead of panicking.
    (t as usize).min(n - 1)
}

/// The `k`-th of `n + 1` evenly spaced edge coordinates on one axis.
fn edge_of(min: f64, max: f64, k: usize, n: usize) -> f64 {
    min + (max - min) * k as f64 / n as f64
}

/// One shard's long-lived worker state: a full-deployment context whose
/// prune index is narrowed to the shard's kept sites, plus the worker's
/// private telemetry registry (recorded lock-free on the worker, merged
/// into the global registry after the run — the PR-3 sweep pattern).
pub(crate) struct ShardSlot {
    pub(crate) ctx: DeploymentContext,
    pub(crate) epoch_ns: Arc<Histogram>,
    // Keeps the registry alive; merged by the coordinator via the clone
    // returned from `build_slots`.
    #[allow(dead_code)]
    pub(crate) registry: Arc<Registry>,
}

/// One shard's built candidate rows, in shard-local UE order.
/// `row_start[u]..row_start[u + 1]` indexes local UE `u`'s links.
pub(crate) struct ShardRows {
    pub(crate) links: Vec<CandidateLink>,
    pub(crate) row_start: Vec<usize>,
    /// The shard build's churn metadata (shard-local UE slots, global BS
    /// indices), present when the shard context's row cache is on. The
    /// coordinator translates these into global dirty sets via
    /// [`stage_global_delta`] — shard-local slot cleanliness only implies
    /// global cleanliness while the routing is unchanged, which that
    /// helper checks.
    pub(crate) delta: Option<DeltaInfo>,
}

/// The epoch's remaining budgets, shared read-only with every worker.
pub(crate) struct EpochBudgets {
    pub(crate) cru: Vec<Vec<Cru>>,
    pub(crate) rrb: Vec<RrbCount>,
}

/// One worker's input for one epoch: the shared budgets and its routed,
/// locally re-numbered arrival batch.
pub(crate) type ShardJob = (Arc<EpochBudgets>, Vec<UeSpec>);

/// Rejects deployments whose candidate rows cannot be built per shard:
/// under load-proportional interference every row depends on the whole
/// arrival batch, which a shard-local build cannot see.
pub(crate) fn reject_interference(radio: &RadioConfig) -> Result<()> {
    match radio.interference {
        InterferenceModel::NoiseOnly => Ok(()),
        InterferenceModel::LoadProportional { .. } => Err(Error::InvalidConfig(
            "the region-sharded runtime requires the noise-only interference model; \
             under load-proportional interference every candidate row depends on the \
             whole arrival batch, which per-shard row builds cannot see"
                .to_string(),
        )),
    }
}

/// Builds one [`ShardSlot`] per shard: a context filtered to the shard's
/// kept sites (`with_cache` additionally enables the cross-epoch row
/// cache — the mobility regime), and a private registry holding the
/// `online.shard_epoch_ns` histogram. Returns the slots (for the worker
/// pool) and the registry handles (for the end-of-run merge).
pub(crate) fn build_slots(
    deployment: &ProblemInstance,
    grid: &ShardGrid,
    with_cache: bool,
) -> (Vec<ShardSlot>, Vec<Arc<Registry>>) {
    // The halo is the prune radius: every BS a shard-resident UE's
    // coverage disc can reach. Without a fixed radius there is no prune
    // index and the filter is a no-op — every shard scans exhaustively.
    let halo = match deployment.coverage() {
        CoverageModel::FixedRadius(r) => r,
        CoverageModel::MinPerRrbRate(_) => Meters::new(0.0),
    };
    let sites: Vec<Point> = deployment.bss().iter().map(|b| b.position).collect();
    let mut slots = Vec::with_capacity(grid.count());
    let mut registries = Vec::with_capacity(grid.count());
    for shard in 0..grid.count() {
        let keep = grid.keep_mask(shard, &sites, halo);
        let mut ctx = DeploymentContext::new(deployment);
        if with_cache {
            ctx = ctx.with_row_cache();
        }
        let ctx = ctx.with_site_filter(&keep);
        let registry = Arc::new(Registry::new());
        let epoch_ns = registry.histogram("online.shard_epoch_ns");
        slots.push(ShardSlot {
            ctx,
            epoch_ns,
            registry: Arc::clone(&registry),
        });
        registries.push(registry);
    }
    (slots, registries)
}

/// The per-epoch worker job shared by both sharded engines: build the
/// shard's epoch instance against the shared budgets and copy out its
/// candidate rows (shard-local UE order). Records the build's wall time
/// into the shard's private `online.shard_epoch_ns` histogram.
pub(crate) fn row_build_worker(
    obs_on: bool,
) -> impl Fn(usize, &mut ShardSlot, ShardJob) -> Result<ShardRows> + Clone + Send + Sync + 'static {
    move |_shard, slot, (budgets, ues)| {
        let started = obs_on.then(std::time::Instant::now);
        let n_local = ues.len();
        let instance = slot.ctx.epoch_instance(&budgets.cru, &budgets.rrb, ues)?;
        let mut rows = ShardRows {
            links: Vec::new(),
            row_start: Vec::with_capacity(n_local + 1),
            delta: instance.delta().cloned(),
        };
        rows.row_start.push(0);
        for u in 0..n_local {
            rows.links
                .extend_from_slice(instance.candidates(UeId::new(u as u32)));
            rows.row_start.push(rows.links.len());
        }
        if let Some(t) = started {
            slot.epoch_ns
                .record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        Ok(rows)
    }
}

/// Routes a global arrival batch to shards: returns each UE's owner (in
/// global order) and the per-shard batches, re-numbered densely per
/// shard. Routing preserves global order within each shard, so the
/// merged rows come back out in global order via [`merge_rows`] — and a
/// stationary UE keeps a stable shard-local index epoch over epoch,
/// which is what keeps the per-shard row caches hitting.
pub(crate) fn route(grid: &ShardGrid, ues: &[UeSpec]) -> (Vec<usize>, Vec<Vec<UeSpec>>) {
    let mut owners = Vec::with_capacity(ues.len());
    let mut batches: Vec<Vec<UeSpec>> = (0..grid.count()).map(|_| Vec::new()).collect();
    for ue in ues {
        let shard = grid.shard_of(ue.position);
        owners.push(shard);
        let mut local = *ue;
        local.id = UeId::new(batches[shard].len() as u32);
        batches[shard].push(local);
    }
    (owners, batches)
}

/// Merges per-shard rows back into global UE order: walks the owners in
/// global order with one cursor per shard, appending each UE's row. The
/// result is exactly what the unsharded context's own scan would produce
/// (the shard contexts see identical candidate BSs by the mirroring
/// invariant), ready for `epoch_instance_prebuilt`.
pub(crate) fn merge_rows(
    owners: &[usize],
    rows: &[ShardRows],
    links: &mut Vec<CandidateLink>,
    row_start: &mut Vec<usize>,
) {
    links.clear();
    row_start.clear();
    row_start.push(0);
    let mut cursors = vec![0usize; rows.len()];
    for &shard in owners {
        let r = &rows[shard];
        let u = cursors[shard];
        links.extend_from_slice(&r.links[r.row_start[u]..r.row_start[u + 1]]);
        row_start.push(links.len());
        cursors[shard] += 1;
    }
}

/// Cross-epoch tracker translating per-shard [`DeltaInfo`] into the
/// coordinator context's **global** dirty sets (DESIGN.md §17).
///
/// Shard-local slot `u` of shard `s` names the same global UE in two
/// consecutive epochs **only while the routing is unchanged**: re-routing
/// renumbers the shard batches under the shard caches' feet, and a mover
/// swapping into a slot whose cached key it happens to match would read
/// as "clean" locally while the global batch changed (the occupancy-swap
/// hazard). So the local→global translation runs only when every shard
/// reported a continuous delta lineage (same shard context, consecutive
/// sequence number) *and* the owners vector is element-wise unchanged;
/// any other epoch is staged fully dirty, which costs a full re-solve —
/// never a stale replay. The staged metadata is carried under the
/// coordinator context's own lineage, so the delta solver's continuity
/// guard composes unchanged.
pub(crate) struct DeltaTracker {
    prev_owners: Vec<usize>,
    /// Per shard: the previous epoch's `(ctx_id, seq)`, or `None` when
    /// the shard did not report a delta.
    lineages: Vec<Option<(u64, u64)>>,
    /// Whether a previous epoch has been observed at all.
    primed: bool,
}

impl DeltaTracker {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            prev_owners: Vec::new(),
            lineages: vec![None; shards],
            primed: false,
        }
    }

    /// Merges the shards' dirty sets into global ones and stages them on
    /// the coordinator context for its next
    /// [`DeploymentContext::epoch_instance_prebuilt`] call. `owners` is
    /// this epoch's routing (from [`route`]), `rows` the workers' builds,
    /// `n_bss` the deployment's BS count (sizing the full-dirty
    /// fallback).
    pub(crate) fn stage(
        &mut self,
        asm: &mut DeploymentContext,
        owners: &[usize],
        rows: &[ShardRows],
        n_bss: usize,
    ) {
        let continuous = self.primed
            && *owners == self.prev_owners
            && rows
                .iter()
                .zip(&self.lineages)
                .all(|(r, lin)| match (&r.delta, lin) {
                    (Some(d), Some((ctx, seq))) => d.ctx_id == *ctx && d.seq == seq + 1,
                    _ => false,
                });
        let dirty = if continuous {
            // Walk the owners in global order with one cursor per shard
            // (exactly the `merge_rows` walk); each shard's dirty list is
            // ascending in local slots, so a second per-shard cursor
            // turns membership tests into O(1) pointer advances.
            let mut dirty_ues = Vec::new();
            let mut cursors = vec![0u32; rows.len()];
            let mut dirty_pos = vec![0usize; rows.len()];
            for (g, &s) in owners.iter().enumerate() {
                let d = rows[s].delta.as_ref().expect("checked continuous");
                let u = cursors[s];
                cursors[s] += 1;
                if d.dirty_ues.get(dirty_pos[s]) == Some(&u) {
                    dirty_pos[s] += 1;
                    dirty_ues.push(g as u32);
                }
            }
            // BS indices are already global in every shard's delta (shard
            // contexts are full-deployment, only site-filtered), and all
            // shards observe the same budget arrays — union for safety.
            let mut dirty_bss: Vec<u32> = Vec::new();
            for r in rows {
                dirty_bss
                    .extend_from_slice(&r.delta.as_ref().expect("checked continuous").dirty_bss);
            }
            dirty_bss.sort_unstable();
            dirty_bss.dedup();
            (dirty_ues, dirty_bss)
        } else {
            (
                (0..owners.len() as u32).collect(),
                (0..n_bss as u32).collect(),
            )
        };
        asm.stage_delta(Some(dirty));
        self.prev_owners.clear();
        self.prev_owners.extend_from_slice(owners);
        for (lin, r) in self.lineages.iter_mut().zip(rows) {
            *lin = r.delta.as_ref().map(|d| (d.ctx_id, d.seq));
        }
        self.primed = true;
    }
}

/// Folds every shard's private registry into the global one (counters
/// and histograms add, gauges max) and resets the privates, so a
/// `--trace-out` snapshot taken after the run carries the per-shard
/// `online.shard_epoch_ns` samples.
pub(crate) fn merge_registries(registries: &[Arc<Registry>]) {
    for registry in registries {
        dmra_obs::global().merge(registry);
        registry.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmra_types::SpId;

    fn region(side: f64) -> Rect {
        Rect {
            min: Point::new(0.0, 0.0),
            max: Point::new(side, side),
        }
    }

    #[test]
    fn for_count_factors_near_square() {
        for (n, rows, cols) in [
            (1, 1, 1),
            (2, 1, 2),
            (4, 2, 2),
            (6, 2, 3),
            (9, 3, 3),
            (12, 3, 4),
            (7, 1, 7),
        ] {
            let g = ShardGrid::for_count(n, region(1200.0)).unwrap();
            assert_eq!((g.rows(), g.cols()), (rows, cols), "n = {n}");
            assert_eq!(g.count(), n);
        }
        assert!(ShardGrid::for_count(0, region(1200.0)).is_err());
        assert!(ShardGrid::new(0, 3, region(1200.0)).is_err());
    }

    #[test]
    fn every_point_routes_to_the_shard_containing_it() {
        let g = ShardGrid::new(3, 4, region(1200.0)).unwrap();
        let mut seen = vec![false; g.count()];
        for i in 0..60 {
            for j in 0..60 {
                let p = Point::new(i as f64 * 20.0 + 0.5, j as f64 * 20.0 + 0.5);
                let s = g.shard_of(p);
                seen[s] = true;
                let rect = g.shard_rect(s);
                assert!(
                    p.x >= rect.min.x - BOUNDARY_SLACK
                        && p.x <= rect.max.x + BOUNDARY_SLACK
                        && p.y >= rect.min.y - BOUNDARY_SLACK
                        && p.y <= rect.max.y + BOUNDARY_SLACK,
                    "({}, {}) routed to shard {s} outside its rect",
                    p.x,
                    p.y
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "some shard never owned a point");
    }

    #[test]
    fn out_of_region_and_seam_points_clamp_deterministically() {
        let g = ShardGrid::new(2, 2, region(1000.0)).unwrap();
        // Far outside: clamps to corner shards.
        assert_eq!(g.shard_of(Point::new(-50.0, -50.0)), 0);
        assert_eq!(g.shard_of(Point::new(2000.0, 2000.0)), 3);
        // The exact max corner belongs to the last shard, not one past it.
        assert_eq!(g.shard_of(Point::new(1000.0, 1000.0)), 3);
        // A seam point has exactly one owner.
        let s = g.shard_of(Point::new(500.0, 250.0));
        assert!(s == 0 || s == 1);
    }

    #[test]
    fn keep_mask_is_the_rect_distance_within_halo() {
        let g = ShardGrid::new(2, 2, region(1000.0)).unwrap();
        // Shard 0 covers [0, 500] × [0, 500].
        let sites = vec![
            Point::new(100.0, 100.0), // inside
            Point::new(799.0, 100.0), // 299 m beyond the east edge
            Point::new(801.0, 100.0), // 301 m beyond
            Point::new(712.0, 712.0), // ~300 m diagonal from the corner
            Point::new(713.0, 713.0), // just past the diagonal halo
        ];
        let mask = g.keep_mask(0, &sites, Meters::new(300.0));
        assert_eq!(mask, vec![true, true, false, true, false]);
        // Zero halo keeps only sites inside (or on) the rectangle.
        let tight = g.keep_mask(0, &sites, Meters::new(0.0));
        assert_eq!(tight, vec![true, false, false, false, false]);
    }

    #[test]
    fn seam_sites_are_mirrored_into_both_shards() {
        let g = ShardGrid::new(1, 2, region(1000.0)).unwrap();
        let seam_site = vec![Point::new(500.0, 250.0)];
        let halo = Meters::new(300.0);
        assert!(g.keep_mask(0, &seam_site, halo)[0]);
        assert!(g.keep_mask(1, &seam_site, halo)[0]);
    }

    #[test]
    fn route_preserves_global_order_and_renumbers_densely() {
        let g = ShardGrid::new(1, 2, region(1000.0)).unwrap();
        let spec = |id: u32, x: f64| {
            UeSpec::new(
                UeId::new(id),
                SpId::new(0),
                Point::new(x, 100.0),
                dmra_types::ServiceId::new(0),
                Cru::new(1),
                dmra_types::BitsPerSec::from_mbps(1.0),
                dmra_types::Dbm::new(20.0),
            )
        };
        let ues = vec![
            spec(0, 100.0),
            spec(1, 900.0),
            spec(2, 200.0),
            spec(3, 800.0),
        ];
        let (owners, batches) = route(&g, &ues);
        assert_eq!(owners, vec![0, 1, 0, 1]);
        // Global order preserved per shard, ids re-numbered densely.
        assert_eq!(
            batches[0].iter().map(|u| u.position.x).collect::<Vec<_>>(),
            vec![100.0, 200.0]
        );
        assert_eq!(
            batches[1].iter().map(|u| u.position.x).collect::<Vec<_>>(),
            vec![900.0, 800.0]
        );
        for batch in &batches {
            for (i, u) in batch.iter().enumerate() {
                assert_eq!(u.id.as_usize(), i);
            }
        }
    }

    #[test]
    fn merge_rows_restores_global_order() {
        let link = |bs: u32, d: f64| CandidateLink {
            bs: dmra_types::BsId::new(bs),
            distance: Meters::new(d),
            sinr_linear: 1.0,
            per_rrb_rate: dmra_types::BitsPerSec::from_mbps(1.0),
            n_rrbs: RrbCount::new(1),
            price: dmra_types::Money::new(1.0),
            same_sp: true,
        };
        // Shard 0 holds global UEs 0 and 2; shard 1 holds global UE 1.
        let rows = vec![
            ShardRows {
                links: vec![link(0, 10.0), link(1, 20.0), link(2, 30.0)],
                row_start: vec![0, 2, 3],
                delta: None,
            },
            ShardRows {
                links: vec![link(3, 40.0)],
                row_start: vec![0, 1],
                delta: None,
            },
        ];
        let owners = vec![0, 1, 0];
        let (mut links, mut starts) = (Vec::new(), Vec::new());
        merge_rows(&owners, &rows, &mut links, &mut starts);
        assert_eq!(starts, vec![0, 2, 3, 4]);
        let got: Vec<u32> = links.iter().map(|l| l.bs.index()).collect();
        assert_eq!(got, vec![0, 1, 3, 2]);
    }
}
