//! The quantities the paper's figures plot, plus utilization diagnostics.

use dmra_core::{Allocation, ProblemInstance};
use dmra_types::Money;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Metrics of one allocation on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// `Σ_k W_k` — the TPM objective (Figs. 2–6).
    pub total_profit: Money,
    /// Per-SP profit `W_k`, ordered by SP id.
    pub per_sp_profit: Vec<Money>,
    /// Total demand forwarded to the cloud in Mbit/s (Fig. 7).
    pub forwarded_load_mbps: f64,
    /// UEs served at the edge.
    pub edge_served: usize,
    /// UEs forwarded to the cloud.
    pub cloud_forwarded: usize,
    /// Fraction of UEs served at the edge.
    pub served_fraction: f64,
    /// Fraction of edge-served UEs on their own SP's BSs.
    pub same_sp_fraction: f64,
    /// Fraction of all RRBs (across BSs) in use.
    pub rrb_utilization: f64,
    /// Fraction of all CRUs (across BSs and services) in use.
    pub cru_utilization: f64,
    /// Jain's fairness index over the per-SP profits (1 = perfectly even,
    /// 1/|ς| = one SP takes everything). The paper optimises the *sum*;
    /// this quantifies who the sum is made of.
    pub sp_fairness: f64,
}

impl Metrics {
    /// Computes all metrics for `allocation` on `instance`.
    ///
    /// # Panics
    ///
    /// Panics if the allocation uses non-candidate links (validate first).
    #[must_use]
    pub fn compute(instance: &ProblemInstance, allocation: &Allocation) -> Self {
        let report = instance.profit_report(allocation);
        let stats = allocation.stats(instance);

        let rrb_capacity: f64 = instance.bss().iter().map(|b| b.rrb_budget.as_f64()).sum();
        let rrb_remaining: f64 = instance
            .remaining_rrbs(allocation)
            .iter()
            .map(|r| r.as_f64())
            .sum();
        let cru_capacity: f64 = instance
            .bss()
            .iter()
            .flat_map(|b| b.cru_budget.iter())
            .map(|c| c.as_f64())
            .sum();
        let cru_remaining: f64 = instance
            .remaining_cru(allocation)
            .iter()
            .flatten()
            .map(|c| c.as_f64())
            .sum();

        let per_sp_profit: Vec<Money> = report.per_sp.iter().map(|p| p.profit()).collect();
        let sp_fairness = jain_index(&per_sp_profit);
        Self {
            total_profit: report.total_profit(),
            per_sp_profit,
            forwarded_load_mbps: instance.forwarded_load(allocation).to_mbps(),
            edge_served: stats.edge_served,
            cloud_forwarded: stats.cloud_forwarded,
            served_fraction: stats.edge_fraction(),
            same_sp_fraction: stats.same_sp_fraction(),
            rrb_utilization: utilization(rrb_capacity, rrb_remaining),
            cru_utilization: utilization(cru_capacity, cru_remaining),
            sp_fairness,
        }
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1 for equal shares.
fn jain_index(values: &[Money]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().map(|v| v.get()).sum();
    let sq_sum: f64 = values.iter().map(|v| v.get() * v.get()).sum();
    if sq_sum <= 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sq_sum)
}

fn utilization(capacity: f64, remaining: f64) -> f64 {
    if capacity <= 0.0 {
        0.0
    } else {
        1.0 - remaining / capacity
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total profit:     {:.2}", self.total_profit.get())?;
        writeln!(
            f,
            "edge served:      {} ({:.1}%)",
            self.edge_served,
            self.served_fraction * 100.0
        )?;
        writeln!(f, "cloud forwarded:  {}", self.cloud_forwarded)?;
        writeln!(
            f,
            "forwarded load:   {:.1} Mbit/s",
            self.forwarded_load_mbps
        )?;
        writeln!(f, "same-SP attach:   {:.1}%", self.same_sp_fraction * 100.0)?;
        writeln!(f, "RRB utilization:  {:.1}%", self.rrb_utilization * 100.0)?;
        writeln!(f, "CRU utilization:  {:.1}%", self.cru_utilization * 100.0)?;
        write!(f, "SP fairness:      {:.3}", self.sp_fairness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use dmra_core::{Allocator, Dmra};

    fn instance() -> ProblemInstance {
        ScenarioConfig::paper_defaults()
            .with_ues(120)
            .with_seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn all_cloud_metrics_are_zeroes() {
        let inst = instance();
        let m = Metrics::compute(&inst, &Allocation::all_cloud(inst.n_ues()));
        assert_eq!(m.total_profit.get(), 0.0);
        assert_eq!(m.edge_served, 0);
        assert_eq!(m.cloud_forwarded, 120);
        assert_eq!(m.served_fraction, 0.0);
        assert_eq!(m.rrb_utilization, 0.0);
        assert_eq!(m.cru_utilization, 0.0);
        assert!(m.forwarded_load_mbps > 0.0);
    }

    #[test]
    fn dmra_metrics_are_consistent() {
        let inst = instance();
        let alloc = Dmra::default().allocate(&inst);
        let m = Metrics::compute(&inst, &alloc);
        assert_eq!(m.edge_served + m.cloud_forwarded, 120);
        assert!(m.total_profit.get() > 0.0);
        assert!(m.rrb_utilization > 0.0 && m.rrb_utilization <= 1.0);
        assert!(m.cru_utilization > 0.0 && m.cru_utilization <= 1.0);
        // Per-SP profits sum to the total.
        let sum: f64 = m.per_sp_profit.iter().map(|p| p.get()).sum();
        assert!((sum - m.total_profit.get()).abs() < 1e-6);
        // With 5 SPs an SP-blind matcher attaches same-SP ~20% of the
        // time; DMRA's price and same-SP preferences must lift that well
        // above the base rate (the exact value depends on how many
        // same-SP candidates the 300 m coverage radius leaves each UE).
        assert!(m.same_sp_fraction > 0.3, "{}", m.same_sp_fraction);
    }

    #[test]
    fn fairness_index_behaves() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[Money::new(0.0), Money::new(0.0)]), 1.0);
        let even = jain_index(&[Money::new(5.0), Money::new(5.0), Money::new(5.0)]);
        assert!((even - 1.0).abs() < 1e-12);
        let skewed = jain_index(&[Money::new(15.0), Money::new(0.0), Money::new(0.0)]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dmra_fairness_is_reasonable_on_symmetric_scenarios() {
        // All SPs are statistically identical, so profits should be fairly
        // even (index well above the 1/5 = 0.2 monopoly floor).
        let inst = instance();
        let alloc = Dmra::default().allocate(&inst);
        let m = Metrics::compute(&inst, &alloc);
        assert!(m.sp_fairness > 0.8, "fairness {}", m.sp_fairness);
        assert!(m.sp_fairness <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_allocation_on_empty_instance_is_all_zero() {
        // Zero UEs: every ratio must take its guarded branch (0, not NaN).
        let inst = ScenarioConfig::paper_defaults()
            .with_ues(0)
            .with_seed(11)
            .build()
            .unwrap();
        let m = Metrics::compute(&inst, &Allocation::all_cloud(0));
        assert_eq!(m.total_profit.get(), 0.0);
        assert!(m.per_sp_profit.iter().all(|p| p.get() == 0.0));
        assert_eq!(m.edge_served, 0);
        assert_eq!(m.cloud_forwarded, 0);
        assert_eq!(m.forwarded_load_mbps, 0.0);
        assert_eq!(m.served_fraction, 0.0);
        assert_eq!(m.same_sp_fraction, 0.0);
        assert_eq!(m.rrb_utilization, 0.0);
        assert_eq!(m.cru_utilization, 0.0);
        assert_eq!(m.sp_fairness, 1.0);
        assert!(!m.served_fraction.is_nan() && !m.sp_fairness.is_nan());
    }

    #[test]
    fn all_cloud_instance_forwards_everything_with_unit_fairness() {
        // Drain every BS budget to zero: no UE has a feasible candidate,
        // so DMRA itself produces the all-cloud allocation and every SP
        // earns exactly zero (Jain index degenerates to 1 by convention).
        let base = instance();
        let zero_cru: Vec<Vec<dmra_types::Cru>> = base
            .bss()
            .iter()
            .map(|b| vec![dmra_types::Cru::ZERO; b.cru_budget.len()])
            .collect();
        let zero_rrb = vec![dmra_types::RrbCount::ZERO; base.n_bss()];
        let ues = base.ues().to_vec();
        let inst = base.residual(&zero_cru, &zero_rrb, ues).unwrap();
        let alloc = Dmra::default().allocate(&inst);
        assert_eq!(alloc.edge_served(), 0);
        let m = Metrics::compute(&inst, &alloc);
        assert_eq!(m.cloud_forwarded, inst.n_ues());
        assert_eq!(m.total_profit.get(), 0.0);
        assert!(m.forwarded_load_mbps > 0.0);
        assert_eq!(m.sp_fairness, 1.0);
    }

    #[test]
    fn single_sp_fairness_is_exactly_one() {
        // With one SP, Jain's index is (x²)/(1·x²) = 1 whenever the SP
        // earns anything at all — the fairness axis degenerates.
        let mut cfg = ScenarioConfig::paper_defaults().with_ues(80).with_seed(3);
        cfg.n_sps = 1;
        // Keep the 5×5 grid fully populated: one SP now owns all 25 sites.
        cfg.bss_per_sp = 25;
        let inst = cfg.build().unwrap();
        let alloc = Dmra::default().allocate(&inst);
        let m = Metrics::compute(&inst, &alloc);
        assert_eq!(m.per_sp_profit.len(), 1);
        assert!(m.total_profit.get() > 0.0);
        assert!((m.sp_fairness - 1.0).abs() < 1e-12);
        // Every edge attachment is trivially same-SP.
        assert!((m.same_sp_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "candidate links")]
    fn non_candidate_link_panics_as_documented() {
        // `Metrics::compute` documents a panic when the allocation uses a
        // link outside the candidate set — pin the message so the contract
        // stays honest.
        let inst = instance();
        // UE 0 cannot be a candidate of every BS under 300 m coverage;
        // find a BS it is *not* a candidate of and force-assign it there.
        let ue = dmra_types::UeId::new(0);
        let bogus = (0..inst.n_bss())
            .map(|b| dmra_types::BsId::new(b as u32))
            .find(|&b| inst.link(ue, b).is_none())
            .expect("UE 0 must have at least one non-candidate BS");
        let mut assigned = vec![None; inst.n_ues()];
        assigned[0] = Some(bogus);
        let _ = Metrics::compute(&inst, &Allocation::from_assignments(assigned));
    }

    #[test]
    fn display_mentions_all_headlines() {
        let inst = instance();
        let alloc = Dmra::default().allocate(&inst);
        let text = Metrics::compute(&inst, &alloc).to_string();
        for needle in ["total profit", "forwarded load", "RRB utilization"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
