//! Erlang-B analytics for the online regime.
//!
//! The dynamic simulator ([`crate::dynamic`]) is an M/G/c/c-style
//! loss system: tasks arrive Poisson, hold an integer number of RRBs for a
//! geometric time, and blocked tasks are cleared to the cloud. Classic
//! teletraffic theory predicts the blocking probability of such a system
//! with the **Erlang-B formula**; this module implements it and derives
//! the effective server count of a DMRA deployment, giving an independent
//! analytic cross-check of the simulator (tested in
//! `blocking_prediction_matches_simulation`).
//!
//! The approximation pools all BSs into one trunk (each UE sees several
//! BSs at the default 300 m coverage radius, and DMRA's ρ term actively
//! balances load), so it is closest at high overlap and slightly
//! optimistic at low overlap.

use crate::config::ScenarioConfig;
use dmra_types::{Result, UeId};

/// The Erlang-B blocking probability for `servers` servers offered
/// `offered_erlangs` of traffic.
///
/// Uses the numerically stable recursion
/// `B(0) = 1`, `B(c) = a·B(c−1) / (c + a·B(c−1))`.
///
/// # Examples
///
/// ```
/// # use dmra_sim::erlang::erlang_b;
/// // Classic table value: 10 servers at 5 erlang ≈ 1.84% blocking.
/// let b = erlang_b(10, 5.0);
/// assert!((b - 0.0184).abs() < 5e-4);
/// // No servers: everything blocks.
/// assert_eq!(erlang_b(0, 3.0), 1.0);
/// ```
#[must_use]
pub fn erlang_b(servers: u32, offered_erlangs: f64) -> f64 {
    if offered_erlangs <= 0.0 {
        return 0.0;
    }
    let a = offered_erlangs;
    let mut b = 1.0;
    for c in 1..=servers {
        b = a * b / (f64::from(c) + a * b);
    }
    b
}

/// Inverse problem: the smallest server count keeping blocking at or
/// below `target` for the given offered load.
///
/// # Panics
///
/// Panics if `target` is not in `(0, 1]`.
#[must_use]
pub fn servers_for_blocking(offered_erlangs: f64, target: f64) -> u32 {
    assert!(
        target > 0.0 && target <= 1.0,
        "target blocking must be in (0, 1]"
    );
    let mut c = 0u32;
    let mut b = 1.0;
    let a = offered_erlangs.max(0.0);
    if a == 0.0 {
        return 0;
    }
    while b > target {
        c += 1;
        b = a * b / (f64::from(c) + a * b);
        if c > 10_000_000 {
            break;
        }
    }
    c
}

/// Analytic description of a deployment as an Erlang loss system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrunkModel {
    /// Effective pooled server count: total RRBs across BSs divided by the
    /// mean per-task RRB demand at the best candidate.
    pub servers: u32,
    /// Mean RRBs one task consumes (sampled over the UE distribution).
    pub mean_rrbs_per_task: f64,
}

impl TrunkModel {
    /// Estimates the trunk model of a scenario by sampling `samples`
    /// synthetic UEs and averaging their cheapest-RRB candidate demand.
    ///
    /// # Errors
    ///
    /// Propagates scenario build errors.
    pub fn estimate(scenario: &ScenarioConfig, samples: usize, seed: u64) -> Result<Self> {
        let instance = scenario.clone().with_ues(samples).with_seed(seed).build()?;
        let mut total_n = 0.0;
        let mut counted = 0usize;
        for u in 0..instance.n_ues() {
            let best = instance
                .candidates(UeId::new(u as u32))
                .iter()
                .map(|l| l.n_rrbs.get())
                .min();
            if let Some(n) = best {
                total_n += f64::from(n);
                counted += 1;
            }
        }
        let mean = if counted == 0 {
            1.0
        } else {
            total_n / counted as f64
        };
        let total_rrbs: f64 = instance.bss().iter().map(|b| b.rrb_budget.as_f64()).sum();
        Ok(Self {
            servers: (total_rrbs / mean).floor() as u32,
            mean_rrbs_per_task: mean,
        })
    }

    /// Predicted blocking for Poisson arrivals at `rate` per epoch and a
    /// mean holding time of `mean_holding` epochs.
    ///
    /// Clamps the holding mean to the simulator's validated `≥ 1 epoch`
    /// contract ([`crate::dynamic::DynamicConfig::validate`]): every
    /// admitted task occupies its resources for at least one full epoch,
    /// so offered load can never fall below `rate` erlangs. (The old
    /// `max(0.0)` clamp let the prediction drop below what any simulation
    /// could realize at the `mean_holding ≤ 1` boundary.)
    #[must_use]
    pub fn predicted_blocking(&self, rate: f64, mean_holding: f64) -> f64 {
        erlang_b(self.servers, rate * mean_holding.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};

    #[test]
    fn erlang_b_matches_table_values() {
        // Values from standard Erlang-B tables.
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
        assert!((erlang_b(10, 5.0) - 0.018385).abs() < 1e-4);
        assert!((erlang_b(100, 90.0) - 0.026957).abs() < 1e-5);
    }

    #[test]
    fn erlang_b_edge_cases() {
        assert_eq!(erlang_b(5, 0.0), 0.0);
        assert_eq!(erlang_b(0, 2.0), 1.0);
        // Monotone: more load blocks more, more servers block less.
        assert!(erlang_b(10, 8.0) > erlang_b(10, 4.0));
        assert!(erlang_b(20, 8.0) < erlang_b(10, 8.0));
    }

    #[test]
    fn inverse_dimensioning_is_consistent() {
        for &(a, target) in &[(5.0, 0.02), (50.0, 0.01), (200.0, 0.05)] {
            let c = servers_for_blocking(a, target);
            assert!(erlang_b(c, a) <= target);
            if c > 0 {
                assert!(erlang_b(c - 1, a) > target);
            }
        }
        assert_eq!(servers_for_blocking(0.0, 0.01), 0);
    }

    #[test]
    fn trunk_model_matches_first_principles() {
        let model = TrunkModel::estimate(&ScenarioConfig::paper_defaults(), 400, 3).unwrap();
        // 25 BSs × 55 RRBs = 1375 RRBs; tasks need 1–2 RRBs at their best
        // candidate ⇒ roughly 700–1300 effective servers.
        assert!(
            (700..=1375).contains(&model.servers),
            "servers = {}",
            model.servers
        );
        assert!(model.mean_rrbs_per_task >= 1.0 && model.mean_rrbs_per_task <= 2.0);
    }

    #[test]
    fn blocking_prediction_matches_simulation() {
        // Offered load near and above capacity; compare analytic blocking
        // with the simulated cloud-forward ratio.
        let scenario = ScenarioConfig::paper_defaults();
        let model = TrunkModel::estimate(&scenario, 400, 3).unwrap();
        for rate in [150.0, 250.0, 350.0] {
            let predicted = model.predicted_blocking(rate, 5.0);
            let sim = DynamicSimulator::new(DynamicConfig {
                scenario: scenario.clone(),
                arrival_rate: rate,
                mean_holding: 5.0,
                holding: HoldingDistribution::Geometric,
                epochs: 120,
                seed: 11,
            })
            .run()
            .unwrap();
            let simulated = 1.0 - sim.admission_ratio();
            assert!(
                (predicted - simulated).abs() < 0.10,
                "rate {rate}: predicted {predicted:.3} vs simulated {simulated:.3}"
            );
        }
    }

    #[test]
    fn holding_boundary_matches_the_simulator_contract() {
        // Regression for the `mean_holding ≤ 1` boundary: the simulator
        // validates holding means to ≥ 1 epoch and the prediction clamps
        // the same way, so sub-epoch inputs predict exactly the 1-epoch
        // load instead of an unreachable lighter one.
        let model = TrunkModel {
            servers: 100,
            mean_rrbs_per_task: 1.0,
        };
        let rate = 120.0;
        assert_eq!(
            model.predicted_blocking(rate, 0.5),
            model.predicted_blocking(rate, 1.0)
        );
        assert_eq!(
            model.predicted_blocking(rate, 0.0),
            model.predicted_blocking(rate, 1.0)
        );
        // The old `max(0.0)` clamp predicted materially less blocking at
        // 0.5 epochs — a load no simulation run can produce.
        assert!(erlang_b(model.servers, rate * 0.5) < model.predicted_blocking(rate, 0.5));
    }

    #[test]
    fn blocking_prediction_matches_simulation_at_the_one_epoch_boundary() {
        // mean_holding = 1.0 is the smallest validated value: every task
        // holds exactly one epoch under geometric holding (p = 1 ⇒ no
        // extra epochs), so offered load is exactly `rate` erlangs.
        let scenario = ScenarioConfig::paper_defaults();
        let model = TrunkModel::estimate(&scenario, 400, 3).unwrap();
        for rate in [900.0, 1400.0] {
            let predicted = model.predicted_blocking(rate, 1.0);
            let sim = DynamicSimulator::new(DynamicConfig {
                scenario: scenario.clone(),
                arrival_rate: rate,
                mean_holding: 1.0,
                holding: HoldingDistribution::Geometric,
                epochs: 60,
                seed: 13,
            })
            .run_event()
            .unwrap();
            let simulated = 1.0 - sim.admission_ratio();
            assert!(
                (predicted - simulated).abs() < 0.10,
                "rate {rate}: predicted {predicted:.3} vs simulated {simulated:.3}"
            );
        }
    }

    #[test]
    fn blocking_prediction_holds_under_exponential_holding() {
        // Erlang-B is insensitive to the service distribution given its
        // mean — but the *discrete* occupancy of a continuous Exp(mean)
        // holding time is ceil(h), whose mean is 1/(1 − e^(−1/mean))
        // (≈ mean + ½). Compare the simulation against the prediction at
        // that effective mean (DESIGN.md §11 derives the correction).
        let scenario = ScenarioConfig::paper_defaults();
        let model = TrunkModel::estimate(&scenario, 400, 3).unwrap();
        let mean = 5.0f64;
        let effective = 1.0 / (1.0 - (-1.0 / mean).exp());
        for rate in [250.0, 350.0] {
            let predicted = model.predicted_blocking(rate, effective);
            let sim = DynamicSimulator::new(DynamicConfig {
                scenario: scenario.clone(),
                arrival_rate: rate,
                mean_holding: mean,
                holding: HoldingDistribution::Exponential,
                epochs: 120,
                seed: 17,
            })
            .run_event()
            .unwrap();
            let simulated = 1.0 - sim.admission_ratio();
            assert!(
                (predicted - simulated).abs() < 0.10,
                "rate {rate}: predicted {predicted:.3} vs simulated {simulated:.3}"
            );
        }
    }
}
