//! The strategy interface shared by DMRA and every baseline.

use crate::allocation::Allocation;
use crate::instance::ProblemInstance;

/// An algorithm that assigns a batch of UEs to BSs (or the cloud).
///
/// The trait is object-safe so sweeps can iterate over
/// `Vec<Box<dyn Allocator>>`; implementations must be deterministic given
/// their own configuration (randomized baselines carry an explicit seed).
/// `Send + Sync` is a supertrait so the sweep engine can share allocators
/// across its worker threads — allocators are plain configuration data,
/// so this costs implementations nothing.
///
/// Implementations must return allocations that pass
/// [`Allocation::validate`] on the same instance — the test suites of
/// `dmra-core` and `dmra-baselines` enforce this for every algorithm.
pub trait Allocator: Send + Sync {
    /// A short human-readable name ("DMRA", "DCSP", "NonCo", …) used in
    /// figure legends and reports.
    fn name(&self) -> &str;

    /// Computes an assignment for the instance.
    fn allocate(&self, instance: &ProblemInstance) -> Allocation;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CloudEverything;

    impl Allocator for CloudEverything {
        fn name(&self) -> &str {
            "cloud-everything"
        }
        fn allocate(&self, instance: &ProblemInstance) -> Allocation {
            Allocation::all_cloud(instance.n_ues())
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Allocator> = Box::new(CloudEverything);
        assert_eq!(boxed.name(), "cloud-everything");
    }
}
