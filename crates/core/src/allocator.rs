//! The strategy interface shared by DMRA and every baseline.

use crate::allocation::Allocation;
use crate::instance::ProblemInstance;

/// An algorithm that assigns a batch of UEs to BSs (or the cloud).
///
/// The trait is object-safe so sweeps can iterate over
/// `Vec<Box<dyn Allocator>>`; implementations must be deterministic given
/// their own configuration (randomized baselines carry an explicit seed).
/// `Send + Sync` is a supertrait so the sweep engine can share allocators
/// across its worker threads — allocators are plain configuration data,
/// so this costs implementations nothing.
///
/// Implementations must return allocations that pass
/// [`Allocation::validate`] on the same instance — the test suites of
/// `dmra-core` and `dmra-baselines` enforce this for every algorithm.
pub trait Allocator: Send + Sync {
    /// A short human-readable name ("DMRA", "DCSP", "NonCo", …) used in
    /// figure legends and reports.
    fn name(&self) -> &str;

    /// Computes an assignment for the instance.
    fn allocate(&self, instance: &ProblemInstance) -> Allocation;

    /// Opens a reusable solve session for repeated calls against instances
    /// of the same deployment (the online simulator solves one batch per
    /// epoch, thousands of times per run).
    ///
    /// A session may carry scratch state between calls — [`crate::Dmra`]
    /// keeps its dense solver workspace alive so per-epoch solves stop
    /// allocating — but every call must return exactly what
    /// [`Allocator::allocate`] would return on the same instance; the
    /// `incremental` integration tests enforce this equality for every
    /// shipped allocator. The default session is stateless and simply
    /// forwards to [`Allocator::allocate`].
    fn session(&self) -> Box<dyn AllocatorSession + '_> {
        Box::new(StatelessSession(self))
    }
}

/// A per-run solve handle created by [`Allocator::session`], free to keep
/// reusable scratch buffers across calls (hence `&mut self`).
pub trait AllocatorSession {
    /// Computes an assignment for the instance — identical to what the
    /// parent allocator's [`Allocator::allocate`] would return.
    fn allocate(&mut self, instance: &ProblemInstance) -> Allocation;
}

/// The default [`AllocatorSession`]: no state, forwards every call.
struct StatelessSession<'a, A: Allocator + ?Sized>(&'a A);

impl<A: Allocator + ?Sized> AllocatorSession for StatelessSession<'_, A> {
    fn allocate(&mut self, instance: &ProblemInstance) -> Allocation {
        self.0.allocate(instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CloudEverything;

    impl Allocator for CloudEverything {
        fn name(&self) -> &str {
            "cloud-everything"
        }
        fn allocate(&self, instance: &ProblemInstance) -> Allocation {
            Allocation::all_cloud(instance.n_ues())
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Allocator> = Box::new(CloudEverything);
        assert_eq!(boxed.name(), "cloud-everything");
    }

    #[test]
    fn default_session_matches_allocate() {
        let inst = crate::instance::tests::two_sp_instance();
        let boxed: Box<dyn Allocator> = Box::new(CloudEverything);
        let mut session = boxed.session();
        // Repeated calls through the stateless default keep matching the
        // one-shot entry point.
        for _ in 0..3 {
            assert_eq!(session.allocate(&inst), boxed.allocate(&inst));
        }
    }
}
