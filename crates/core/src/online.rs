//! Epoch-persistent state for the online (arrival/departure) regime.
//!
//! The dynamic simulator solves one matching per epoch against the
//! *remaining* BS capacities. Rebuilding a full [`ProblemInstance`] from
//! scratch every epoch re-validates the whole deployment, re-clones every
//! SP/BS spec and re-derives per-BS geometry that never changes — the
//! deployment is fixed, only the budgets and the arrival batch move. A
//! [`DeploymentContext`] hoists everything epoch-invariant out of the
//! loop:
//!
//! * the validated deployment (SPs, BSs, catalog, pricing, radio,
//!   coverage) is checked **once**, at construction;
//! * the [`LinkEvaluator`] and the spatial prune index over the BS sites
//!   are built once and reused for every arrival batch;
//! * the pricing-margin constraint (16) is monotone in the candidate
//!   distance, so it is re-checked only when an epoch produces a farther
//!   candidate than any epoch before it (a high-water mark);
//! * the epoch instance itself is a single reused allocation — budgets
//!   are patched in place and the flattened candidate rows are rebuilt
//!   into the same buffers.
//!
//! The result is pinned **bit-identical** to the rebuild-from-scratch
//! path ([`ProblemInstance::residual`]) by the `incremental` integration
//! tests: identical candidate rows, identical allocations, identical
//! simulated outcomes for every allocator, seed and thread count.
//!
//! Two hot-path accelerators sit on top (both bit-identical, both pinned
//! by the same test pattern):
//!
//! * pruned candidate rows run through the structure-of-arrays
//!   [`LinkEvaluator::evaluate_batch`] kernel, and batches of ≥1024 UEs
//!   fan the row rebuild out over [`par_map_indexed_scratch`] workers
//!   with an index-ordered merge;
//! * an opt-in cross-epoch [`row cache`](DeploymentContext::with_row_cache)
//!   reuses the candidate row of any UE whose key (position bits, SP,
//!   service, demands, transmit power) is unchanged since the previous
//!   epoch *and* whose epoch saw no remaining-budget change — the sticky
//!   mobility regime, where most UEs move but budgets reset per epoch, or
//!   stationary UEs ride through epochs untouched. Any budget difference
//!   bumps a global stamp, invalidating every slot at once (conservative:
//!   a freed RRB could re-admit a pruned candidate anywhere). The cache
//!   stays off under load-proportional interference, where every row
//!   depends on the whole batch.

use crate::instance::{
    coverage_prune_index, scan_candidate_row, scan_candidate_row_batch, validate_ues,
    CandidateLink, CandidateScan, CoverageModel, ProblemInstance, RowScratch,
};
use dmra_geo::GridIndex;
use dmra_par::{par_map_indexed_scratch, Threads};
use dmra_radio::{InterferenceModel, LinkBatch, LinkEvaluator};
use dmra_types::{Cru, Error, Meters, Result, RrbCount, ServiceId, SpId, UeSpec};

/// Epoch-persistent deployment state for the online regime.
///
/// Build one from the validated deployment instance (typically the
/// zero-UE instance the simulator starts from), then call
/// [`DeploymentContext::epoch_instance`] once per epoch with the
/// remaining budgets and the arrival batch.
#[derive(Debug, Clone)]
pub struct DeploymentContext {
    /// The reused epoch instance; UEs/links/budgets are overwritten per
    /// epoch, everything else stays the validated deployment.
    instance: ProblemInstance,
    /// Radio evaluator, derived once from the deployment's radio config.
    evaluator: LinkEvaluator,
    /// Load-proportional interference factor (zero under noise-only).
    interference_factor: f64,
    /// Per-BS aggregate received power for the current epoch's batch
    /// (left untouched when the factor is zero).
    total_rx_mw: Vec<f64>,
    /// Spatial prune index over the BS sites, when the coverage model
    /// admits one (fixed radius, positive and finite).
    prune: Option<(GridIndex, Meters)>,
    /// Largest candidate distance the pricing margin has been validated
    /// at so far. Constraint (16)'s worst-case price grows with distance,
    /// so any epoch whose rows stay under this mark is already covered.
    validated_distance: Meters,
    /// Reused buffer for grid-index radius queries; each hit carries its
    /// exact distance so the scan kernel never recomputes it.
    query_buf: Vec<(usize, Meters)>,
    /// Structure-of-arrays scratch for the batched link kernel.
    batch: LinkBatch,
    /// Cross-epoch candidate-row cache (opt-in, see
    /// [`DeploymentContext::with_row_cache`]).
    row_cache: Option<RowCache>,
    /// Worker-count knob for the ≥[`PAR_ROWS_MIN`]-UE row-rebuild fan-out.
    threads: Threads,
}

/// Row batches below this many UEs rebuild serially: thread spawns cost
/// more than the rows themselves at dynamic-simulator epoch sizes.
const PAR_ROWS_MIN: usize = 1024;

/// Everything a candidate row depends on besides the fixed deployment and
/// the remaining budgets: the UE's own spec (position as raw bits — a
/// cache hit must mean *bit-identical* inputs, so no epsilon) plus the
/// budget stamp of the epoch the row was built in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowKey {
    x_bits: u64,
    y_bits: u64,
    sp: SpId,
    service: ServiceId,
    cru_demand: Cru,
    rate_bits: u64,
    tx_bits: u64,
    stamp: u64,
}

impl RowKey {
    fn of(ue: &UeSpec, stamp: u64) -> Self {
        Self {
            x_bits: ue.position.x.to_bits(),
            y_bits: ue.position.y.to_bits(),
            sp: ue.sp,
            service: ue.service,
            cru_demand: ue.cru_demand,
            rate_bits: ue.rate_demand.get().to_bits(),
            tx_bits: ue.tx_power.get().to_bits(),
            stamp,
        }
    }
}

/// One cached candidate row.
#[derive(Debug, Clone)]
struct CachedRow {
    key: RowKey,
    links: Vec<CandidateLink>,
    row_max: Meters,
}

/// Cross-epoch candidate-row cache. Slot `u` caches the row of the UE at
/// batch position `u` (UE ids are dense per epoch); the key carries
/// everything the row depends on, and one global stamp — bumped whenever
/// the remaining budgets differ from the previous epoch's — invalidates
/// all slots at once.
#[derive(Debug, Clone, Default)]
struct RowCache {
    slots: Vec<Option<CachedRow>>,
    stamp: u64,
    prev_rem_cru: Vec<Vec<Cru>>,
    prev_rem_rrb: Vec<RrbCount>,
}

impl RowCache {
    /// Compares this epoch's remaining budgets against the previous
    /// epoch's and bumps the stamp on any difference (also on the first
    /// epoch). Returns whether the stamp was bumped — i.e. whether every
    /// cached row was just invalidated.
    fn observe_budgets(&mut self, rem_cru: &[Vec<Cru>], rem_rrb: &[RrbCount]) -> bool {
        let unchanged = self.prev_rem_rrb == rem_rrb
            && self.prev_rem_cru.len() == rem_cru.len()
            && self.prev_rem_cru.iter().zip(rem_cru).all(|(a, b)| a == b);
        if unchanged {
            return false;
        }
        self.stamp += 1;
        self.prev_rem_cru.resize_with(rem_cru.len(), Vec::new);
        for (dst, src) in self.prev_rem_cru.iter_mut().zip(rem_cru) {
            dst.clone_from(src);
        }
        self.prev_rem_rrb.clear();
        self.prev_rem_rrb.extend_from_slice(rem_rrb);
        true
    }

    /// The cached row for batch slot `u`, if its key matches.
    fn lookup(&self, u: usize, key: &RowKey) -> Option<&CachedRow> {
        match self.slots.get(u) {
            Some(Some(row)) if row.key == *key => Some(row),
            _ => None,
        }
    }

    /// Stores (or overwrites) slot `u`, reusing its allocation.
    fn store(&mut self, u: usize, key: RowKey, links: &[CandidateLink], row_max: Meters) {
        if self.slots.len() <= u {
            self.slots.resize_with(u + 1, || None);
        }
        match &mut self.slots[u] {
            Some(row) => {
                row.key = key;
                row.links.clear();
                row.links.extend_from_slice(links);
                row.row_max = row_max;
            }
            slot @ None => {
                *slot = Some(CachedRow {
                    key,
                    links: links.to_vec(),
                    row_max,
                });
            }
        }
    }
}

/// What one parallel row-rebuild worker found for one UE.
enum RowOutcome {
    /// Cache hit: the stored row is still valid, merge straight from it.
    Hit,
    /// Rebuilt row (`kept` = pruning-query hits, for telemetry).
    Miss {
        links: Vec<CandidateLink>,
        row_max: Meters,
        kept: u32,
    },
}

impl DeploymentContext {
    /// Creates a context from a validated deployment instance. The
    /// deployment's UEs (if any) are irrelevant — each epoch brings its
    /// own batch — so only the SPs/BSs/config are retained.
    #[must_use]
    pub fn new(deployment: &ProblemInstance) -> Self {
        let evaluator = LinkEvaluator::new(*deployment.radio());
        let interference_factor = match deployment.radio().interference {
            InterferenceModel::NoiseOnly => 0.0,
            InterferenceModel::LoadProportional { factor } => factor,
        };
        let prune =
            coverage_prune_index(deployment.bss(), deployment.coverage(), CandidateScan::Auto);
        let mut instance = deployment.clone();
        instance.ues.clear();
        instance.links.clear();
        instance.row_start.clear();
        instance.row_start.push(0);
        instance.f_u.clear();
        for covered in &mut instance.covered_ues {
            covered.clear();
        }
        let n_bss = instance.bss.len();
        Self {
            instance,
            evaluator,
            interference_factor,
            total_rx_mw: vec![0.0; n_bss],
            prune,
            validated_distance: Meters::new(0.0),
            query_buf: Vec::new(),
            batch: LinkBatch::new(),
            row_cache: None,
            threads: Threads::Auto,
        }
    }

    /// Enables the cross-epoch candidate-row cache: a UE whose key
    /// (position bits, SP, service, demands, transmit power) is unchanged
    /// since the previous epoch reuses its cached row verbatim, provided
    /// no remaining budget changed in between (any change bumps a global
    /// stamp and invalidates every slot — a freed budget could re-admit a
    /// candidate the build-time prune dropped). Intended for sticky
    /// populations (the mobility regime); under load-proportional
    /// interference the cache is bypassed, because every row depends on
    /// the whole batch. Outputs stay bit-identical to an uncached
    /// rebuild — `tests/mobility_incremental.rs` pins this.
    #[must_use]
    pub fn with_row_cache(mut self) -> Self {
        self.row_cache = Some(RowCache::default());
        self
    }

    /// Sets the worker-count knob for the row-rebuild fan-out (batches
    /// of ≥1024 UEs; smaller epochs always rebuild serially). The merge
    /// is index-ordered, so outputs are bit-identical for every count.
    #[must_use]
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Builds this epoch's instance in place: same deployment, the given
    /// remaining budgets, and the new arrival batch.
    ///
    /// Bit-identical to `deployment.residual(rem_cru, rem_rrb, ues)` —
    /// same candidate rows, same accepted/rejected inputs, same errors —
    /// without cloning the deployment or re-validating what cannot have
    /// changed. After an error the context remains usable: the next
    /// successful call overwrites all epoch state.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`ProblemInstance::residual`] would return:
    /// budget-arity mismatches, invalid UE batches, and pricing-margin
    /// violations at a new worst-case candidate distance.
    pub fn epoch_instance(
        &mut self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
    ) -> Result<&ProblemInstance> {
        self.rebuild(rem_cru, rem_rrb, ues, None)
    }

    /// Event-timestamped variant of [`DeploymentContext::epoch_instance`]
    /// for the event-driven simulator: the instance build is identical
    /// (same buffers, same candidate rows, same errors), but telemetry is
    /// recorded under the `online.event_*` names and the trace event
    /// carries the event time, so an event-engine run can be correlated
    /// against an epoch-engine run without the two streams colliding.
    ///
    /// # Errors
    ///
    /// Same as [`DeploymentContext::epoch_instance`].
    pub fn event_instance(
        &mut self,
        time: f64,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
    ) -> Result<&ProblemInstance> {
        self.rebuild(rem_cru, rem_rrb, ues, Some(time))
    }

    /// The shared rebuild behind both public entry points. `event_time`
    /// only selects which telemetry stream the build is recorded under —
    /// it must never influence candidate generation, which is what keeps
    /// the two engines bit-identical.
    fn rebuild(
        &mut self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
        event_time: Option<f64>,
    ) -> Result<&ProblemInstance> {
        // Observe-only telemetry: one flag read up front, all recording
        // after the rebuild. Nothing here touches candidate generation.
        let obs_on = dmra_obs::enabled();
        let build_started = obs_on.then(std::time::Instant::now);
        let mut precull_kept = 0u64;
        let mut precull_rejected = 0u64;

        let inst = &mut self.instance;
        let n_bss = inst.bss.len();
        if rem_cru.len() != n_bss || rem_rrb.len() != n_bss {
            return Err(Error::InvalidConfig(format!(
                "residual budgets cover {} / {} BSs but the instance has {}",
                rem_cru.len(),
                rem_rrb.len(),
                n_bss
            )));
        }
        for (i, bs) in inst.bss.iter().enumerate() {
            if rem_cru[i].len() != bs.cru_budget.len() {
                return Err(Error::InvalidConfig(format!(
                    "{} has {} service budgets but the catalog has {} services",
                    bs.id,
                    rem_cru[i].len(),
                    inst.catalog.len()
                )));
            }
        }
        validate_ues(&ues, inst.sps.len(), inst.catalog)?;

        // Patch the remaining budgets in place (`Cru` is `Copy`).
        for (i, bs) in inst.bss.iter_mut().enumerate() {
            bs.cru_budget.copy_from_slice(&rem_cru[i]);
            bs.rrb_budget = rem_rrb[i];
        }
        inst.ues = ues;

        // Row-cache epoch bookkeeping, before any row is built: any
        // remaining-budget difference against the previous epoch bumps
        // the stamp, so every slot built under the old budgets misses.
        // Load-proportional interference couples each row to the whole
        // batch, so the cache is bypassed entirely there.
        let cache_active = self.row_cache.is_some() && self.interference_factor == 0.0;
        let mut cache_invalidated = false;
        if cache_active {
            let cache = self.row_cache.as_mut().expect("cache_active");
            cache_invalidated = cache.observe_budgets(rem_cru, rem_rrb);
        }
        let stamp = self.row_cache.as_ref().map_or(0, |c| c.stamp);
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;

        // Per-BS interference aggregates depend on the epoch's batch; the
        // serial per-BS sum visits UEs in id order, exactly like the
        // static build's fan-out.
        if self.interference_factor > 0.0 {
            for (b, total) in self.total_rx_mw.iter_mut().enumerate() {
                let bs_pos = inst.bss[b].position;
                *total = inst
                    .ues
                    .iter()
                    .map(|ue| self.evaluator.rx_power_mw(ue.tx_power, ue.position, bs_pos))
                    .sum();
            }
        }

        // Rebuild the flattened candidate rows into the reused buffers.
        inst.links.clear();
        inst.row_start.clear();
        inst.row_start.push(0);
        inst.f_u.clear();
        for covered in &mut inst.covered_ues {
            covered.clear();
        }
        let kernel_started = obs_on.then(std::time::Instant::now);
        let mut max_candidate_distance = Meters::new(0.0);
        let n_ues = inst.ues.len();
        let parallel = n_ues >= PAR_ROWS_MIN && self.threads.resolve() > 1;
        if parallel {
            // Large batch: fan the per-UE rows out over worker threads,
            // exactly like the static build — contiguous chunks, merged
            // in UE-id order, so the result is bit-identical to the
            // serial loop below for every worker count. Workers read the
            // pre-epoch cache; slots are written back during the serial
            // merge (safe: slot `u` depends only on UE `u`).
            let ues = &inst.ues;
            let bss = &inst.bss;
            let coverage = inst.coverage;
            let pricing = &inst.pricing;
            let evaluator = &self.evaluator;
            let interference_factor = self.interference_factor;
            let total_rx_mw = &self.total_rx_mw;
            let prune = self.prune.as_ref();
            let cache_ref = if cache_active {
                self.row_cache.as_ref()
            } else {
                None
            };
            let outcomes =
                par_map_indexed_scratch(self.threads, n_ues, RowScratch::default, |scratch, u| {
                    let ue = &ues[u];
                    if let Some(cache) = cache_ref {
                        if cache.lookup(u, &RowKey::of(ue, stamp)).is_some() {
                            return RowOutcome::Hit;
                        }
                    }
                    let mut links = Vec::new();
                    let (row_max, kept) = match prune {
                        Some((index, radius)) => {
                            index.query_within_dist_into(ue.position, *radius, &mut scratch.nearby);
                            let kept = scratch.nearby.len() as u32;
                            (
                                scan_candidate_row_batch(
                                    ue,
                                    bss,
                                    &scratch.nearby,
                                    evaluator,
                                    interference_factor,
                                    total_rx_mw,
                                    coverage,
                                    pricing,
                                    &mut scratch.batch,
                                    &mut links,
                                ),
                                kept,
                            )
                        }
                        None => (
                            scan_candidate_row(
                                ue,
                                bss,
                                (0..bss.len()).map(|b| (b, None)),
                                evaluator,
                                interference_factor,
                                total_rx_mw,
                                coverage,
                                pricing,
                                &mut links,
                            ),
                            0,
                        ),
                    };
                    RowOutcome::Miss {
                        links,
                        row_max,
                        kept,
                    }
                });
            let pruned = self.prune.is_some();
            for (u, outcome) in outcomes.into_iter().enumerate() {
                let row_from = inst.links.len();
                let row_max = match outcome {
                    RowOutcome::Hit => {
                        cache_hits += 1;
                        let row = self.row_cache.as_ref().expect("hit implies cache").slots[u]
                            .as_ref()
                            .expect("hit implies slot");
                        inst.links.extend_from_slice(&row.links);
                        row.row_max
                    }
                    RowOutcome::Miss {
                        links,
                        row_max,
                        kept,
                    } => {
                        if obs_on && pruned {
                            precull_kept += u64::from(kept);
                            precull_rejected += (n_bss - kept as usize) as u64;
                        }
                        if cache_active {
                            cache_misses += 1;
                            self.row_cache.as_mut().expect("cache_active").store(
                                u,
                                RowKey::of(&inst.ues[u], stamp),
                                &links,
                                row_max,
                            );
                        }
                        inst.links.extend(links);
                        row_max
                    }
                };
                if row_max > max_candidate_distance {
                    max_candidate_distance = row_max;
                }
                inst.f_u.push((inst.links.len() - row_from) as u32);
                inst.row_start.push(inst.links.len());
                let ue_id = inst.ues[u].id;
                for link in &inst.links[row_from..] {
                    inst.covered_ues[link.bs.as_usize()].push(ue_id);
                }
            }
        } else {
            for u in 0..n_ues {
                let row_from = inst.links.len();
                let key = if cache_active {
                    Some(RowKey::of(&inst.ues[u], stamp))
                } else {
                    None
                };
                let mut row_max = Meters::new(0.0);
                let mut hit = false;
                if let Some(key) = &key {
                    if let Some(row) = self
                        .row_cache
                        .as_ref()
                        .expect("cache_active")
                        .lookup(u, key)
                    {
                        inst.links.extend_from_slice(&row.links);
                        row_max = row.row_max;
                        hit = true;
                    }
                }
                if hit {
                    cache_hits += 1;
                } else {
                    row_max = match &self.prune {
                        Some((index, radius)) => {
                            index.query_within_dist_into(
                                inst.ues[u].position,
                                *radius,
                                &mut self.query_buf,
                            );
                            if obs_on {
                                precull_kept += self.query_buf.len() as u64;
                                precull_rejected += (n_bss - self.query_buf.len()) as u64;
                            }
                            scan_candidate_row_batch(
                                &inst.ues[u],
                                &inst.bss,
                                &self.query_buf,
                                &self.evaluator,
                                self.interference_factor,
                                &self.total_rx_mw,
                                inst.coverage,
                                &inst.pricing,
                                &mut self.batch,
                                &mut inst.links,
                            )
                        }
                        None => scan_candidate_row(
                            &inst.ues[u],
                            &inst.bss,
                            (0..n_bss).map(|b| (b, None)),
                            &self.evaluator,
                            self.interference_factor,
                            &self.total_rx_mw,
                            inst.coverage,
                            &inst.pricing,
                            &mut inst.links,
                        ),
                    };
                    if let Some(key) = key {
                        cache_misses += 1;
                        let links = &inst.links[row_from..];
                        self.row_cache
                            .as_mut()
                            .expect("cache_active")
                            .store(u, key, links, row_max);
                    }
                }
                if row_max > max_candidate_distance {
                    max_candidate_distance = row_max;
                }
                inst.f_u.push((inst.links.len() - row_from) as u32);
                inst.row_start.push(inst.links.len());
                let ue_id = inst.ues[u].id;
                for link in &inst.links[row_from..] {
                    inst.covered_ues[link.bs.as_usize()].push(ue_id);
                }
            }
        }
        let kernel_ns = kernel_started.map_or(0, |t| {
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
        });

        // Constraint (16): the worst-case price is monotone in distance,
        // so only a new high-water distance needs re-validation — and it
        // fails with exactly the error a from-scratch build would raise.
        let margin_recheck = max_candidate_distance > self.validated_distance;
        if margin_recheck {
            inst.pricing
                .validate_margin(&inst.sps, max_candidate_distance)?;
            self.validated_distance = max_candidate_distance;
        }

        if obs_on {
            // Handles are resolved once and cached; steady-state recording
            // is one atomic op per metric (see BENCH_obs_overhead.json).
            static EPOCH_BUILDS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.epoch_builds");
            static EVENT_BUILDS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.event_builds");
            static ROWS_REBUILT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.rows_rebuilt");
            static PRECULL_KEPT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.precull_kept");
            static PRECULL_REJECTED: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.precull_rejected");
            static LINKS_KEPT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.links_kept");
            static MARGIN_RECHECKS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.margin_rechecks");
            static VALIDATED_DISTANCE_M: dmra_obs::LazyGauge =
                dmra_obs::LazyGauge::new("online.validated_distance_m");
            static EPOCH_BUILD_NS: dmra_obs::LazyHistogram =
                dmra_obs::LazyHistogram::new("online.epoch_build_ns");
            static EVENT_BUILD_NS: dmra_obs::LazyHistogram =
                dmra_obs::LazyHistogram::new("online.event_build_ns");
            static BATCH_KERNEL_NS: dmra_obs::LazyHistogram =
                dmra_obs::LazyHistogram::new("online.batch_kernel_ns");
            static ROW_CACHE_HITS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.row_cache_hits");
            static ROW_CACHE_MISSES: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.row_cache_misses");
            static ROW_CACHE_INVALIDATIONS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.row_cache_invalidations");
            let inst = &self.instance;
            // The event path mirrors the epoch path under its own build
            // counter/histogram/trace names; the per-row counters below
            // are shared, so aggregate prune statistics stay comparable
            // across engines.
            let builds = if event_time.is_some() {
                EVENT_BUILDS.get()
            } else {
                EPOCH_BUILDS.get()
            };
            builds.inc();
            ROWS_REBUILT.get().add(inst.ues.len() as u64);
            PRECULL_KEPT.get().add(precull_kept);
            PRECULL_REJECTED.get().add(precull_rejected);
            LINKS_KEPT.get().add(inst.links.len() as u64);
            if margin_recheck {
                MARGIN_RECHECKS.get().inc();
            }
            // High-water validated distance, in whole meters.
            VALIDATED_DISTANCE_M
                .get()
                .set_max(self.validated_distance.get() as u64);
            let build_ns = build_started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            if event_time.is_some() {
                EVENT_BUILD_NS.get().record(build_ns);
            } else {
                EPOCH_BUILD_NS.get().record(build_ns);
            }
            // The row scan/batch-kernel phase of the build, cache hits
            // included (a hit is the phase doing its job in O(row)).
            BATCH_KERNEL_NS.get().record(kernel_ns);
            if self.row_cache.is_some() {
                ROW_CACHE_HITS.get().add(cache_hits);
                ROW_CACHE_MISSES.get().add(cache_misses);
                if cache_invalidated {
                    ROW_CACHE_INVALIDATIONS.get().inc();
                }
            }
            let mut fields = vec![
                ("ues", inst.ues.len() as f64),
                ("precull_kept", precull_kept as f64),
                ("precull_rejected", precull_rejected as f64),
                ("links", inst.links.len() as f64),
                ("margin_recheck", f64::from(u8::from(margin_recheck))),
                ("wall_ns", build_ns as f64),
                ("kernel_ns", kernel_ns as f64),
            ];
            if self.row_cache.is_some() {
                fields.push(("cache_hits", cache_hits as f64));
                fields.push(("cache_misses", cache_misses as f64));
                fields.push(("cache_invalidated", f64::from(u8::from(cache_invalidated))));
            }
            if let Some(t) = event_time {
                fields.insert(0, ("time", t));
            }
            dmra_obs::global_trace().record(dmra_obs::TraceEvent {
                name: if event_time.is_some() {
                    "online.event_build"
                } else {
                    "online.epoch_build"
                },
                index: builds.get(),
                fields,
            });
        }
        Ok(&self.instance)
    }

    /// The coverage model the context prunes for.
    #[must_use]
    pub fn coverage(&self) -> CoverageModel {
        self.instance.coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::two_sp_instance;
    use dmra_types::{BitsPerSec, Cru, Dbm, Point, RrbCount, ServiceId, SpId, UeId};

    fn fresh_batch(n: usize) -> Vec<UeSpec> {
        (0..n)
            .map(|u| {
                UeSpec::new(
                    UeId::new(u as u32),
                    SpId::new((u % 2) as u32),
                    Point::new(50.0 + 40.0 * u as f64, 10.0),
                    ServiceId::new(0),
                    Cru::new(4),
                    BitsPerSec::from_mbps(3.0),
                    Dbm::new(10.0),
                )
            })
            .collect()
    }

    fn assert_same_instance(a: &ProblemInstance, b: &ProblemInstance) {
        assert_eq!(a.n_ues(), b.n_ues());
        for u in 0..a.n_ues() {
            let ue = UeId::new(u as u32);
            assert_eq!(a.candidates(ue), b.candidates(ue), "UE {u} rows differ");
            assert_eq!(a.f_u(ue), b.f_u(ue));
        }
        for b_idx in 0..a.n_bss() {
            let bs = dmra_types::BsId::new(b_idx as u32);
            assert_eq!(a.covered_ues(bs), b.covered_ues(bs));
        }
        assert_eq!(a.bss(), b.bss());
    }

    #[test]
    fn epoch_instance_matches_residual_across_epochs() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        // Three "epochs" with shifting budgets and batch sizes; the
        // context must reproduce the scratch residual each time.
        let budgets = [
            (
                vec![
                    vec![Cru::new(100), Cru::new(100)],
                    vec![Cru::new(100), Cru::ZERO],
                ],
                vec![RrbCount::new(55), RrbCount::new(55)],
            ),
            (
                vec![
                    vec![Cru::new(10), Cru::new(5)],
                    vec![Cru::new(7), Cru::ZERO],
                ],
                vec![RrbCount::new(9), RrbCount::new(3)],
            ),
            (
                vec![vec![Cru::ZERO, Cru::ZERO], vec![Cru::new(100), Cru::ZERO]],
                vec![RrbCount::ZERO, RrbCount::new(55)],
            ),
        ];
        for (e, (rem_cru, rem_rrb)) in budgets.iter().enumerate() {
            let batch = fresh_batch(e + 1);
            let scratch = deployment
                .residual(rem_cru, rem_rrb, batch.clone())
                .unwrap();
            let fast = ctx.epoch_instance(rem_cru, rem_rrb, batch).unwrap();
            assert_same_instance(fast, &scratch);
        }
    }

    #[test]
    fn event_instance_builds_the_same_instance_as_epoch_instance() {
        let deployment = two_sp_instance();
        let mut epoch_ctx = DeploymentContext::new(&deployment);
        let mut event_ctx = DeploymentContext::new(&deployment);
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        for e in 0..3usize {
            let batch = fresh_batch(e + 1);
            let scratch = epoch_ctx
                .epoch_instance(&rem_cru, &rem_rrb, batch.clone())
                .unwrap()
                .clone();
            let event = event_ctx
                .event_instance(e as f64, &rem_cru, &rem_rrb, batch)
                .unwrap();
            assert_same_instance(event, &scratch);
        }
    }

    #[test]
    fn epoch_instance_rejects_what_residual_rejects() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        // Wrong outer arity.
        let err = ctx.epoch_instance(&[], &[], fresh_batch(1)).unwrap_err();
        let scratch_err = deployment.residual(&[], &[], fresh_batch(1)).unwrap_err();
        assert_eq!(err, scratch_err);
        // Dangling SP reference in the batch.
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let mut bad = fresh_batch(1);
        bad[0].sp = SpId::new(9);
        let err = ctx
            .epoch_instance(&rem_cru, &rem_rrb, bad.clone())
            .unwrap_err();
        let scratch_err = deployment.residual(&rem_cru, &rem_rrb, bad).unwrap_err();
        assert_eq!(err, scratch_err);
        // And the context still works after the errors.
        let ok = ctx
            .epoch_instance(&rem_cru, &rem_rrb, fresh_batch(2))
            .unwrap();
        assert_eq!(ok.n_ues(), 2);
    }

    #[test]
    fn row_cache_matches_residual_across_budget_churn() {
        // Same UE batch, varying budgets: the stamp must invalidate the
        // cached rows whenever the budgets change, and the cached rebuild
        // must equal the scratch residual every epoch. Epochs 0 and 2
        // share budgets with no change in between epochs 2→3, exercising
        // both the invalidation and the verbatim-reuse paths.
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
        let full_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let full_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let tight_cru = vec![vec![Cru::new(8), Cru::new(4)], vec![Cru::new(5), Cru::ZERO]];
        let tight_rrb = vec![RrbCount::new(6), RrbCount::new(2)];
        let epochs: [(&[Vec<Cru>], &[RrbCount]); 4] = [
            (&full_cru, &full_rrb),
            (&tight_cru, &tight_rrb),
            (&full_cru, &full_rrb),
            (&full_cru, &full_rrb), // unchanged: pure cache-hit epoch
        ];
        let batch = fresh_batch(3);
        for (rem_cru, rem_rrb) in epochs {
            let scratch = deployment
                .residual(rem_cru, rem_rrb, batch.clone())
                .unwrap();
            let fast = ctx.epoch_instance(rem_cru, rem_rrb, batch.clone()).unwrap();
            assert_same_instance(fast, &scratch);
        }
    }

    #[test]
    fn row_cache_tracks_moved_and_changed_ues() {
        // A moved UE, a service change and a demand change must all miss
        // the cache; stationary UEs keep their rows. Equality against the
        // scratch residual is the oracle.
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let mut batch = fresh_batch(4);
        for epoch in 0..4 {
            if epoch > 0 {
                batch[0].position = Point::new(40.0 + 10.0 * epoch as f64, 25.0);
            }
            if epoch == 2 {
                batch[1].service = ServiceId::new(1);
            }
            if epoch == 3 {
                batch[2].cru_demand = Cru::new(7);
                batch[2].rate_demand = BitsPerSec::from_mbps(5.5);
            }
            let scratch = deployment
                .residual(&rem_cru, &rem_rrb, batch.clone())
                .unwrap();
            let fast = ctx
                .epoch_instance(&rem_cru, &rem_rrb, batch.clone())
                .unwrap();
            assert_same_instance(fast, &scratch);
        }
    }

    #[test]
    fn empty_batch_yields_empty_instance() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let inst = ctx.epoch_instance(&rem_cru, &rem_rrb, Vec::new()).unwrap();
        assert_eq!(inst.n_ues(), 0);
        assert_eq!(inst.n_bss(), deployment.n_bss());
    }
}
