//! Epoch-persistent state for the online (arrival/departure) regime.
//!
//! The dynamic simulator solves one matching per epoch against the
//! *remaining* BS capacities. Rebuilding a full [`ProblemInstance`] from
//! scratch every epoch re-validates the whole deployment, re-clones every
//! SP/BS spec and re-derives per-BS geometry that never changes — the
//! deployment is fixed, only the budgets and the arrival batch move. A
//! [`DeploymentContext`] hoists everything epoch-invariant out of the
//! loop:
//!
//! * the validated deployment (SPs, BSs, catalog, pricing, radio,
//!   coverage) is checked **once**, at construction;
//! * the [`LinkEvaluator`] and the spatial prune index over the BS sites
//!   are built once and reused for every arrival batch;
//! * the pricing-margin constraint (16) is monotone in the candidate
//!   distance, so it is re-checked only when an epoch produces a farther
//!   candidate than any epoch before it (a high-water mark);
//! * the epoch instance itself is a single reused allocation — budgets
//!   are patched in place and the flattened candidate rows are rebuilt
//!   into the same buffers.
//!
//! The result is pinned **bit-identical** to the rebuild-from-scratch
//! path ([`ProblemInstance::residual`]) by the `incremental` integration
//! tests: identical candidate rows, identical allocations, identical
//! simulated outcomes for every allocator, seed and thread count.

use crate::instance::{
    coverage_prune_index, scan_candidate_row, validate_ues, CandidateScan, CoverageModel,
    ProblemInstance,
};
use dmra_geo::GridIndex;
use dmra_radio::{InterferenceModel, LinkEvaluator};
use dmra_types::{Cru, Error, Meters, Result, RrbCount, UeSpec};

/// Epoch-persistent deployment state for the online regime.
///
/// Build one from the validated deployment instance (typically the
/// zero-UE instance the simulator starts from), then call
/// [`DeploymentContext::epoch_instance`] once per epoch with the
/// remaining budgets and the arrival batch.
#[derive(Debug, Clone)]
pub struct DeploymentContext {
    /// The reused epoch instance; UEs/links/budgets are overwritten per
    /// epoch, everything else stays the validated deployment.
    instance: ProblemInstance,
    /// Radio evaluator, derived once from the deployment's radio config.
    evaluator: LinkEvaluator,
    /// Load-proportional interference factor (zero under noise-only).
    interference_factor: f64,
    /// Per-BS aggregate received power for the current epoch's batch
    /// (left untouched when the factor is zero).
    total_rx_mw: Vec<f64>,
    /// Spatial prune index over the BS sites, when the coverage model
    /// admits one (fixed radius, positive and finite).
    prune: Option<(GridIndex, Meters)>,
    /// Largest candidate distance the pricing margin has been validated
    /// at so far. Constraint (16)'s worst-case price grows with distance,
    /// so any epoch whose rows stay under this mark is already covered.
    validated_distance: Meters,
    /// Reused buffer for grid-index radius queries; each hit carries its
    /// exact distance so the scan kernel never recomputes it.
    query_buf: Vec<(usize, Meters)>,
}

impl DeploymentContext {
    /// Creates a context from a validated deployment instance. The
    /// deployment's UEs (if any) are irrelevant — each epoch brings its
    /// own batch — so only the SPs/BSs/config are retained.
    #[must_use]
    pub fn new(deployment: &ProblemInstance) -> Self {
        let evaluator = LinkEvaluator::new(*deployment.radio());
        let interference_factor = match deployment.radio().interference {
            InterferenceModel::NoiseOnly => 0.0,
            InterferenceModel::LoadProportional { factor } => factor,
        };
        let prune =
            coverage_prune_index(deployment.bss(), deployment.coverage(), CandidateScan::Auto);
        let mut instance = deployment.clone();
        instance.ues.clear();
        instance.links.clear();
        instance.row_start.clear();
        instance.row_start.push(0);
        instance.f_u.clear();
        for covered in &mut instance.covered_ues {
            covered.clear();
        }
        let n_bss = instance.bss.len();
        Self {
            instance,
            evaluator,
            interference_factor,
            total_rx_mw: vec![0.0; n_bss],
            prune,
            validated_distance: Meters::new(0.0),
            query_buf: Vec::new(),
        }
    }

    /// Builds this epoch's instance in place: same deployment, the given
    /// remaining budgets, and the new arrival batch.
    ///
    /// Bit-identical to `deployment.residual(rem_cru, rem_rrb, ues)` —
    /// same candidate rows, same accepted/rejected inputs, same errors —
    /// without cloning the deployment or re-validating what cannot have
    /// changed. After an error the context remains usable: the next
    /// successful call overwrites all epoch state.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`ProblemInstance::residual`] would return:
    /// budget-arity mismatches, invalid UE batches, and pricing-margin
    /// violations at a new worst-case candidate distance.
    pub fn epoch_instance(
        &mut self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
    ) -> Result<&ProblemInstance> {
        self.rebuild(rem_cru, rem_rrb, ues, None)
    }

    /// Event-timestamped variant of [`DeploymentContext::epoch_instance`]
    /// for the event-driven simulator: the instance build is identical
    /// (same buffers, same candidate rows, same errors), but telemetry is
    /// recorded under the `online.event_*` names and the trace event
    /// carries the event time, so an event-engine run can be correlated
    /// against an epoch-engine run without the two streams colliding.
    ///
    /// # Errors
    ///
    /// Same as [`DeploymentContext::epoch_instance`].
    pub fn event_instance(
        &mut self,
        time: f64,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
    ) -> Result<&ProblemInstance> {
        self.rebuild(rem_cru, rem_rrb, ues, Some(time))
    }

    /// The shared rebuild behind both public entry points. `event_time`
    /// only selects which telemetry stream the build is recorded under —
    /// it must never influence candidate generation, which is what keeps
    /// the two engines bit-identical.
    fn rebuild(
        &mut self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
        event_time: Option<f64>,
    ) -> Result<&ProblemInstance> {
        // Observe-only telemetry: one flag read up front, all recording
        // after the rebuild. Nothing here touches candidate generation.
        let obs_on = dmra_obs::enabled();
        let build_started = obs_on.then(std::time::Instant::now);
        let mut precull_kept = 0u64;
        let mut precull_rejected = 0u64;

        let inst = &mut self.instance;
        let n_bss = inst.bss.len();
        if rem_cru.len() != n_bss || rem_rrb.len() != n_bss {
            return Err(Error::InvalidConfig(format!(
                "residual budgets cover {} / {} BSs but the instance has {}",
                rem_cru.len(),
                rem_rrb.len(),
                n_bss
            )));
        }
        for (i, bs) in inst.bss.iter().enumerate() {
            if rem_cru[i].len() != bs.cru_budget.len() {
                return Err(Error::InvalidConfig(format!(
                    "{} has {} service budgets but the catalog has {} services",
                    bs.id,
                    rem_cru[i].len(),
                    inst.catalog.len()
                )));
            }
        }
        validate_ues(&ues, inst.sps.len(), inst.catalog)?;

        // Patch the remaining budgets in place (`Cru` is `Copy`).
        for (i, bs) in inst.bss.iter_mut().enumerate() {
            bs.cru_budget.copy_from_slice(&rem_cru[i]);
            bs.rrb_budget = rem_rrb[i];
        }
        inst.ues = ues;

        // Per-BS interference aggregates depend on the epoch's batch; the
        // serial per-BS sum visits UEs in id order, exactly like the
        // static build's fan-out.
        if self.interference_factor > 0.0 {
            for (b, total) in self.total_rx_mw.iter_mut().enumerate() {
                let bs_pos = inst.bss[b].position;
                *total = inst
                    .ues
                    .iter()
                    .map(|ue| self.evaluator.rx_power_mw(ue.tx_power, ue.position, bs_pos))
                    .sum();
            }
        }

        // Rebuild the flattened candidate rows into the reused buffers.
        inst.links.clear();
        inst.row_start.clear();
        inst.row_start.push(0);
        inst.f_u.clear();
        for covered in &mut inst.covered_ues {
            covered.clear();
        }
        let mut max_candidate_distance = Meters::new(0.0);
        for u in 0..inst.ues.len() {
            let row_from = inst.links.len();
            let row_max = match &self.prune {
                Some((index, radius)) => {
                    index.query_within_dist_into(
                        inst.ues[u].position,
                        *radius,
                        &mut self.query_buf,
                    );
                    if obs_on {
                        precull_kept += self.query_buf.len() as u64;
                        precull_rejected += (n_bss - self.query_buf.len()) as u64;
                    }
                    scan_candidate_row(
                        &inst.ues[u],
                        &inst.bss,
                        self.query_buf.iter().map(|&(b, d)| (b, Some(d))),
                        &self.evaluator,
                        self.interference_factor,
                        &self.total_rx_mw,
                        inst.coverage,
                        &inst.pricing,
                        &mut inst.links,
                    )
                }
                None => scan_candidate_row(
                    &inst.ues[u],
                    &inst.bss,
                    (0..n_bss).map(|b| (b, None)),
                    &self.evaluator,
                    self.interference_factor,
                    &self.total_rx_mw,
                    inst.coverage,
                    &inst.pricing,
                    &mut inst.links,
                ),
            };
            if row_max > max_candidate_distance {
                max_candidate_distance = row_max;
            }
            inst.f_u.push((inst.links.len() - row_from) as u32);
            inst.row_start.push(inst.links.len());
            let ue_id = inst.ues[u].id;
            for link in &inst.links[row_from..] {
                inst.covered_ues[link.bs.as_usize()].push(ue_id);
            }
        }

        // Constraint (16): the worst-case price is monotone in distance,
        // so only a new high-water distance needs re-validation — and it
        // fails with exactly the error a from-scratch build would raise.
        let margin_recheck = max_candidate_distance > self.validated_distance;
        if margin_recheck {
            inst.pricing
                .validate_margin(&inst.sps, max_candidate_distance)?;
            self.validated_distance = max_candidate_distance;
        }

        if obs_on {
            // Handles are resolved once and cached; steady-state recording
            // is one atomic op per metric (see BENCH_obs_overhead.json).
            static EPOCH_BUILDS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.epoch_builds");
            static EVENT_BUILDS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.event_builds");
            static ROWS_REBUILT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.rows_rebuilt");
            static PRECULL_KEPT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.precull_kept");
            static PRECULL_REJECTED: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.precull_rejected");
            static LINKS_KEPT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.links_kept");
            static MARGIN_RECHECKS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.margin_rechecks");
            static VALIDATED_DISTANCE_M: dmra_obs::LazyGauge =
                dmra_obs::LazyGauge::new("online.validated_distance_m");
            static EPOCH_BUILD_NS: dmra_obs::LazyHistogram =
                dmra_obs::LazyHistogram::new("online.epoch_build_ns");
            static EVENT_BUILD_NS: dmra_obs::LazyHistogram =
                dmra_obs::LazyHistogram::new("online.event_build_ns");
            let inst = &self.instance;
            // The event path mirrors the epoch path under its own build
            // counter/histogram/trace names; the per-row counters below
            // are shared, so aggregate prune statistics stay comparable
            // across engines.
            let builds = if event_time.is_some() {
                EVENT_BUILDS.get()
            } else {
                EPOCH_BUILDS.get()
            };
            builds.inc();
            ROWS_REBUILT.get().add(inst.ues.len() as u64);
            PRECULL_KEPT.get().add(precull_kept);
            PRECULL_REJECTED.get().add(precull_rejected);
            LINKS_KEPT.get().add(inst.links.len() as u64);
            if margin_recheck {
                MARGIN_RECHECKS.get().inc();
            }
            // High-water validated distance, in whole meters.
            VALIDATED_DISTANCE_M
                .get()
                .set_max(self.validated_distance.get() as u64);
            let build_ns = build_started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            if event_time.is_some() {
                EVENT_BUILD_NS.get().record(build_ns);
            } else {
                EPOCH_BUILD_NS.get().record(build_ns);
            }
            let mut fields = vec![
                ("ues", inst.ues.len() as f64),
                ("precull_kept", precull_kept as f64),
                ("precull_rejected", precull_rejected as f64),
                ("links", inst.links.len() as f64),
                ("margin_recheck", f64::from(u8::from(margin_recheck))),
                ("wall_ns", build_ns as f64),
            ];
            if let Some(t) = event_time {
                fields.insert(0, ("time", t));
            }
            dmra_obs::global_trace().record(dmra_obs::TraceEvent {
                name: if event_time.is_some() {
                    "online.event_build"
                } else {
                    "online.epoch_build"
                },
                index: builds.get(),
                fields,
            });
        }
        Ok(&self.instance)
    }

    /// The coverage model the context prunes for.
    #[must_use]
    pub fn coverage(&self) -> CoverageModel {
        self.instance.coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::two_sp_instance;
    use dmra_types::{BitsPerSec, Cru, Dbm, Point, RrbCount, ServiceId, SpId, UeId};

    fn fresh_batch(n: usize) -> Vec<UeSpec> {
        (0..n)
            .map(|u| {
                UeSpec::new(
                    UeId::new(u as u32),
                    SpId::new((u % 2) as u32),
                    Point::new(50.0 + 40.0 * u as f64, 10.0),
                    ServiceId::new(0),
                    Cru::new(4),
                    BitsPerSec::from_mbps(3.0),
                    Dbm::new(10.0),
                )
            })
            .collect()
    }

    fn assert_same_instance(a: &ProblemInstance, b: &ProblemInstance) {
        assert_eq!(a.n_ues(), b.n_ues());
        for u in 0..a.n_ues() {
            let ue = UeId::new(u as u32);
            assert_eq!(a.candidates(ue), b.candidates(ue), "UE {u} rows differ");
            assert_eq!(a.f_u(ue), b.f_u(ue));
        }
        for b_idx in 0..a.n_bss() {
            let bs = dmra_types::BsId::new(b_idx as u32);
            assert_eq!(a.covered_ues(bs), b.covered_ues(bs));
        }
        assert_eq!(a.bss(), b.bss());
    }

    #[test]
    fn epoch_instance_matches_residual_across_epochs() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        // Three "epochs" with shifting budgets and batch sizes; the
        // context must reproduce the scratch residual each time.
        let budgets = [
            (
                vec![
                    vec![Cru::new(100), Cru::new(100)],
                    vec![Cru::new(100), Cru::ZERO],
                ],
                vec![RrbCount::new(55), RrbCount::new(55)],
            ),
            (
                vec![
                    vec![Cru::new(10), Cru::new(5)],
                    vec![Cru::new(7), Cru::ZERO],
                ],
                vec![RrbCount::new(9), RrbCount::new(3)],
            ),
            (
                vec![vec![Cru::ZERO, Cru::ZERO], vec![Cru::new(100), Cru::ZERO]],
                vec![RrbCount::ZERO, RrbCount::new(55)],
            ),
        ];
        for (e, (rem_cru, rem_rrb)) in budgets.iter().enumerate() {
            let batch = fresh_batch(e + 1);
            let scratch = deployment
                .residual(rem_cru, rem_rrb, batch.clone())
                .unwrap();
            let fast = ctx.epoch_instance(rem_cru, rem_rrb, batch).unwrap();
            assert_same_instance(fast, &scratch);
        }
    }

    #[test]
    fn event_instance_builds_the_same_instance_as_epoch_instance() {
        let deployment = two_sp_instance();
        let mut epoch_ctx = DeploymentContext::new(&deployment);
        let mut event_ctx = DeploymentContext::new(&deployment);
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        for e in 0..3usize {
            let batch = fresh_batch(e + 1);
            let scratch = epoch_ctx
                .epoch_instance(&rem_cru, &rem_rrb, batch.clone())
                .unwrap()
                .clone();
            let event = event_ctx
                .event_instance(e as f64, &rem_cru, &rem_rrb, batch)
                .unwrap();
            assert_same_instance(event, &scratch);
        }
    }

    #[test]
    fn epoch_instance_rejects_what_residual_rejects() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        // Wrong outer arity.
        let err = ctx.epoch_instance(&[], &[], fresh_batch(1)).unwrap_err();
        let scratch_err = deployment.residual(&[], &[], fresh_batch(1)).unwrap_err();
        assert_eq!(err, scratch_err);
        // Dangling SP reference in the batch.
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let mut bad = fresh_batch(1);
        bad[0].sp = SpId::new(9);
        let err = ctx
            .epoch_instance(&rem_cru, &rem_rrb, bad.clone())
            .unwrap_err();
        let scratch_err = deployment.residual(&rem_cru, &rem_rrb, bad).unwrap_err();
        assert_eq!(err, scratch_err);
        // And the context still works after the errors.
        let ok = ctx
            .epoch_instance(&rem_cru, &rem_rrb, fresh_batch(2))
            .unwrap();
        assert_eq!(ok.n_ues(), 2);
    }

    #[test]
    fn empty_batch_yields_empty_instance() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let inst = ctx.epoch_instance(&rem_cru, &rem_rrb, Vec::new()).unwrap();
        assert_eq!(inst.n_ues(), 0);
        assert_eq!(inst.n_bss(), deployment.n_bss());
    }
}
