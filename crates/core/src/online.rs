//! Epoch-persistent state for the online (arrival/departure) regime.
//!
//! The dynamic simulator solves one matching per epoch against the
//! *remaining* BS capacities. Rebuilding a full [`ProblemInstance`] from
//! scratch every epoch re-validates the whole deployment, re-clones every
//! SP/BS spec and re-derives per-BS geometry that never changes — the
//! deployment is fixed, only the budgets and the arrival batch move. A
//! [`DeploymentContext`] hoists everything epoch-invariant out of the
//! loop:
//!
//! * the validated deployment (SPs, BSs, catalog, pricing, radio,
//!   coverage) is checked **once**, at construction;
//! * the [`LinkEvaluator`] and the spatial prune index over the BS sites
//!   are built once and reused for every arrival batch;
//! * the pricing-margin constraint (16) is monotone in the candidate
//!   distance, so it is re-checked only when an epoch produces a farther
//!   candidate than any epoch before it (a high-water mark);
//! * the epoch instance itself is a single reused allocation — budgets
//!   are patched in place and the flattened candidate rows are rebuilt
//!   into the same buffers.
//!
//! The result is pinned **bit-identical** to the rebuild-from-scratch
//! path ([`ProblemInstance::residual`]) by the `incremental` integration
//! tests: identical candidate rows, identical allocations, identical
//! simulated outcomes for every allocator, seed and thread count.
//!
//! Two hot-path accelerators sit on top (both bit-identical, both pinned
//! by the same test pattern):
//!
//! * pruned candidate rows run through the structure-of-arrays
//!   [`LinkEvaluator::evaluate_batch`] kernel, and batches of ≥1024 UEs
//!   fan the row rebuild out over [`par_map_indexed_scratch`] workers
//!   with an index-ordered merge;
//! * an opt-in cross-epoch [`row cache`](DeploymentContext::with_row_cache)
//!   reuses the candidate row of any UE whose key (position bits, SP,
//!   service, demands, transmit power) is unchanged since the previous
//!   epoch *and* none of the BSs the row's build **consulted** saw a
//!   remaining-budget change since — budgets are stamped per BS, so
//!   churn in one cell invalidates only the rows whose coverage disc
//!   touches that cell, not the whole deployment. The consulted set (the
//!   prune query's hits, budget-independent) is the correct dependency
//!   footprint: a freed budget could re-admit a candidate the build-time
//!   scan dropped, but only at a BS the scan actually looked at. The
//!   cache stays off under load-proportional interference, where every
//!   row depends on the whole batch.
//!
//! The region-sharded runtime in `dmra-sim` builds on two more pieces
//! here: [`DeploymentContext::with_site_filter`] narrows the prune index
//! to one shard's site subset (rectangle + coverage-radius halo), and
//! [`DeploymentContext::epoch_instance_prebuilt`] assembles the epoch
//! instance from candidate rows the shard workers already built.

use crate::instance::{
    coverage_prune_index, scan_candidate_row, scan_candidate_row_batch, validate_ues,
    CandidateLink, CandidateScan, CoverageModel, DeltaInfo, ProblemInstance, RowScratch,
};
use dmra_geo::GridIndex;
use dmra_par::{par_map_indexed_scratch, Threads};
use dmra_radio::{InterferenceModel, LinkBatch, LinkEvaluator};
use dmra_types::{Cru, Error, Meters, Result, RrbCount, ServiceId, SpId, UeSpec};
use std::sync::atomic::{AtomicU64, Ordering};

/// Epoch-persistent deployment state for the online regime.
///
/// Build one from the validated deployment instance (typically the
/// zero-UE instance the simulator starts from), then call
/// [`DeploymentContext::epoch_instance`] once per epoch with the
/// remaining budgets and the arrival batch.
#[derive(Debug)]
pub struct DeploymentContext {
    /// The reused epoch instance; UEs/links/budgets are overwritten per
    /// epoch, everything else stays the validated deployment.
    instance: ProblemInstance,
    /// Process-unique id of this context, carried by the [`DeltaInfo`]
    /// lineage so a delta consumer can never mix diffs from two contexts
    /// (a [`Clone`] allocates a fresh id for the same reason).
    ctx_id: u64,
    /// Build sequence number: bumped on every build whose row-cache state
    /// advanced (see [`DeltaInfo::seq`]) and on every staged prebuilt
    /// delta.
    delta_seq: u64,
    /// Delta metadata staged by [`DeploymentContext::stage_delta`] for the
    /// next [`DeploymentContext::epoch_instance_prebuilt`] call.
    pending_delta: Option<DeltaInfo>,
    /// Radio evaluator, derived once from the deployment's radio config.
    evaluator: LinkEvaluator,
    /// Load-proportional interference factor (zero under noise-only).
    interference_factor: f64,
    /// Per-BS aggregate received power for the current epoch's batch
    /// (left untouched when the factor is zero).
    total_rx_mw: Vec<f64>,
    /// Spatial prune index over the BS sites, when the coverage model
    /// admits one (fixed radius, positive and finite).
    prune: Option<(GridIndex, Meters)>,
    /// Largest candidate distance the pricing margin has been validated
    /// at so far. Constraint (16)'s worst-case price grows with distance,
    /// so any epoch whose rows stay under this mark is already covered.
    validated_distance: Meters,
    /// Reused buffer for grid-index radius queries; each hit carries its
    /// exact distance so the scan kernel never recomputes it.
    query_buf: Vec<(usize, Meters)>,
    /// Structure-of-arrays scratch for the batched link kernel.
    batch: LinkBatch,
    /// Cross-epoch candidate-row cache (opt-in, see
    /// [`DeploymentContext::with_row_cache`]).
    row_cache: Option<RowCache>,
    /// Worker-count knob for the ≥[`PAR_ROWS_MIN`]-UE row-rebuild fan-out.
    threads: Threads,
}

/// Row batches below this many UEs rebuild serially: thread spawns cost
/// more than the rows themselves at dynamic-simulator epoch sizes.
const PAR_ROWS_MIN: usize = 1024;

/// Default bound on *occupied* row-cache slots (each holds a candidate-link
/// vector). Long traces whose batch sizes grow past this start evicting
/// the least-recently-used slots instead of growing without bound; see
/// [`DeploymentContext::with_row_cache_capacity`].
pub const ROW_CACHE_DEFAULT_CAPACITY: usize = 1 << 16;

/// Source of process-unique [`DeploymentContext`] ids (0 is never issued,
/// so a zeroed [`DeltaInfo`] can't collide with a real context).
static NEXT_CTX_ID: AtomicU64 = AtomicU64::new(1);

impl Clone for DeploymentContext {
    /// Clones the full context state but allocates a **fresh context id**:
    /// the clone's builds form a new [`DeltaInfo`] lineage, so a delta
    /// consumer can never misread a diff produced by the clone as
    /// continuing the original's sequence.
    fn clone(&self) -> Self {
        Self {
            instance: self.instance.clone(),
            ctx_id: NEXT_CTX_ID.fetch_add(1, Ordering::Relaxed),
            delta_seq: 0,
            pending_delta: None,
            evaluator: self.evaluator.clone(),
            interference_factor: self.interference_factor,
            total_rx_mw: self.total_rx_mw.clone(),
            prune: self.prune.clone(),
            validated_distance: self.validated_distance,
            query_buf: self.query_buf.clone(),
            batch: self.batch.clone(),
            row_cache: self.row_cache.clone(),
            threads: self.threads,
        }
    }
}

/// Everything a candidate row depends on besides the fixed deployment and
/// the remaining budgets: the UE's own spec (position as raw bits — a
/// cache hit must mean *bit-identical* inputs, so no epsilon). Budget
/// freshness is tracked separately, per consulted BS, by the cache's
/// stamp vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowKey {
    x_bits: u64,
    y_bits: u64,
    sp: SpId,
    service: ServiceId,
    cru_demand: Cru,
    rate_bits: u64,
    tx_bits: u64,
}

impl RowKey {
    fn of(ue: &UeSpec) -> Self {
        Self {
            x_bits: ue.position.x.to_bits(),
            y_bits: ue.position.y.to_bits(),
            sp: ue.sp,
            service: ue.service,
            cru_demand: ue.cru_demand,
            rate_bits: ue.rate_demand.get().to_bits(),
            tx_bits: ue.tx_power.get().to_bits(),
        }
    }
}

/// One cached candidate row.
#[derive(Debug, Clone)]
struct CachedRow {
    key: RowKey,
    links: Vec<CandidateLink>,
    row_max: Meters,
    /// The budget epoch the row was built under.
    built: u64,
    /// The rebuild (use counter, not budget epoch) that last touched this
    /// slot — the LRU eviction order.
    last_used: u64,
    /// The BS indices the build **consulted** (the prune query's hits),
    /// or `None` for a row built by the exhaustive scan, which consulted
    /// every BS. Consulted, not kept: a freed budget could re-admit a
    /// candidate the build-time scan dropped, so the row depends on the
    /// budgets of every BS the scan looked at — a set that depends only
    /// on the UE's position and the fixed geometry, never on budgets.
    deps: Option<Vec<u32>>,
}

/// Cross-epoch candidate-row cache. Slot `u` caches the row of the UE at
/// batch position `u` (UE ids are dense per epoch); the key carries the
/// UE-spec inputs, and a **per-BS stamp vector** tracks budget churn: a
/// row is fresh while none of its consulted BSs' budgets changed after it
/// was built, so churn in one cell leaves rows in distant cells valid.
#[derive(Debug, Clone, Default)]
struct RowCache {
    slots: Vec<Option<CachedRow>>,
    /// Monotone budget epoch, bumped once per rebuild whose remaining
    /// budgets differ anywhere from the previous rebuild's.
    epoch: u64,
    /// `bs_stamps[b]` = the epoch at which BS `b`'s remaining budgets
    /// last changed.
    bs_stamps: Vec<u64>,
    /// `max(bs_stamps)` — the freshness bar for exhaustive-scan rows.
    max_stamp: u64,
    prev_rem_cru: Vec<Vec<Cru>>,
    prev_rem_rrb: Vec<RrbCount>,
    /// Lifetime hit/miss totals (see
    /// [`DeploymentContext::row_cache_stats`]).
    hits: u64,
    misses: u64,
    /// Rebuild counter driving the LRU order (`CachedRow::last_used`).
    uses: u64,
    /// Bound on occupied slots; the least-recently-used occupants past it
    /// are evicted after each rebuild.
    capacity: usize,
    /// Occupied (`Some`) slots, maintained incrementally.
    occupied: usize,
    /// Lifetime LRU evictions (see
    /// [`DeploymentContext::row_cache_evictions`]).
    evictions: u64,
    /// The previous rebuild's batch length: slots at or past it are new
    /// arrivals for delta-tracking purposes even on a (stale) cache hit.
    prev_batch_len: usize,
    /// Reused `(last_used, slot)` scratch for the eviction sort.
    lru_scratch: Vec<(u64, u32)>,
}

impl RowCache {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Compares this epoch's remaining budgets against the previous
    /// epoch's, per BS, and stamps exactly the BSs whose budgets changed
    /// (on the first epoch: all of them), appending each stamped BS index
    /// to `dirty_bss` in ascending order — i.e. which cells' rows were
    /// just invalidated; an empty result means every cached row rides
    /// through untouched.
    fn observe_budgets(
        &mut self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        dirty_bss: &mut Vec<u32>,
    ) {
        let n_bss = rem_rrb.len();
        if self.bs_stamps.len() != n_bss {
            // First epoch (or a budget-arity change): every BS is new.
            self.epoch += 1;
            self.bs_stamps.clear();
            self.bs_stamps.resize(n_bss, self.epoch);
            self.max_stamp = self.epoch;
            self.prev_rem_cru.resize_with(n_bss, Vec::new);
            for (dst, src) in self.prev_rem_cru.iter_mut().zip(rem_cru) {
                dst.clone_from(src);
            }
            self.prev_rem_rrb.clear();
            self.prev_rem_rrb.extend_from_slice(rem_rrb);
            dirty_bss.extend(0..n_bss as u32);
            return;
        }
        let next = self.epoch + 1;
        for b in 0..n_bss {
            if self.prev_rem_rrb[b] != rem_rrb[b] || self.prev_rem_cru[b] != rem_cru[b] {
                dirty_bss.push(b as u32);
                self.bs_stamps[b] = next;
                self.prev_rem_rrb[b] = rem_rrb[b];
                self.prev_rem_cru[b].clone_from(&rem_cru[b]);
            }
        }
        if !dirty_bss.is_empty() {
            self.epoch = next;
            self.max_stamp = next;
        }
    }

    /// Post-rebuild LRU maintenance: every slot of the just-built batch
    /// was touched (hit or stored) this rebuild, so stamp them with the
    /// current use counter, then evict the least-recently-used occupants
    /// past `capacity` and drop any trailing vacancy. Returns how many
    /// rows were evicted.
    fn touch_and_evict(&mut self, n_ues: usize) -> u64 {
        for slot in self.slots.iter_mut().take(n_ues).flatten() {
            slot.last_used = self.uses;
        }
        self.prev_batch_len = n_ues;
        let mut evicted = 0u64;
        if self.occupied > self.capacity {
            self.lru_scratch.clear();
            for (u, slot) in self.slots.iter().enumerate() {
                if let Some(row) = slot {
                    self.lru_scratch.push((row.last_used, u as u32));
                }
            }
            self.lru_scratch.sort_unstable();
            let excess = self.occupied - self.capacity;
            for &(_, u) in &self.lru_scratch[..excess] {
                self.slots[u as usize] = None;
                self.occupied -= 1;
                evicted += 1;
            }
            while matches!(self.slots.last(), Some(None)) {
                self.slots.pop();
            }
        }
        self.evictions += evicted;
        evicted
    }

    /// Whether none of the BSs the row's build consulted saw a budget
    /// change after the row was built.
    fn row_fresh(&self, row: &CachedRow) -> bool {
        match &row.deps {
            Some(deps) => deps
                .iter()
                .all(|&b| self.bs_stamps[b as usize] <= row.built),
            None => self.max_stamp <= row.built,
        }
    }

    /// The cached row for batch slot `u`, if its key matches and its
    /// consulted BSs' budgets are unchanged since it was built.
    fn lookup(&self, u: usize, key: &RowKey) -> Option<&CachedRow> {
        match self.slots.get(u) {
            Some(Some(row)) if row.key == *key && self.row_fresh(row) => Some(row),
            _ => None,
        }
    }

    /// Stores (or overwrites) slot `u`, reusing its allocation. `deps` is
    /// the consulted BS set (`None` = exhaustive scan).
    fn store(
        &mut self,
        u: usize,
        key: RowKey,
        links: &[CandidateLink],
        row_max: Meters,
        deps: Option<Vec<u32>>,
    ) {
        let built = self.epoch;
        if self.slots.len() <= u {
            self.slots.resize_with(u + 1, || None);
        }
        match &mut self.slots[u] {
            Some(row) => {
                row.key = key;
                row.links.clear();
                row.links.extend_from_slice(links);
                row.row_max = row_max;
                row.built = built;
                row.deps = deps;
                row.last_used = self.uses;
            }
            slot @ None => {
                *slot = Some(CachedRow {
                    key,
                    links: links.to_vec(),
                    row_max,
                    built,
                    deps,
                    last_used: self.uses,
                });
                self.occupied += 1;
            }
        }
    }
}

/// What one parallel row-rebuild worker found for one UE.
enum RowOutcome {
    /// Cache hit: the stored row is still valid, merge straight from it.
    Hit,
    /// Rebuilt row (`kept` = pruning-query hits, for telemetry; `deps` =
    /// the consulted BS set when the cache will store the row).
    Miss {
        links: Vec<CandidateLink>,
        row_max: Meters,
        kept: u32,
        deps: Option<Vec<u32>>,
    },
}

impl DeploymentContext {
    /// Creates a context from a validated deployment instance. The
    /// deployment's UEs (if any) are irrelevant — each epoch brings its
    /// own batch — so only the SPs/BSs/config are retained.
    #[must_use]
    pub fn new(deployment: &ProblemInstance) -> Self {
        let evaluator = LinkEvaluator::new(*deployment.radio());
        let interference_factor = match deployment.radio().interference {
            InterferenceModel::NoiseOnly => 0.0,
            InterferenceModel::LoadProportional { factor } => factor,
        };
        let prune =
            coverage_prune_index(deployment.bss(), deployment.coverage(), CandidateScan::Auto);
        let mut instance = deployment.clone();
        instance.ues.clear();
        instance.links.clear();
        instance.row_start.clear();
        instance.row_start.push(0);
        instance.f_u.clear();
        for covered in &mut instance.covered_ues {
            covered.clear();
        }
        let n_bss = instance.bss.len();
        Self {
            instance,
            ctx_id: NEXT_CTX_ID.fetch_add(1, Ordering::Relaxed),
            delta_seq: 0,
            pending_delta: None,
            evaluator,
            interference_factor,
            total_rx_mw: vec![0.0; n_bss],
            prune,
            validated_distance: Meters::new(0.0),
            query_buf: Vec::new(),
            batch: LinkBatch::new(),
            row_cache: None,
            threads: Threads::Auto,
        }
    }

    /// Enables the cross-epoch candidate-row cache: a UE whose key
    /// (position bits, SP, service, demands, transmit power) is unchanged
    /// since the previous epoch reuses its cached row verbatim, provided
    /// none of the BSs its build **consulted** (the prune query's hits —
    /// a freed budget could re-admit a candidate the build-time scan
    /// dropped, but only at a BS the scan looked at) saw a remaining-
    /// budget change in between. Budgets are stamped per BS, so churn in
    /// one cell leaves rows in distant cells valid. Intended for sticky
    /// populations (the mobility regime); under load-proportional
    /// interference the cache is bypassed, because every row depends on
    /// the whole batch. Outputs stay bit-identical to an uncached
    /// rebuild — `tests/mobility_incremental.rs` pins this.
    #[must_use]
    pub fn with_row_cache(mut self) -> Self {
        self.row_cache = Some(RowCache::with_capacity(ROW_CACHE_DEFAULT_CAPACITY));
        self
    }

    /// [`DeploymentContext::with_row_cache`] with an explicit bound on
    /// occupied cache slots. After each rebuild the least-recently-used
    /// occupants past `capacity` are evicted (counted by
    /// [`DeploymentContext::row_cache_evictions`] and the
    /// `online.row_cache_evictions` metric), so long traces can't grow
    /// the cache without bound. Eviction only ever costs extra rebuilds —
    /// an evicted slot misses and is rebuilt from scratch — never
    /// correctness: outputs stay bit-identical at every capacity.
    #[must_use]
    pub fn with_row_cache_capacity(mut self, capacity: usize) -> Self {
        self.row_cache = Some(RowCache::with_capacity(capacity));
        self
    }

    /// Sets the worker-count knob for the row-rebuild fan-out (batches
    /// of ≥1024 UEs; smaller epochs always rebuild serially). The merge
    /// is index-ordered, so outputs are bit-identical for every count.
    #[must_use]
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Narrows the spatial prune index to the sites selected by `keep`
    /// (one flag per BS), reusing the full index's CSR layout via
    /// [`GridIndex::subset`]. Queries keep returning **global** BS
    /// indices, so candidate rows stay globally indexed; for any UE whose
    /// full prune disc lies inside the kept set, the built row is
    /// bit-identical to the unfiltered context's. The region-sharded
    /// runtime passes a shard-rectangle-plus-coverage-halo mask
    /// (DESIGN.md §13). A no-op when the coverage model admits no prune
    /// index — the exhaustive scan already visits every BS.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len()` differs from the deployment's BS count.
    #[must_use]
    pub fn with_site_filter(mut self, keep: &[bool]) -> Self {
        assert_eq!(
            keep.len(),
            self.instance.bss.len(),
            "keep mask must cover every BS"
        );
        if let Some((index, _)) = &mut self.prune {
            *index = index.subset(keep);
        }
        self
    }

    /// Lifetime row-cache totals as `(hits, misses)`, or `None` when the
    /// cache is disabled. Counted unconditionally (telemetry on or off),
    /// so tests and benches can assert hit rates deterministically.
    #[must_use]
    pub fn row_cache_stats(&self) -> Option<(u64, u64)> {
        self.row_cache.as_ref().map(|c| (c.hits, c.misses))
    }

    /// Lifetime LRU evictions from the row cache, or `None` when the
    /// cache is disabled. Counted unconditionally, like
    /// [`DeploymentContext::row_cache_stats`].
    #[must_use]
    pub fn row_cache_evictions(&self) -> Option<u64> {
        self.row_cache.as_ref().map(|c| c.evictions)
    }

    /// Occupied row-cache slots right now, or `None` when the cache is
    /// disabled. Never exceeds the configured capacity after a rebuild.
    #[must_use]
    pub fn row_cache_occupied(&self) -> Option<usize> {
        self.row_cache.as_ref().map(|c| c.occupied)
    }

    /// Stages cross-epoch churn metadata for the next
    /// [`DeploymentContext::epoch_instance_prebuilt`] call, which attaches
    /// it to the assembled instance under this context's own
    /// [`DeltaInfo`] lineage. The region-sharded runtime calls this with
    /// the union of its shard workers' dirty sets; `None` (a shard could
    /// not report) still advances the sequence number, so a delta
    /// consumer's continuity check fails closed on the next epoch instead
    /// of misreading a stale diff.
    pub fn stage_delta(&mut self, dirty: Option<(Vec<u32>, Vec<u32>)>) {
        self.delta_seq += 1;
        self.pending_delta = dirty.map(|(dirty_ues, dirty_bss)| DeltaInfo {
            ctx_id: self.ctx_id,
            seq: self.delta_seq,
            dirty_ues,
            dirty_bss,
        });
    }

    /// Builds this epoch's instance in place: same deployment, the given
    /// remaining budgets, and the new arrival batch.
    ///
    /// Bit-identical to `deployment.residual(rem_cru, rem_rrb, ues)` —
    /// same candidate rows, same accepted/rejected inputs, same errors —
    /// without cloning the deployment or re-validating what cannot have
    /// changed. After an error the context remains usable: the next
    /// successful call overwrites all epoch state.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`ProblemInstance::residual`] would return:
    /// budget-arity mismatches, invalid UE batches, and pricing-margin
    /// violations at a new worst-case candidate distance.
    pub fn epoch_instance(
        &mut self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
    ) -> Result<&ProblemInstance> {
        self.rebuild(rem_cru, rem_rrb, ues, None)
    }

    /// Event-timestamped variant of [`DeploymentContext::epoch_instance`]
    /// for the event-driven simulator: the instance build is identical
    /// (same buffers, same candidate rows, same errors), but telemetry is
    /// recorded under the `online.event_*` names and the trace event
    /// carries the event time, so an event-engine run can be correlated
    /// against an epoch-engine run without the two streams colliding.
    ///
    /// # Errors
    ///
    /// Same as [`DeploymentContext::epoch_instance`].
    pub fn event_instance(
        &mut self,
        time: f64,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
    ) -> Result<&ProblemInstance> {
        self.rebuild(rem_cru, rem_rrb, ues, Some(time))
    }

    /// Assembles this epoch's instance from candidate rows built
    /// elsewhere: the region-sharded runtime has per-shard contexts build
    /// the rows in parallel, merges them in global UE order, and calls
    /// this on a coordinator context. Budget validation, UE validation,
    /// budget patching and the pricing-margin high-water check are the
    /// same as [`DeploymentContext::epoch_instance`]; only the row scan
    /// is skipped, so `links`/`row_start` must hold exactly what this
    /// context's own scan would have produced (`tests/sharding.rs` pins
    /// that equality end to end). `row_start[u]..row_start[u + 1]` is UE
    /// `u`'s row, `row_start` has `ues.len() + 1` entries starting at 0
    /// and ending at `links.len()`.
    ///
    /// # Errors
    ///
    /// The budget/UE/margin errors [`DeploymentContext::epoch_instance`]
    /// would return, plus [`Error::InvalidConfig`] when the rows are
    /// malformed (offsets that do not partition `links`, a link to an
    /// unknown BS) or when the deployment uses load-proportional
    /// interference — there every row depends on the whole batch, which
    /// rows built per shard cannot see.
    pub fn epoch_instance_prebuilt(
        &mut self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
        links: &[CandidateLink],
        row_start: &[usize],
    ) -> Result<&ProblemInstance> {
        if self.interference_factor > 0.0 {
            return Err(Error::InvalidConfig(
                "prebuilt candidate rows require the noise-only interference model; \
                 under load-proportional interference every row depends on the whole batch"
                    .to_string(),
            ));
        }
        let inst = &mut self.instance;
        let n_bss = inst.bss.len();
        if rem_cru.len() != n_bss || rem_rrb.len() != n_bss {
            return Err(Error::InvalidConfig(format!(
                "residual budgets cover {} / {} BSs but the instance has {}",
                rem_cru.len(),
                rem_rrb.len(),
                n_bss
            )));
        }
        for (i, bs) in inst.bss.iter().enumerate() {
            if rem_cru[i].len() != bs.cru_budget.len() {
                return Err(Error::InvalidConfig(format!(
                    "{} has {} service budgets but the catalog has {} services",
                    bs.id,
                    rem_cru[i].len(),
                    inst.catalog.len()
                )));
            }
        }
        validate_ues(&ues, inst.sps.len(), inst.catalog)?;
        if row_start.len() != ues.len() + 1
            || row_start.first() != Some(&0)
            || row_start.last() != Some(&links.len())
            || row_start.windows(2).any(|w| w[0] > w[1])
        {
            return Err(Error::InvalidConfig(format!(
                "prebuilt row offsets do not partition {} links over {} UEs",
                links.len(),
                ues.len()
            )));
        }
        if links.iter().any(|l| l.bs.as_usize() >= n_bss) {
            return Err(Error::InvalidConfig(
                "prebuilt candidate link references an unknown BS".to_string(),
            ));
        }

        for (i, bs) in inst.bss.iter_mut().enumerate() {
            bs.cru_budget.copy_from_slice(&rem_cru[i]);
            bs.rrb_budget = rem_rrb[i];
        }
        inst.ues = ues;
        inst.links.clear();
        inst.links.extend_from_slice(links);
        inst.row_start.clear();
        inst.row_start.extend_from_slice(row_start);
        inst.f_u.clear();
        for covered in &mut inst.covered_ues {
            covered.clear();
        }
        // Churn metadata staged via `stage_delta` rides on this assembly
        // (and only this one — `take` so nothing stale survives).
        inst.delta = self.pending_delta.take();
        // `row_max` in the scans is the max over *accepted* links, so the
        // merged links' distances reproduce it exactly.
        let mut max_candidate_distance = Meters::new(0.0);
        for u in 0..inst.ues.len() {
            let row = &inst.links[row_start[u]..row_start[u + 1]];
            inst.f_u.push(row.len() as u32);
            let ue_id = inst.ues[u].id;
            for link in row {
                inst.covered_ues[link.bs.as_usize()].push(ue_id);
                if link.distance > max_candidate_distance {
                    max_candidate_distance = link.distance;
                }
            }
        }
        if max_candidate_distance > self.validated_distance {
            inst.pricing
                .validate_margin(&inst.sps, max_candidate_distance)?;
            self.validated_distance = max_candidate_distance;
        }
        Ok(&self.instance)
    }

    /// The shared rebuild behind both public entry points. `event_time`
    /// only selects which telemetry stream the build is recorded under —
    /// it must never influence candidate generation, which is what keeps
    /// the two engines bit-identical.
    fn rebuild(
        &mut self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
        event_time: Option<f64>,
    ) -> Result<&ProblemInstance> {
        // Observe-only telemetry: one flag read up front, all recording
        // after the rebuild. Nothing here touches candidate generation.
        let obs_on = dmra_obs::enabled();
        let build_started = obs_on.then(std::time::Instant::now);
        let mut precull_kept = 0u64;
        let mut precull_rejected = 0u64;

        let inst = &mut self.instance;
        let n_bss = inst.bss.len();
        if rem_cru.len() != n_bss || rem_rrb.len() != n_bss {
            return Err(Error::InvalidConfig(format!(
                "residual budgets cover {} / {} BSs but the instance has {}",
                rem_cru.len(),
                rem_rrb.len(),
                n_bss
            )));
        }
        for (i, bs) in inst.bss.iter().enumerate() {
            if rem_cru[i].len() != bs.cru_budget.len() {
                return Err(Error::InvalidConfig(format!(
                    "{} has {} service budgets but the catalog has {} services",
                    bs.id,
                    rem_cru[i].len(),
                    inst.catalog.len()
                )));
            }
        }
        validate_ues(&ues, inst.sps.len(), inst.catalog)?;

        // Patch the remaining budgets in place (`Cru` is `Copy`).
        for (i, bs) in inst.bss.iter_mut().enumerate() {
            bs.cru_budget.copy_from_slice(&rem_cru[i]);
            bs.rrb_budget = rem_rrb[i];
        }
        inst.ues = ues;

        // Row-cache epoch bookkeeping, before any row is built: every BS
        // whose remaining budgets differ from the previous epoch's gets a
        // fresh stamp, so exactly the slots whose builds consulted a
        // changed BS miss. Load-proportional interference couples each
        // row to the whole batch, so the cache is bypassed entirely
        // there.
        let cache_active = self.row_cache.is_some() && self.interference_factor == 0.0;
        // Reuse the previous build's DeltaInfo allocations when the cache
        // tracks churn; otherwise make sure nothing stale survives on the
        // reused instance.
        let mut delta = if cache_active {
            let mut d = inst.delta.take().unwrap_or_default();
            d.dirty_ues.clear();
            d.dirty_bss.clear();
            Some(d)
        } else {
            inst.delta = None;
            None
        };
        let prev_batch_len = self.row_cache.as_ref().map_or(0, |c| c.prev_batch_len);
        if let Some(d) = delta.as_mut() {
            let cache = self.row_cache.as_mut().expect("cache_active");
            // The cache state advances now, so the delta lineage sequence
            // must advance with it — even if this build later fails the
            // margin check, the gap keeps any consumer's continuity guard
            // from misreading the next build's diff.
            self.delta_seq += 1;
            cache.uses += 1;
            cache.observe_budgets(rem_cru, rem_rrb, &mut d.dirty_bss);
        }
        let invalidated_bss = delta.as_ref().map_or(0, |d| d.dirty_bss.len() as u64);
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;

        // Per-BS interference aggregates depend on the epoch's batch; the
        // serial per-BS sum visits UEs in id order, exactly like the
        // static build's fan-out.
        if self.interference_factor > 0.0 {
            for (b, total) in self.total_rx_mw.iter_mut().enumerate() {
                let bs_pos = inst.bss[b].position;
                *total = inst
                    .ues
                    .iter()
                    .map(|ue| self.evaluator.rx_power_mw(ue.tx_power, ue.position, bs_pos))
                    .sum();
            }
        }

        // Rebuild the flattened candidate rows into the reused buffers.
        inst.links.clear();
        inst.row_start.clear();
        inst.row_start.push(0);
        inst.f_u.clear();
        for covered in &mut inst.covered_ues {
            covered.clear();
        }
        let kernel_started = obs_on.then(std::time::Instant::now);
        let mut max_candidate_distance = Meters::new(0.0);
        let n_ues = inst.ues.len();
        let parallel = n_ues >= PAR_ROWS_MIN && self.threads.resolve() > 1;
        if parallel {
            // Large batch: fan the per-UE rows out over worker threads,
            // exactly like the static build — contiguous chunks, merged
            // in UE-id order, so the result is bit-identical to the
            // serial loop below for every worker count. Workers read the
            // pre-epoch cache; slots are written back during the serial
            // merge (safe: slot `u` depends only on UE `u`).
            let ues = &inst.ues;
            let bss = &inst.bss;
            let coverage = inst.coverage;
            let pricing = &inst.pricing;
            let evaluator = &self.evaluator;
            let interference_factor = self.interference_factor;
            let total_rx_mw = &self.total_rx_mw;
            let prune = self.prune.as_ref();
            let cache_ref = if cache_active {
                self.row_cache.as_ref()
            } else {
                None
            };
            let outcomes =
                par_map_indexed_scratch(self.threads, n_ues, RowScratch::default, |scratch, u| {
                    let ue = &ues[u];
                    if let Some(cache) = cache_ref {
                        if cache.lookup(u, &RowKey::of(ue)).is_some() {
                            return RowOutcome::Hit;
                        }
                    }
                    let mut links = Vec::new();
                    let (row_max, kept, deps) = match prune {
                        Some((index, radius)) => {
                            index.query_within_dist_into(ue.position, *radius, &mut scratch.nearby);
                            let kept = scratch.nearby.len() as u32;
                            let deps = cache_ref
                                .is_some()
                                .then(|| scratch.nearby.iter().map(|&(b, _)| b as u32).collect());
                            (
                                scan_candidate_row_batch(
                                    ue,
                                    bss,
                                    &scratch.nearby,
                                    evaluator,
                                    interference_factor,
                                    total_rx_mw,
                                    coverage,
                                    pricing,
                                    &mut scratch.batch,
                                    &mut links,
                                ),
                                kept,
                                deps,
                            )
                        }
                        None => (
                            scan_candidate_row(
                                ue,
                                bss,
                                (0..bss.len()).map(|b| (b, None)),
                                evaluator,
                                interference_factor,
                                total_rx_mw,
                                coverage,
                                pricing,
                                &mut links,
                            ),
                            0,
                            None,
                        ),
                    };
                    RowOutcome::Miss {
                        links,
                        row_max,
                        kept,
                        deps,
                    }
                });
            let pruned = self.prune.is_some();
            for (u, outcome) in outcomes.into_iter().enumerate() {
                let row_from = inst.links.len();
                let row_max = match outcome {
                    RowOutcome::Hit => {
                        cache_hits += 1;
                        if u >= prev_batch_len {
                            if let Some(d) = delta.as_mut() {
                                // A stale-slot hit: identical to *some*
                                // earlier build of this slot, but not to
                                // the previous build's batch — new ground
                                // for a delta consumer.
                                d.dirty_ues.push(u as u32);
                            }
                        }
                        let row = self.row_cache.as_ref().expect("hit implies cache").slots[u]
                            .as_ref()
                            .expect("hit implies slot");
                        inst.links.extend_from_slice(&row.links);
                        row.row_max
                    }
                    RowOutcome::Miss {
                        links,
                        row_max,
                        kept,
                        deps,
                    } => {
                        if obs_on && pruned {
                            precull_kept += u64::from(kept);
                            precull_rejected += (n_bss - kept as usize) as u64;
                        }
                        if cache_active {
                            cache_misses += 1;
                            if let Some(d) = delta.as_mut() {
                                d.dirty_ues.push(u as u32);
                            }
                            self.row_cache.as_mut().expect("cache_active").store(
                                u,
                                RowKey::of(&inst.ues[u]),
                                &links,
                                row_max,
                                deps,
                            );
                        }
                        inst.links.extend(links);
                        row_max
                    }
                };
                if row_max > max_candidate_distance {
                    max_candidate_distance = row_max;
                }
                inst.f_u.push((inst.links.len() - row_from) as u32);
                inst.row_start.push(inst.links.len());
                let ue_id = inst.ues[u].id;
                for link in &inst.links[row_from..] {
                    inst.covered_ues[link.bs.as_usize()].push(ue_id);
                }
            }
        } else {
            for u in 0..n_ues {
                let row_from = inst.links.len();
                let key = if cache_active {
                    Some(RowKey::of(&inst.ues[u]))
                } else {
                    None
                };
                let mut row_max = Meters::new(0.0);
                let mut hit = false;
                if let Some(key) = &key {
                    if let Some(row) = self
                        .row_cache
                        .as_ref()
                        .expect("cache_active")
                        .lookup(u, key)
                    {
                        inst.links.extend_from_slice(&row.links);
                        row_max = row.row_max;
                        hit = true;
                    }
                }
                if hit {
                    cache_hits += 1;
                    if u >= prev_batch_len {
                        if let Some(d) = delta.as_mut() {
                            // Stale-slot hit past the previous batch
                            // length: new ground for a delta consumer.
                            d.dirty_ues.push(u as u32);
                        }
                    }
                } else {
                    row_max = match &self.prune {
                        Some((index, radius)) => {
                            index.query_within_dist_into(
                                inst.ues[u].position,
                                *radius,
                                &mut self.query_buf,
                            );
                            if obs_on {
                                precull_kept += self.query_buf.len() as u64;
                                precull_rejected += (n_bss - self.query_buf.len()) as u64;
                            }
                            scan_candidate_row_batch(
                                &inst.ues[u],
                                &inst.bss,
                                &self.query_buf,
                                &self.evaluator,
                                self.interference_factor,
                                &self.total_rx_mw,
                                inst.coverage,
                                &inst.pricing,
                                &mut self.batch,
                                &mut inst.links,
                            )
                        }
                        None => scan_candidate_row(
                            &inst.ues[u],
                            &inst.bss,
                            (0..n_bss).map(|b| (b, None)),
                            &self.evaluator,
                            self.interference_factor,
                            &self.total_rx_mw,
                            inst.coverage,
                            &inst.pricing,
                            &mut inst.links,
                        ),
                    };
                    if let Some(key) = key {
                        cache_misses += 1;
                        if let Some(d) = delta.as_mut() {
                            d.dirty_ues.push(u as u32);
                        }
                        // The consulted set is this row's prune-query
                        // hits, still sitting in the query buffer.
                        let deps = self
                            .prune
                            .is_some()
                            .then(|| self.query_buf.iter().map(|&(b, _)| b as u32).collect());
                        let links = &inst.links[row_from..];
                        self.row_cache
                            .as_mut()
                            .expect("cache_active")
                            .store(u, key, links, row_max, deps);
                    }
                }
                if row_max > max_candidate_distance {
                    max_candidate_distance = row_max;
                }
                inst.f_u.push((inst.links.len() - row_from) as u32);
                inst.row_start.push(inst.links.len());
                let ue_id = inst.ues[u].id;
                for link in &inst.links[row_from..] {
                    inst.covered_ues[link.bs.as_usize()].push(ue_id);
                }
            }
        }
        let kernel_ns = kernel_started.map_or(0, |t| {
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
        });
        let mut evicted = 0u64;
        if cache_active {
            let cache = self.row_cache.as_mut().expect("cache_active");
            cache.hits += cache_hits;
            cache.misses += cache_misses;
            evicted = cache.touch_and_evict(n_ues);
        }

        // Constraint (16): the worst-case price is monotone in distance,
        // so only a new high-water distance needs re-validation — and it
        // fails with exactly the error a from-scratch build would raise.
        let margin_recheck = max_candidate_distance > self.validated_distance;
        if margin_recheck {
            inst.pricing
                .validate_margin(&inst.sps, max_candidate_distance)?;
            self.validated_distance = max_candidate_distance;
        }

        // Attach the churn metadata last, under this context's lineage —
        // a build that failed above never emits, and the sequence gap it
        // left behind fails any consumer's continuity check closed.
        if let Some(mut d) = delta {
            d.ctx_id = self.ctx_id;
            d.seq = self.delta_seq;
            inst.delta = Some(d);
        }

        if obs_on {
            // Handles are resolved once and cached; steady-state recording
            // is one atomic op per metric (see BENCH_obs_overhead.json).
            static EPOCH_BUILDS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.epoch_builds");
            static EVENT_BUILDS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.event_builds");
            static ROWS_REBUILT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.rows_rebuilt");
            static PRECULL_KEPT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.precull_kept");
            static PRECULL_REJECTED: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.precull_rejected");
            static LINKS_KEPT: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.links_kept");
            static MARGIN_RECHECKS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.margin_rechecks");
            static VALIDATED_DISTANCE_M: dmra_obs::LazyGauge =
                dmra_obs::LazyGauge::new("online.validated_distance_m");
            static EPOCH_BUILD_NS: dmra_obs::LazyHistogram =
                dmra_obs::LazyHistogram::new("online.epoch_build_ns");
            static EVENT_BUILD_NS: dmra_obs::LazyHistogram =
                dmra_obs::LazyHistogram::new("online.event_build_ns");
            static BATCH_KERNEL_NS: dmra_obs::LazyHistogram =
                dmra_obs::LazyHistogram::new("online.batch_kernel_ns");
            static ROW_CACHE_HITS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.row_cache_hits");
            static ROW_CACHE_MISSES: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.row_cache_misses");
            static ROW_CACHE_INVALIDATIONS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.row_cache_invalidations");
            static ROW_CACHE_EVICTIONS: dmra_obs::LazyCounter =
                dmra_obs::LazyCounter::new("online.row_cache_evictions");
            let inst = &self.instance;
            // The event path mirrors the epoch path under its own build
            // counter/histogram/trace names; the per-row counters below
            // are shared, so aggregate prune statistics stay comparable
            // across engines.
            let builds = if event_time.is_some() {
                EVENT_BUILDS.get()
            } else {
                EPOCH_BUILDS.get()
            };
            builds.inc();
            ROWS_REBUILT.get().add(inst.ues.len() as u64);
            PRECULL_KEPT.get().add(precull_kept);
            PRECULL_REJECTED.get().add(precull_rejected);
            LINKS_KEPT.get().add(inst.links.len() as u64);
            if margin_recheck {
                MARGIN_RECHECKS.get().inc();
            }
            // High-water validated distance, in whole meters.
            VALIDATED_DISTANCE_M
                .get()
                .set_max(self.validated_distance.get() as u64);
            let build_ns = build_started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            if event_time.is_some() {
                EVENT_BUILD_NS.get().record(build_ns);
            } else {
                EPOCH_BUILD_NS.get().record(build_ns);
            }
            // The row scan/batch-kernel phase of the build, cache hits
            // included (a hit is the phase doing its job in O(row)).
            BATCH_KERNEL_NS.get().record(kernel_ns);
            if self.row_cache.is_some() {
                ROW_CACHE_HITS.get().add(cache_hits);
                ROW_CACHE_MISSES.get().add(cache_misses);
                // One unit per BS whose budgets changed this epoch — the
                // per-BS stamping granularity.
                ROW_CACHE_INVALIDATIONS.get().add(invalidated_bss);
                ROW_CACHE_EVICTIONS.get().add(evicted);
            }
            let mut fields = vec![
                ("ues", inst.ues.len() as f64),
                ("precull_kept", precull_kept as f64),
                ("precull_rejected", precull_rejected as f64),
                ("links", inst.links.len() as f64),
                ("margin_recheck", f64::from(u8::from(margin_recheck))),
                ("wall_ns", build_ns as f64),
                ("kernel_ns", kernel_ns as f64),
            ];
            if self.row_cache.is_some() {
                fields.push(("cache_hits", cache_hits as f64));
                fields.push(("cache_misses", cache_misses as f64));
                fields.push(("cache_invalidated_bss", invalidated_bss as f64));
                fields.push(("cache_evictions", evicted as f64));
            }
            if let Some(t) = event_time {
                fields.insert(0, ("time", t));
            }
            dmra_obs::global_trace().record(dmra_obs::TraceEvent {
                name: if event_time.is_some() {
                    "online.event_build"
                } else {
                    "online.epoch_build"
                },
                index: builds.get(),
                fields,
            });
        }
        Ok(&self.instance)
    }

    /// The coverage model the context prunes for.
    #[must_use]
    pub fn coverage(&self) -> CoverageModel {
        self.instance.coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::two_sp_instance;
    use dmra_types::{BitsPerSec, Cru, Dbm, Point, RrbCount, ServiceId, SpId, UeId};

    fn fresh_batch(n: usize) -> Vec<UeSpec> {
        (0..n)
            .map(|u| {
                UeSpec::new(
                    UeId::new(u as u32),
                    SpId::new((u % 2) as u32),
                    Point::new(50.0 + 40.0 * u as f64, 10.0),
                    ServiceId::new(0),
                    Cru::new(4),
                    BitsPerSec::from_mbps(3.0),
                    Dbm::new(10.0),
                )
            })
            .collect()
    }

    fn assert_same_instance(a: &ProblemInstance, b: &ProblemInstance) {
        assert_eq!(a.n_ues(), b.n_ues());
        for u in 0..a.n_ues() {
            let ue = UeId::new(u as u32);
            assert_eq!(a.candidates(ue), b.candidates(ue), "UE {u} rows differ");
            assert_eq!(a.f_u(ue), b.f_u(ue));
        }
        for b_idx in 0..a.n_bss() {
            let bs = dmra_types::BsId::new(b_idx as u32);
            assert_eq!(a.covered_ues(bs), b.covered_ues(bs));
        }
        assert_eq!(a.bss(), b.bss());
    }

    #[test]
    fn epoch_instance_matches_residual_across_epochs() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        // Three "epochs" with shifting budgets and batch sizes; the
        // context must reproduce the scratch residual each time.
        let budgets = [
            (
                vec![
                    vec![Cru::new(100), Cru::new(100)],
                    vec![Cru::new(100), Cru::ZERO],
                ],
                vec![RrbCount::new(55), RrbCount::new(55)],
            ),
            (
                vec![
                    vec![Cru::new(10), Cru::new(5)],
                    vec![Cru::new(7), Cru::ZERO],
                ],
                vec![RrbCount::new(9), RrbCount::new(3)],
            ),
            (
                vec![vec![Cru::ZERO, Cru::ZERO], vec![Cru::new(100), Cru::ZERO]],
                vec![RrbCount::ZERO, RrbCount::new(55)],
            ),
        ];
        for (e, (rem_cru, rem_rrb)) in budgets.iter().enumerate() {
            let batch = fresh_batch(e + 1);
            let scratch = deployment
                .residual(rem_cru, rem_rrb, batch.clone())
                .unwrap();
            let fast = ctx.epoch_instance(rem_cru, rem_rrb, batch).unwrap();
            assert_same_instance(fast, &scratch);
        }
    }

    #[test]
    fn event_instance_builds_the_same_instance_as_epoch_instance() {
        let deployment = two_sp_instance();
        let mut epoch_ctx = DeploymentContext::new(&deployment);
        let mut event_ctx = DeploymentContext::new(&deployment);
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        for e in 0..3usize {
            let batch = fresh_batch(e + 1);
            let scratch = epoch_ctx
                .epoch_instance(&rem_cru, &rem_rrb, batch.clone())
                .unwrap()
                .clone();
            let event = event_ctx
                .event_instance(e as f64, &rem_cru, &rem_rrb, batch)
                .unwrap();
            assert_same_instance(event, &scratch);
        }
    }

    #[test]
    fn epoch_instance_rejects_what_residual_rejects() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        // Wrong outer arity.
        let err = ctx.epoch_instance(&[], &[], fresh_batch(1)).unwrap_err();
        let scratch_err = deployment.residual(&[], &[], fresh_batch(1)).unwrap_err();
        assert_eq!(err, scratch_err);
        // Dangling SP reference in the batch.
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let mut bad = fresh_batch(1);
        bad[0].sp = SpId::new(9);
        let err = ctx
            .epoch_instance(&rem_cru, &rem_rrb, bad.clone())
            .unwrap_err();
        let scratch_err = deployment.residual(&rem_cru, &rem_rrb, bad).unwrap_err();
        assert_eq!(err, scratch_err);
        // And the context still works after the errors.
        let ok = ctx
            .epoch_instance(&rem_cru, &rem_rrb, fresh_batch(2))
            .unwrap();
        assert_eq!(ok.n_ues(), 2);
    }

    #[test]
    fn row_cache_matches_residual_across_budget_churn() {
        // Same UE batch, varying budgets: the stamp must invalidate the
        // cached rows whenever the budgets change, and the cached rebuild
        // must equal the scratch residual every epoch. Epochs 0 and 2
        // share budgets with no change in between epochs 2→3, exercising
        // both the invalidation and the verbatim-reuse paths.
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
        let full_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let full_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let tight_cru = vec![vec![Cru::new(8), Cru::new(4)], vec![Cru::new(5), Cru::ZERO]];
        let tight_rrb = vec![RrbCount::new(6), RrbCount::new(2)];
        let epochs: [(&[Vec<Cru>], &[RrbCount]); 4] = [
            (&full_cru, &full_rrb),
            (&tight_cru, &tight_rrb),
            (&full_cru, &full_rrb),
            (&full_cru, &full_rrb), // unchanged: pure cache-hit epoch
        ];
        let batch = fresh_batch(3);
        for (rem_cru, rem_rrb) in epochs {
            let scratch = deployment
                .residual(rem_cru, rem_rrb, batch.clone())
                .unwrap();
            let fast = ctx.epoch_instance(rem_cru, rem_rrb, batch.clone()).unwrap();
            assert_same_instance(fast, &scratch);
        }
    }

    #[test]
    fn row_cache_tracks_moved_and_changed_ues() {
        // A moved UE, a service change and a demand change must all miss
        // the cache; stationary UEs keep their rows. Equality against the
        // scratch residual is the oracle.
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let mut batch = fresh_batch(4);
        for epoch in 0..4 {
            if epoch > 0 {
                batch[0].position = Point::new(40.0 + 10.0 * epoch as f64, 25.0);
            }
            if epoch == 2 {
                batch[1].service = ServiceId::new(1);
            }
            if epoch == 3 {
                batch[2].cru_demand = Cru::new(7);
                batch[2].rate_demand = BitsPerSec::from_mbps(5.5);
            }
            let scratch = deployment
                .residual(&rem_cru, &rem_rrb, batch.clone())
                .unwrap();
            let fast = ctx
                .epoch_instance(&rem_cru, &rem_rrb, batch.clone())
                .unwrap();
            assert_same_instance(fast, &scratch);
        }
    }

    /// Two cells 5 km apart — far beyond the 300 m coverage radius — so
    /// no UE's prune query ever consults both BSs.
    fn two_distant_cells() -> ProblemInstance {
        use dmra_types::{BsId, BsSpec, Hertz, Money, ServiceCatalog, SpSpec};
        let sps = vec![
            SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0)),
            SpSpec::new(SpId::new(1), Money::new(10.0), Money::new(1.0)),
        ];
        let catalog = ServiceCatalog::new(2);
        let bss = vec![
            BsSpec::new(
                BsId::new(0),
                SpId::new(0),
                Point::new(0.0, 0.0),
                vec![Cru::new(100), Cru::new(100)],
                Hertz::from_mhz(10.0),
                RrbCount::new(55),
            ),
            BsSpec::new(
                BsId::new(1),
                SpId::new(1),
                Point::new(5000.0, 0.0),
                vec![Cru::new(100), Cru::new(100)],
                Hertz::from_mhz(10.0),
                RrbCount::new(55),
            ),
        ];
        ProblemInstance::build(
            sps,
            bss,
            Vec::new(),
            catalog,
            dmra_econ::PricingConfig::paper_defaults(),
            dmra_radio::RadioConfig::paper_defaults(),
            CoverageModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn budget_churn_in_one_cell_keeps_distant_rows_cached() {
        // The per-BS stamp regression: UE 0 lives in BS 0's cell, UE 1 in
        // BS 1's. Draining BS 1's budgets must invalidate only UE 1's
        // row — under the old global stamp both would miss.
        let deployment = two_distant_cells();
        let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
        let full_cru = vec![
            vec![Cru::new(100), Cru::new(100)],
            vec![Cru::new(100), Cru::new(100)],
        ];
        let full_rrb = vec![RrbCount::new(55), RrbCount::new(55)];
        let batch = vec![
            UeSpec::new(
                UeId::new(0),
                SpId::new(0),
                Point::new(50.0, 10.0),
                ServiceId::new(0),
                Cru::new(4),
                BitsPerSec::from_mbps(3.0),
                Dbm::new(10.0),
            ),
            UeSpec::new(
                UeId::new(1),
                SpId::new(1),
                Point::new(4950.0, 10.0),
                ServiceId::new(1),
                Cru::new(3),
                BitsPerSec::from_mbps(2.0),
                Dbm::new(10.0),
            ),
        ];
        let epochs: [(Vec<Vec<Cru>>, Vec<RrbCount>); 4] = [
            (full_cru.clone(), full_rrb.clone()),
            // Drain the *distant* cell: UE 0's row must survive.
            (
                vec![
                    vec![Cru::new(100), Cru::new(100)],
                    vec![Cru::new(7), Cru::new(2)],
                ],
                vec![RrbCount::new(55), RrbCount::new(9)],
            ),
            // And again — only UE 1 rebuilds each time.
            (
                vec![
                    vec![Cru::new(100), Cru::new(100)],
                    vec![Cru::new(3), Cru::new(1)],
                ],
                vec![RrbCount::new(55), RrbCount::new(4)],
            ),
            // Back to full: BS 1's budgets changed again, BS 0's did not.
            (full_cru, full_rrb),
        ];
        let mut expect_hits = 0u64;
        let mut expect_misses = 0u64;
        for (e, (rem_cru, rem_rrb)) in epochs.iter().enumerate() {
            let scratch = deployment
                .residual(rem_cru, rem_rrb, batch.clone())
                .unwrap();
            let fast = ctx.epoch_instance(rem_cru, rem_rrb, batch.clone()).unwrap();
            assert_same_instance(fast, &scratch);
            if e == 0 {
                expect_misses += 2; // cold cache: both rows built
            } else {
                expect_hits += 1; // UE 0 rides through the distant churn
                expect_misses += 1; // UE 1's cell changed
            }
            assert_eq!(
                ctx.row_cache_stats(),
                Some((expect_hits, expect_misses)),
                "epoch {e}"
            );
        }
    }

    #[test]
    fn unchanged_budgets_keep_every_row_cached() {
        let deployment = two_distant_cells();
        let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
        let rem_cru = vec![
            vec![Cru::new(100), Cru::new(100)],
            vec![Cru::new(100), Cru::new(100)],
        ];
        let rem_rrb = vec![RrbCount::new(55), RrbCount::new(55)];
        let batch = fresh_batch(3);
        for _ in 0..3 {
            ctx.epoch_instance(&rem_cru, &rem_rrb, batch.clone())
                .unwrap();
        }
        assert_eq!(ctx.row_cache_stats(), Some((6, 3)));
    }

    #[test]
    fn prebuilt_rows_assemble_the_identical_instance() {
        // Build an epoch normally, lift its rows out, and re-assemble
        // them on a second context: instance, budgets and margin handling
        // must come out identical.
        let deployment = two_sp_instance();
        let mut built = DeploymentContext::new(&deployment);
        let mut assembled = DeploymentContext::new(&deployment);
        let rem_cru = vec![
            vec![Cru::new(20), Cru::new(10)],
            vec![Cru::new(15), Cru::ZERO],
        ];
        let rem_rrb = vec![RrbCount::new(12), RrbCount::new(8)];
        for e in 0..3usize {
            let batch = fresh_batch(e + 2);
            let reference = built
                .epoch_instance(&rem_cru, &rem_rrb, batch.clone())
                .unwrap();
            let mut links = Vec::new();
            let mut row_start = vec![0usize];
            for u in 0..reference.n_ues() {
                links.extend_from_slice(reference.candidates(UeId::new(u as u32)));
                row_start.push(links.len());
            }
            let reference = reference.clone();
            let fast = assembled
                .epoch_instance_prebuilt(&rem_cru, &rem_rrb, batch, &links, &row_start)
                .unwrap();
            assert_same_instance(fast, &reference);
        }
    }

    #[test]
    fn prebuilt_rows_reject_malformed_offsets() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        // Offsets that do not cover the batch.
        let err = ctx
            .epoch_instance_prebuilt(&rem_cru, &rem_rrb, fresh_batch(2), &[], &[0, 0])
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
        // And the context still works afterwards.
        let ok = ctx
            .epoch_instance(&rem_cru, &rem_rrb, fresh_batch(1))
            .unwrap();
        assert_eq!(ok.n_ues(), 1);
    }

    #[test]
    fn site_filter_preserves_rows_whose_disc_stays_inside_the_kept_set() {
        let deployment = two_sp_instance();
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        // A UE at (-50, 0): BS 0 is 50 m away, BS 1 is 350 m away — its
        // whole 300 m prune disc lives in the kept set {BS 0}.
        let batch = vec![UeSpec::new(
            UeId::new(0),
            SpId::new(0),
            Point::new(-50.0, 0.0),
            ServiceId::new(0),
            Cru::new(4),
            BitsPerSec::from_mbps(3.0),
            Dbm::new(10.0),
        )];
        let mut full = DeploymentContext::new(&deployment);
        let reference = full
            .epoch_instance(&rem_cru, &rem_rrb, batch.clone())
            .unwrap()
            .clone();
        let mut filtered = DeploymentContext::new(&deployment).with_site_filter(&[true, false]);
        let fast = filtered.epoch_instance(&rem_cru, &rem_rrb, batch).unwrap();
        assert_same_instance(fast, &reference);
        // All-true mask: trivially identical for any batch.
        let mut all = DeploymentContext::new(&deployment).with_site_filter(&[true, true]);
        let batch = fresh_batch(4);
        let reference = full
            .epoch_instance(&rem_cru, &rem_rrb, batch.clone())
            .unwrap()
            .clone();
        let fast = all.epoch_instance(&rem_cru, &rem_rrb, batch).unwrap();
        assert_same_instance(fast, &reference);
    }

    #[test]
    fn empty_batch_yields_empty_instance() {
        let deployment = two_sp_instance();
        let mut ctx = DeploymentContext::new(&deployment);
        let rem_cru: Vec<Vec<Cru>> = deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect();
        let rem_rrb: Vec<RrbCount> = deployment.bss().iter().map(|b| b.rrb_budget).collect();
        let inst = ctx.epoch_instance(&rem_cru, &rem_rrb, Vec::new()).unwrap();
        assert_eq!(inst.n_ues(), 0);
        assert_eq!(inst.n_bss(), deployment.n_bss());
    }
}
