//! Matching-theoretic analysis of allocations.
//!
//! DMRA descends from deferred acceptance (Gale–Shapley), so it is natural
//! to ask how close its output is to a *stable* matching. The classical
//! notion adapts to this setting as an **envy pair**: a UE `u` and a
//! candidate BS `i'` such that
//!
//! 1. `u` strictly prefers `i'` to its current assignment (or is in the
//!    cloud), under a given preference score, and
//! 2. `i'` still has enough CRUs and RRBs to serve `u` after the
//!    allocation.
//!
//! A matching with no envy pairs cannot be improved by any unilateral
//! UE move — no UE can point at spare capacity it would rather use.
//!
//! **Theorem (tested, not just claimed).** With `ρ = 0` the UE preference
//! of Eq. (17) is static (price only), and DMRA's prune-on-incapacity loop
//! guarantees the final allocation has *zero* price-envy pairs: a UE only
//! settles for a worse-priced BS after every better-priced candidate
//! became (and, by monotonicity, stays) infeasible. With `ρ > 0`
//! preferences drift as resources drain, and envy pairs can appear; the
//! [`envy_pairs_by`] counter quantifies that drift and is reported by the
//! ablation benches.

use crate::allocation::Allocation;
use crate::instance::{CandidateLink, ProblemInstance};
use dmra_types::UeId;

/// One envy pair found by the analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvyPair {
    /// The envious UE.
    pub ue: UeId,
    /// The link it would prefer (and which still has capacity for it).
    pub preferred: CandidateLink,
    /// The score of the preferred link (lower is better).
    pub preferred_score: f64,
    /// The score of the UE's current assignment (`+∞` for cloud UEs).
    pub current_score: f64,
}

/// Finds all envy pairs of `allocation` under a custom preference score
/// (**lower is better**), considering only BSs with enough remaining
/// capacity to actually serve the UE.
///
/// # Panics
///
/// Panics if the allocation does not belong to this instance.
#[must_use]
pub fn envy_pairs_by<F>(
    instance: &ProblemInstance,
    allocation: &Allocation,
    mut score: F,
) -> Vec<EnvyPair>
where
    F: FnMut(UeId, &CandidateLink) -> f64,
{
    let rem_cru = instance.remaining_cru(allocation);
    let rem_rrb = instance.remaining_rrbs(allocation);
    let mut pairs = Vec::new();
    for ue in instance.ues() {
        let current_score = match allocation.bs_of(ue.id) {
            Some(bs) => {
                let link = instance
                    .link(ue.id, bs)
                    .expect("assignment must be a candidate link");
                score(ue.id, link)
            }
            None => f64::INFINITY,
        };
        for link in instance.candidates(ue.id) {
            if Some(link.bs) == allocation.bs_of(ue.id) {
                continue;
            }
            let i = link.bs.as_usize();
            let fits =
                rem_cru[i][ue.service.as_usize()] >= ue.cru_demand && rem_rrb[i] >= link.n_rrbs;
            if !fits {
                continue;
            }
            let s = score(ue.id, link);
            if s < current_score {
                pairs.push(EnvyPair {
                    ue: ue.id,
                    preferred: *link,
                    preferred_score: s,
                    current_score,
                });
            }
        }
    }
    pairs
}

/// Envy pairs under the pure price preference (`ρ = 0` reading of
/// Eq. (17)): a UE envies any *cheaper* candidate that still has room.
///
/// DMRA run with `ρ = 0` produces allocations with **no** such pairs; see
/// the module docs and the `stability` tests.
#[must_use]
pub fn price_envy_pairs(instance: &ProblemInstance, allocation: &Allocation) -> Vec<EnvyPair> {
    envy_pairs_by(instance, allocation, |_, link| link.price.get())
}

/// Envy pairs under the full Eq. (17) preference at a given `ρ`, evaluated
/// against the *end-state* remaining resources.
#[must_use]
pub fn eq17_envy_pairs(
    instance: &ProblemInstance,
    allocation: &Allocation,
    rho: f64,
) -> Vec<EnvyPair> {
    let rem_cru = instance.remaining_cru(allocation);
    let rem_rrb = instance.remaining_rrbs(allocation);
    envy_pairs_by(instance, allocation, |ue, link| {
        let i = link.bs.as_usize();
        let svc = instance.ues()[ue.as_usize()].service.as_usize();
        let denom = rem_cru[i][svc].as_f64() + rem_rrb[i].as_f64();
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            link.price.get() + rho / denom
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Allocator;
    use crate::dmra::{Dmra, DmraConfig};
    use crate::instance::tests::two_sp_instance;

    #[test]
    fn dmra_rho_zero_has_no_price_envy() {
        let inst = two_sp_instance();
        let alloc = Dmra::new(DmraConfig::paper_defaults().with_rho(0.0)).allocate(&inst);
        assert!(price_envy_pairs(&inst, &alloc).is_empty());
    }

    #[test]
    fn cloud_only_allocation_exposes_envy() {
        let inst = two_sp_instance();
        let alloc = crate::allocation::Allocation::all_cloud(inst.n_ues());
        // Every covered UE envies every candidate (all capacity is free).
        let pairs = price_envy_pairs(&inst, &alloc);
        let expected: usize = inst.ues().iter().map(|u| inst.f_u(u.id) as usize).sum();
        assert_eq!(pairs.len(), expected);
        assert!(pairs.iter().all(|p| p.current_score.is_infinite()));
    }

    #[test]
    fn envy_requires_remaining_capacity() {
        let inst = two_sp_instance();
        let alloc = Dmra::default().allocate(&inst);
        // Custom score that makes every non-assigned link "better": the
        // only surviving pairs must point at BSs with real spare capacity.
        let pairs = envy_pairs_by(&inst, &alloc, |_, _| -1.0);
        let rem_rrb = inst.remaining_rrbs(&alloc);
        for p in pairs {
            assert!(rem_rrb[p.preferred.bs.as_usize()] >= p.preferred.n_rrbs);
        }
    }

    #[test]
    fn eq17_envy_is_scored_against_end_state() {
        let inst = two_sp_instance();
        let alloc = Dmra::default().allocate(&inst);
        // Just exercise both rho regimes; counts are instance-specific.
        let zero = eq17_envy_pairs(&inst, &alloc, 0.0);
        let high = eq17_envy_pairs(&inst, &alloc, 1000.0);
        // Scores must be finite for feasible links.
        for p in zero.iter().chain(high.iter()) {
            assert!(p.preferred_score.is_finite());
        }
    }
}
