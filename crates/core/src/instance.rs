//! The validated, immutable problem input.

use dmra_econ::{PricingConfig, ProfitLedger, ProfitReport};
use dmra_geo::GridIndex;
use dmra_par::{par_map_indexed, par_map_indexed_scratch, Threads};
use dmra_radio::{InterferenceModel, LinkBatch, LinkEvaluator, RadioConfig};
use dmra_types::{
    BitsPerSec, BsId, BsSpec, Cru, Error, Meters, Money, Result, RrbCount, ServiceCatalog, SpSpec,
    UeId, UeSpec,
};
use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;

/// When is a UE "covered" by a BS?
///
/// The paper assumes a coverage relation (`B_u` is "the set of BSs which
/// can cover UE u") but never quantifies it; both readings below produce
/// the densely-overlapped multi-BS coverage the evaluation relies on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoverageModel {
    /// In coverage iff the UE–BS distance is at most the radius.
    FixedRadius(Meters),
    /// In coverage iff the link sustains at least this per-RRB rate —
    /// equivalently an SINR threshold, expressed in rate units.
    MinPerRrbRate(BitsPerSec),
}

impl Default for CoverageModel {
    /// 300 m — matched to the paper's 300 m inter-site distance, the usual
    /// coverage scale of a dense small-cell grid. UEs then see 1–4 BSs of
    /// mixed SPs with near-uniform per-RRB rates across candidates, which
    /// is the regime in which the paper's Fig. 6/7 claims about the ρ knob
    /// hold (see the `coverage_study` example and EXPERIMENTS.md).
    fn default() -> Self {
        CoverageModel::FixedRadius(Meters::new(300.0))
    }
}

/// How candidate generation enumerates the potential serving BSs of a UE.
///
/// Under [`CoverageModel::FixedRadius`] every BS farther than the radius
/// fails the coverage check anyway, so a [`GridIndex`] radius query can
/// skip them without evaluating a single link. The query returns indices
/// in ascending order — the same order the exhaustive loop visits BSs —
/// and uses the identical `distance ≤ r` predicate on the identical
/// (symmetric, `hypot`-based) distance, so the surviving candidate rows
/// are bit-for-bit the rows the exhaustive scan produces. The
/// `incremental` integration tests pin this equality at paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateScan {
    /// Prune with a spatial index when the coverage model allows it
    /// (fixed radius, positive and finite); otherwise scan exhaustively.
    #[default]
    Auto,
    /// Always evaluate every BS — the original O(U×B) loop, kept as the
    /// executable specification the pruned path is compared against.
    Exhaustive,
}

/// One feasible UE–BS pairing with everything the matchers need to know.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateLink {
    /// The candidate BS.
    pub bs: BsId,
    /// `d_{i,u}`.
    pub distance: Meters,
    /// `λ_{u,i}` (linear).
    pub sinr_linear: f64,
    /// `e_{u,i}`: per-RRB rate (Eq. (2)).
    pub per_rrb_rate: BitsPerSec,
    /// `n_{u,i}`: RRBs this UE would consume at this BS (Eq. (3)).
    pub n_rrbs: RrbCount,
    /// `p_{i,u}`: the per-CRU price this BS charges this UE (Eqs. (9)–(10)).
    pub price: Money,
    /// Whether UE and BS belong to the same SP.
    pub same_sp: bool,
}

/// An immutable, validated snapshot of one batch of offloading requests.
///
/// Construction precomputes, for every UE, the candidate set `B_u`: the BSs
/// that cover it, host its requested service, and can physically carry its
/// demand (`n_{u,i} ≤ N_i`). All allocators run on these identical inputs.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    pub(crate) sps: Vec<SpSpec>,
    pub(crate) bss: Vec<BsSpec>,
    pub(crate) ues: Vec<UeSpec>,
    pub(crate) catalog: ServiceCatalog,
    pub(crate) pricing: PricingConfig,
    pub(crate) radio: RadioConfig,
    pub(crate) coverage: CoverageModel,
    /// All candidate links, flattened row-major by UE id: UE `u` owns
    /// `links[row_start[u]..row_start[u + 1]]`, sorted by BS id. The flat
    /// layout lets the online engine rebuild rows in place each epoch
    /// without dropping/reallocating one `Vec` per UE.
    pub(crate) links: Vec<CandidateLink>,
    /// Row boundaries into `links`, length `n_ues + 1`.
    pub(crate) row_start: Vec<usize>,
    /// `f_u`: number of candidate BSs of UE `u` (the statistic the BS-side
    /// tie-break of Algorithm 1 uses).
    pub(crate) f_u: Vec<u32>,
    /// `covered_ues[i]` = UEs within coverage of BS `i` that request a
    /// service it hosts — the broadcast domain of Algorithm 1 line 26.
    pub(crate) covered_ues: Vec<Vec<UeId>>,
    /// Cross-epoch churn metadata attached by the online
    /// [`DeploymentContext`](crate::DeploymentContext) when its row cache
    /// is active; `None` everywhere else (from-scratch builds, residuals,
    /// cacheless contexts). Never consulted by any allocator decision —
    /// only the delta solve path reads it, and only to decide which
    /// already-solved components it may *replay* (DESIGN.md §17), so two
    /// instances differing solely in this field produce bit-identical
    /// outcomes on every path.
    pub(crate) delta: Option<DeltaInfo>,
}

/// Which parts of an epoch instance may differ from the previous epoch's,
/// as tracked by the online row cache: an over-approximation — every UE
/// whose candidate row changed is listed, every BS whose remaining budgets
/// changed is listed, but listed entries need not have changed.
///
/// `ctx_id`/`seq` carry the lineage: dirty sets are diffs against the
/// *immediately preceding* build (`seq - 1`) of the *same* context
/// (`ctx_id`). A consumer holding state from any other (context, seq)
/// must treat everything as dirty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaInfo {
    /// Unique id of the [`DeploymentContext`](crate::DeploymentContext)
    /// that built this instance (process-global counter).
    pub ctx_id: u64,
    /// Build sequence number within the context, bumped on every build
    /// whose row-cache state advanced — including builds that later
    /// failed validation, so a consumer's continuity check cannot be
    /// fooled by an unobserved intermediate build.
    pub seq: u64,
    /// UE slots whose candidate row is *not* known to be bit-identical to
    /// the previous build's row at the same slot (cache misses, plus every
    /// slot past the previous build's batch length). Ascending.
    pub dirty_ues: Vec<u32>,
    /// BSs whose remaining budgets changed in this build (the row cache's
    /// freshly stamped set). Ascending.
    pub dirty_bss: Vec<u32>,
}

impl ProblemInstance {
    /// Builds and validates an instance.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidConfig`] for non-dense ids, empty entity lists or
    ///   invalid pricing constants.
    /// * [`Error::UnknownSp`] / [`Error::UnknownService`] for dangling
    ///   references.
    /// * [`Error::UnprofitablePricing`] if constraint (16) fails for some
    ///   SP at the worst-case candidate distance.
    pub fn build(
        sps: Vec<SpSpec>,
        bss: Vec<BsSpec>,
        ues: Vec<UeSpec>,
        catalog: ServiceCatalog,
        pricing: PricingConfig,
        radio: RadioConfig,
        coverage: CoverageModel,
    ) -> Result<Self> {
        Self::build_with_threads(
            sps,
            bss,
            ues,
            catalog,
            pricing,
            radio,
            coverage,
            Threads::Auto,
        )
    }

    /// [`ProblemInstance::build`] with an explicit thread-count knob.
    ///
    /// The per-UE candidate rows are independent, so they are fanned out
    /// over `threads` workers and merged back in UE-id order — the result
    /// is bit-identical to a serial build for every thread count (the
    /// `parallelism` integration tests enforce this).
    ///
    /// # Errors
    ///
    /// Same as [`ProblemInstance::build`].
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_threads(
        sps: Vec<SpSpec>,
        bss: Vec<BsSpec>,
        ues: Vec<UeSpec>,
        catalog: ServiceCatalog,
        pricing: PricingConfig,
        radio: RadioConfig,
        coverage: CoverageModel,
        threads: Threads,
    ) -> Result<Self> {
        Self::build_with_scan(
            sps,
            bss,
            ues,
            catalog,
            pricing,
            radio,
            coverage,
            threads,
            CandidateScan::Auto,
        )
    }

    /// [`ProblemInstance::build_with_threads`] with an explicit
    /// [`CandidateScan`] knob, letting tests and benchmarks force the
    /// exhaustive O(U×B) scan that [`CandidateScan::Auto`] prunes away
    /// under a fixed coverage radius.
    ///
    /// # Errors
    ///
    /// Same as [`ProblemInstance::build`].
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_scan(
        sps: Vec<SpSpec>,
        bss: Vec<BsSpec>,
        ues: Vec<UeSpec>,
        catalog: ServiceCatalog,
        pricing: PricingConfig,
        radio: RadioConfig,
        coverage: CoverageModel,
        threads: Threads,
        scan: CandidateScan,
    ) -> Result<Self> {
        if sps.is_empty() {
            return Err(Error::InvalidConfig("need at least one SP".into()));
        }
        for (i, sp) in sps.iter().enumerate() {
            if sp.id.as_usize() != i {
                return Err(Error::InvalidConfig(format!(
                    "SP ids must be dense and ordered; found {} at position {i}",
                    sp.id
                )));
            }
        }
        for (i, bs) in bss.iter().enumerate() {
            if bs.id.as_usize() != i {
                return Err(Error::InvalidConfig(format!(
                    "BS ids must be dense and ordered; found {} at position {i}",
                    bs.id
                )));
            }
            if bs.sp.as_usize() >= sps.len() {
                return Err(Error::UnknownSp(bs.sp));
            }
            if bs.cru_budget.len() != catalog.len() as usize {
                return Err(Error::InvalidConfig(format!(
                    "{} has {} service budgets but the catalog has {} services",
                    bs.id,
                    bs.cru_budget.len(),
                    catalog.len()
                )));
            }
        }
        validate_ues(&ues, sps.len(), catalog)?;
        pricing.validate()?;

        let evaluator = LinkEvaluator::new(radio);

        // Aggregate received power per BS, for the load-proportional
        // interference model (zero under noise-only).
        let interference_factor = match radio.interference {
            InterferenceModel::NoiseOnly => 0.0,
            InterferenceModel::LoadProportional { factor } => factor,
        };
        // Fan-out threshold: below this many items the work is too small
        // for thread spawns to pay off, so the build stays serial.
        const PAR_MIN_ITEMS: usize = 32;
        let rx_threads = if ues.len() * bss.len() >= PAR_MIN_ITEMS * PAR_MIN_ITEMS {
            threads
        } else {
            Threads::serial()
        };
        let total_rx_mw: Vec<f64> = if interference_factor > 0.0 {
            // Each BS's aggregate sums over the UEs in id order, so the
            // floating-point result is independent of the worker count.
            par_map_indexed(rx_threads, bss.len(), |b| {
                let bs = &bss[b];
                ues.iter()
                    .map(|ue| evaluator.rx_power_mw(ue.tx_power, ue.position, bs.position))
                    .sum()
            })
        } else {
            vec![0.0; bss.len()]
        };

        // Candidate rows are per-UE independent: compute them in parallel,
        // then merge serially in UE-id order so `covered_ues` and the
        // max-distance fold come out exactly as in a serial build.
        let row_threads = if ues.len() >= PAR_MIN_ITEMS {
            threads
        } else {
            Threads::serial()
        };
        let prune = coverage_prune_index(&bss, coverage, scan);
        let rows: Vec<(Vec<CandidateLink>, Meters)> =
            par_map_indexed_scratch(row_threads, ues.len(), RowScratch::default, |scratch, u| {
                candidate_row(
                    &ues[u],
                    &bss,
                    &evaluator,
                    interference_factor,
                    &total_rx_mw,
                    coverage,
                    &pricing,
                    prune.as_ref(),
                    scratch,
                )
            });

        let mut links: Vec<CandidateLink> = Vec::new();
        let mut row_start: Vec<usize> = Vec::with_capacity(ues.len() + 1);
        row_start.push(0);
        let mut f_u: Vec<u32> = Vec::with_capacity(ues.len());
        let mut covered_ues: Vec<Vec<UeId>> = vec![Vec::new(); bss.len()];
        let mut max_candidate_distance = Meters::new(0.0);
        for (ue, (row, row_max)) in ues.iter().zip(rows) {
            for link in &row {
                covered_ues[link.bs.as_usize()].push(ue.id);
            }
            if row_max > max_candidate_distance {
                max_candidate_distance = row_max;
            }
            f_u.push(row.len() as u32);
            links.extend(row);
            row_start.push(links.len());
        }

        // Constraint (16) must hold for every reachable price.
        pricing.validate_margin(&sps, max_candidate_distance)?;

        Ok(Self {
            sps,
            bss,
            ues,
            catalog,
            pricing,
            radio,
            coverage,
            links,
            row_start,
            f_u,
            covered_ues,
            delta: None,
        })
    }

    /// The cross-epoch churn metadata of this build, when the producing
    /// [`DeploymentContext`](crate::DeploymentContext) tracked it (see
    /// [`DeltaInfo`]).
    #[must_use]
    pub fn delta(&self) -> Option<&DeltaInfo> {
        self.delta.as_ref()
    }

    /// The service providers, ordered by id.
    #[must_use]
    pub fn sps(&self) -> &[SpSpec] {
        &self.sps
    }

    /// The base stations, ordered by id.
    #[must_use]
    pub fn bss(&self) -> &[BsSpec] {
        &self.bss
    }

    /// The user equipments, ordered by id.
    #[must_use]
    pub fn ues(&self) -> &[UeSpec] {
        &self.ues
    }

    /// The service catalog.
    #[must_use]
    pub fn catalog(&self) -> ServiceCatalog {
        self.catalog
    }

    /// The pricing configuration.
    #[must_use]
    pub fn pricing(&self) -> &PricingConfig {
        &self.pricing
    }

    /// The radio configuration.
    #[must_use]
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// The coverage model.
    #[must_use]
    pub fn coverage(&self) -> CoverageModel {
        self.coverage
    }

    /// `B_u`: the candidate links of UE `u`, sorted by BS id.
    ///
    /// # Panics
    ///
    /// Panics if `ue` is not part of this instance.
    #[must_use]
    pub fn candidates(&self, ue: UeId) -> &[CandidateLink] {
        let u = ue.as_usize();
        &self.links[self.row_start[u]..self.row_start[u + 1]]
    }

    /// `f_u`: the number of candidate BSs of UE `u`.
    ///
    /// # Panics
    ///
    /// Panics if `ue` is not part of this instance.
    #[must_use]
    pub fn f_u(&self, ue: UeId) -> u32 {
        self.f_u[ue.as_usize()]
    }

    /// The UEs inside the coverage/broadcast domain of BS `i`.
    ///
    /// # Panics
    ///
    /// Panics if `bs` is not part of this instance.
    #[must_use]
    pub fn covered_ues(&self, bs: BsId) -> &[UeId] {
        &self.covered_ues[bs.as_usize()]
    }

    /// Looks up the candidate link between `ue` and `bs`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `ue` is not part of this instance.
    #[must_use]
    pub fn link(&self, ue: UeId, bs: BsId) -> Option<&CandidateLink> {
        self.candidates(ue).iter().find(|l| l.bs == bs)
    }

    /// Number of UEs.
    #[must_use]
    pub fn n_ues(&self) -> usize {
        self.ues.len()
    }

    /// Number of BSs.
    #[must_use]
    pub fn n_bss(&self) -> usize {
        self.bss.len()
    }

    /// Number of SPs.
    #[must_use]
    pub fn n_sps(&self) -> usize {
        self.sps.len()
    }

    /// Computes the paper's Eqs. (5)–(8) profit report for an allocation.
    ///
    /// # Panics
    ///
    /// Panics if the allocation references UE–BS pairs that are not
    /// candidate links of this instance (run [`Allocation::validate`]
    /// first when in doubt).
    #[must_use]
    pub fn profit_report(&self, allocation: &Allocation) -> ProfitReport {
        let mut ledger = ProfitLedger::new(&self.sps);
        for ue in &self.ues {
            match allocation.bs_of(ue.id) {
                Some(bs) => {
                    let link = self
                        .link(ue.id, bs)
                        .expect("allocation must only use candidate links");
                    ledger.record_edge_service(ue.sp, ue.cru_demand, link.price);
                }
                None => ledger.record_cloud_forward(ue.sp),
            }
        }
        ledger.report()
    }

    /// Total uplink demand (in bit/s) of the UEs the allocation forwards to
    /// the cloud — the paper's *total forwarded traffic load* (Fig. 7).
    #[must_use]
    pub fn forwarded_load(&self, allocation: &Allocation) -> BitsPerSec {
        self.ues
            .iter()
            .filter(|ue| allocation.bs_of(ue.id).is_none())
            .map(|ue| ue.rate_demand)
            .sum()
    }

    /// The TPM objective value `Σ_k W_k` of an allocation.
    #[must_use]
    pub fn total_profit(&self, allocation: &Allocation) -> Money {
        self.profit_report(allocation).total_profit()
    }

    /// Remaining per-service CRU budgets after an allocation, indexed
    /// `[bs][service]` — used by tests and by resource-utilization metrics.
    #[must_use]
    pub fn remaining_cru(&self, allocation: &Allocation) -> Vec<Vec<Cru>> {
        let mut rem: Vec<Vec<Cru>> = self.bss.iter().map(|b| b.cru_budget.clone()).collect();
        for ue in &self.ues {
            if let Some(bs) = allocation.bs_of(ue.id) {
                let slot = &mut rem[bs.as_usize()][ue.service.as_usize()];
                *slot = slot.saturating_sub(ue.cru_demand);
            }
        }
        rem
    }

    /// Builds a *residual* instance: the same deployment (SPs, catalog,
    /// pricing, radio, coverage) and BS positions, but with the given
    /// remaining budgets and a new batch of UEs.
    ///
    /// This is the building block of the online regimes (`dmra-sim`'s
    /// arrival/departure and sticky-mobility simulators): already-admitted
    /// tasks keep their resources, and each new batch is matched against
    /// what is left.
    ///
    /// # Errors
    ///
    /// Propagates [`ProblemInstance::build`] validation errors (including
    /// budget-vector arity mismatches).
    pub fn residual(
        &self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
    ) -> Result<ProblemInstance> {
        self.residual_with(rem_cru, rem_rrb, ues, Threads::Auto, CandidateScan::Auto)
    }

    /// [`ProblemInstance::residual`] with explicit thread-count and
    /// candidate-scan knobs. The scratch online engine uses this to pin
    /// down its baseline exactly (serial or fixed-width exhaustive
    /// rebuilds), and the equality tests sweep both knobs to prove the
    /// incremental engine bit-identical to every configuration.
    ///
    /// # Errors
    ///
    /// Same as [`ProblemInstance::residual`].
    pub fn residual_with(
        &self,
        rem_cru: &[Vec<Cru>],
        rem_rrb: &[RrbCount],
        ues: Vec<UeSpec>,
        threads: Threads,
        scan: CandidateScan,
    ) -> Result<ProblemInstance> {
        if rem_cru.len() != self.bss.len() || rem_rrb.len() != self.bss.len() {
            return Err(Error::InvalidConfig(format!(
                "residual budgets cover {} / {} BSs but the instance has {}",
                rem_cru.len(),
                rem_rrb.len(),
                self.bss.len()
            )));
        }
        let bss: Vec<BsSpec> = self
            .bss
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mut spec = b.clone();
                spec.cru_budget = rem_cru[i].clone();
                spec.rrb_budget = rem_rrb[i];
                spec
            })
            .collect();
        ProblemInstance::build_with_scan(
            self.sps.clone(),
            bss,
            ues,
            self.catalog,
            self.pricing,
            self.radio,
            self.coverage,
            threads,
            scan,
        )
    }

    /// Remaining RRB budgets after an allocation, indexed by BS.
    #[must_use]
    pub fn remaining_rrbs(&self, allocation: &Allocation) -> Vec<RrbCount> {
        let mut rem: Vec<RrbCount> = self.bss.iter().map(|b| b.rrb_budget).collect();
        for ue in &self.ues {
            if let Some(bs) = allocation.bs_of(ue.id) {
                if let Some(link) = self.link(ue.id, bs) {
                    rem[bs.as_usize()] = rem[bs.as_usize()].saturating_sub(link.n_rrbs);
                }
            }
        }
        rem
    }
}

/// Validates one batch of UEs against the deployment (dense ids, known SP,
/// known service) — shared between the static build and the online
/// engine's per-epoch batch so both reject exactly the same inputs.
pub(crate) fn validate_ues(ues: &[UeSpec], n_sps: usize, catalog: ServiceCatalog) -> Result<()> {
    for (i, ue) in ues.iter().enumerate() {
        if ue.id.as_usize() != i {
            return Err(Error::InvalidConfig(format!(
                "UE ids must be dense and ordered; found {} at position {i}",
                ue.id
            )));
        }
        if ue.sp.as_usize() >= n_sps {
            return Err(Error::UnknownSp(ue.sp));
        }
        if !catalog.contains(ue.service) {
            return Err(Error::UnknownService(ue.service));
        }
    }
    Ok(())
}

/// Builds the spatial prune index for candidate generation, when the scan
/// mode and coverage model allow one: a [`GridIndex`] over the BS sites
/// with the coverage radius as both cell size and query radius.
pub(crate) fn coverage_prune_index(
    bss: &[BsSpec],
    coverage: CoverageModel,
    scan: CandidateScan,
) -> Option<(GridIndex, Meters)> {
    match (scan, coverage) {
        (CandidateScan::Auto, CoverageModel::FixedRadius(r)) if r.get() > 0.0 && r.is_finite() => {
            let sites: Vec<_> = bss.iter().map(|b| b.position).collect();
            Some((GridIndex::build(&sites, r), r))
        }
        _ => None,
    }
}

/// Reusable per-worker scratch for candidate-row generation: the pruning
/// query's hit list and the batch kernel's structure-of-arrays buffers.
/// One lives on each fan-out worker (via [`par_map_indexed_scratch`]), so
/// a build allocates only up to its high-water candidate count instead of
/// once per UE.
#[derive(Debug, Default)]
pub(crate) struct RowScratch {
    pub(crate) nearby: Vec<(usize, Meters)>,
    pub(crate) batch: LinkBatch,
}

/// Computes one UE's candidate links (in BS-id order) and the largest
/// candidate distance in the row. Pure function of its arguments (the
/// scratch is overwritten before use) — the parallel build relies on that
/// for bit-identical fan-out.
#[allow(clippy::too_many_arguments)]
fn candidate_row(
    ue: &UeSpec,
    bss: &[BsSpec],
    evaluator: &LinkEvaluator,
    interference_factor: f64,
    total_rx_mw: &[f64],
    coverage: CoverageModel,
    pricing: &PricingConfig,
    prune: Option<&(GridIndex, Meters)>,
    scratch: &mut RowScratch,
) -> (Vec<CandidateLink>, Meters) {
    let mut links = Vec::new();
    let row_max = match prune {
        Some((index, r)) => {
            index.query_within_dist_into(ue.position, *r, &mut scratch.nearby);
            scan_candidate_row_batch(
                ue,
                bss,
                &scratch.nearby,
                evaluator,
                interference_factor,
                total_rx_mw,
                coverage,
                pricing,
                &mut scratch.batch,
                &mut links,
            )
        }
        None => scan_candidate_row(
            ue,
            bss,
            (0..bss.len()).map(|b| (b, None)),
            evaluator,
            interference_factor,
            total_rx_mw,
            coverage,
            pricing,
            &mut links,
        ),
    };
    (links, row_max)
}

/// Appends one UE's candidate links over the given BS indices to `out`
/// (the indices must be ascending so the row comes out sorted by BS id)
/// and returns the largest accepted candidate distance.
///
/// This is the single scan kernel behind the static build (exhaustive or
/// pruned) and the online engine's in-place epoch rebuild. Each index may
/// carry the already-computed UE–BS distance (a pruning query measures it
/// while filtering); the evaluator then skips its own `hypot`, which is
/// bit-identical because the query uses the same `Point::distance`. When
/// `interference_factor` is zero the per-BS own-received-power lookup is
/// skipped entirely: the interference term is `factor × (total − own)⁺`,
/// which is exactly `0.0` either way, so the skip is bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_candidate_row(
    ue: &UeSpec,
    bss: &[BsSpec],
    bs_indices: impl Iterator<Item = (usize, Option<Meters>)>,
    evaluator: &LinkEvaluator,
    interference_factor: f64,
    total_rx_mw: &[f64],
    coverage: CoverageModel,
    pricing: &PricingConfig,
    out: &mut Vec<CandidateLink>,
) -> Meters {
    let mut row_max = Meters::new(0.0);
    for (b, known_distance) in bs_indices {
        let bs = &bss[b];
        if !bs.hosts(ue.service) {
            continue;
        }
        let interference_mw = if interference_factor > 0.0 {
            let own_rx = evaluator.rx_power_mw(ue.tx_power, ue.position, bs.position);
            interference_factor * (total_rx_mw[bs.id.as_usize()] - own_rx).max(0.0)
        } else {
            0.0
        };
        let distance = known_distance.unwrap_or_else(|| ue.position.distance(bs.position));
        let metrics = evaluator.evaluate_at_distance(
            ue.tx_power,
            ue.position,
            bs.position,
            distance,
            interference_mw,
        );
        let in_coverage = match coverage {
            CoverageModel::FixedRadius(r) => metrics.distance <= r,
            CoverageModel::MinPerRrbRate(min_rate) => metrics.per_rrb_rate >= min_rate,
        };
        if !in_coverage {
            continue;
        }
        let Some(n_rrbs) = evaluator.rrbs_required(ue.rate_demand, metrics.per_rrb_rate) else {
            continue;
        };
        // A link that can never fit the BS's total radio budget is not a
        // candidate (Algorithm 1 would prune it on first try).
        if n_rrbs > bs.rrb_budget || ue.cru_demand > bs.cru_budget_for(ue.service) {
            continue;
        }
        let same_sp = ue.sp == bs.sp;
        let price = pricing.bs_cru_price(same_sp, metrics.distance);
        if metrics.distance > row_max {
            row_max = metrics.distance;
        }
        out.push(CandidateLink {
            bs: bs.id,
            distance: metrics.distance,
            sinr_linear: metrics.sinr_linear,
            per_rrb_rate: metrics.per_rrb_rate,
            n_rrbs,
            price,
            same_sp,
        });
    }
    row_max
}

/// The batched form of [`scan_candidate_row`]: one UE's pruned candidate
/// slice (ascending BS indices with exact measured distances, i.e. the
/// `query_within_dist_into` output) goes through
/// [`LinkEvaluator::evaluate_batch`] in structure-of-arrays passes, then a
/// scalar tail applies the same coverage/demand/budget filters in the same
/// order. Under [`BatchMode::Exact`](dmra_radio::BatchMode::Exact) — the
/// default — every accepted link is bit-identical to the scalar scan's,
/// which the `incremental` and `mobility_incremental` integration tests
/// pin against the exhaustive executable spec.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_candidate_row_batch(
    ue: &UeSpec,
    bss: &[BsSpec],
    nearby: &[(usize, Meters)],
    evaluator: &LinkEvaluator,
    interference_factor: f64,
    total_rx_mw: &[f64],
    coverage: CoverageModel,
    pricing: &PricingConfig,
    batch: &mut LinkBatch,
    out: &mut Vec<CandidateLink>,
) -> Meters {
    batch.clear();
    for &(b, distance) in nearby {
        let bs = &bss[b];
        if !bs.hosts(ue.service) {
            continue;
        }
        // `total_rx_mw` is all-zero under noise-only, so the kernel's
        // interference term vanishes exactly as in the scalar scan.
        batch.push(b as u32, bs.position, distance, total_rx_mw[b]);
    }
    evaluator.evaluate_batch(ue.tx_power, ue.position, interference_factor, batch);
    let mut row_max = Meters::new(0.0);
    for j in 0..batch.len() {
        let bs = &bss[batch.tag(j) as usize];
        let metrics = batch.metrics(j);
        let in_coverage = match coverage {
            CoverageModel::FixedRadius(r) => metrics.distance <= r,
            CoverageModel::MinPerRrbRate(min_rate) => metrics.per_rrb_rate >= min_rate,
        };
        if !in_coverage {
            continue;
        }
        let Some(n_rrbs) = evaluator.rrbs_required(ue.rate_demand, metrics.per_rrb_rate) else {
            continue;
        };
        if n_rrbs > bs.rrb_budget || ue.cru_demand > bs.cru_budget_for(ue.service) {
            continue;
        }
        let same_sp = ue.sp == bs.sp;
        let price = pricing.bs_cru_price(same_sp, metrics.distance);
        if metrics.distance > row_max {
            row_max = metrics.distance;
        }
        out.push(CandidateLink {
            bs: bs.id,
            distance: metrics.distance,
            sinr_linear: metrics.sinr_linear,
            per_rrb_rate: metrics.per_rrb_rate,
            n_rrbs,
            price,
            same_sp,
        });
    }
    row_max
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dmra_types::{Dbm, Hertz, Point, ServiceId, SpId};

    pub(crate) fn two_sp_instance() -> ProblemInstance {
        let sps = vec![
            SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0)),
            SpSpec::new(SpId::new(1), Money::new(10.0), Money::new(1.0)),
        ];
        let catalog = ServiceCatalog::new(2);
        let bss = vec![
            BsSpec::new(
                BsId::new(0),
                SpId::new(0),
                Point::new(0.0, 0.0),
                vec![Cru::new(100), Cru::new(100)],
                Hertz::from_mhz(10.0),
                RrbCount::new(55),
            ),
            BsSpec::new(
                BsId::new(1),
                SpId::new(1),
                Point::new(300.0, 0.0),
                vec![Cru::new(100), Cru::ZERO],
                Hertz::from_mhz(10.0),
                RrbCount::new(55),
            ),
        ];
        let ues = vec![
            UeSpec::new(
                UeId::new(0),
                SpId::new(0),
                Point::new(100.0, 0.0),
                ServiceId::new(0),
                Cru::new(4),
                BitsPerSec::from_mbps(3.0),
                Dbm::new(10.0),
            ),
            UeSpec::new(
                UeId::new(1),
                SpId::new(1),
                Point::new(200.0, 0.0),
                ServiceId::new(1),
                Cru::new(3),
                BitsPerSec::from_mbps(2.0),
                Dbm::new(10.0),
            ),
        ];
        ProblemInstance::build(
            sps,
            bss,
            ues,
            catalog,
            PricingConfig::paper_defaults(),
            RadioConfig::paper_defaults(),
            CoverageModel::default(),
        )
        .expect("valid instance")
    }

    #[test]
    fn candidates_respect_service_hosting() {
        let inst = two_sp_instance();
        // UE 1 requests service 1, which bs1 does not host.
        let c: Vec<_> = inst.candidates(UeId::new(1)).iter().map(|l| l.bs).collect();
        assert_eq!(c, vec![BsId::new(0)]);
        // UE 0 requests service 0, hosted by both BSs in coverage.
        assert_eq!(inst.f_u(UeId::new(0)), 2);
    }

    #[test]
    fn covered_ues_mirror_candidates() {
        let inst = two_sp_instance();
        assert_eq!(
            inst.covered_ues(BsId::new(0)),
            &[UeId::new(0), UeId::new(1)]
        );
        assert_eq!(inst.covered_ues(BsId::new(1)), &[UeId::new(0)]);
    }

    #[test]
    fn link_prices_follow_sp_relationship() {
        let inst = two_sp_instance();
        let own = inst.link(UeId::new(0), BsId::new(0)).unwrap();
        let cross = inst.link(UeId::new(0), BsId::new(1)).unwrap();
        assert!(own.same_sp);
        assert!(!cross.same_sp);
        // Cross-SP is farther *and* marked up here.
        assert!(cross.price > own.price);
    }

    #[test]
    fn rrb_demand_grows_with_distance() {
        let inst = two_sp_instance();
        let near = inst.link(UeId::new(0), BsId::new(0)).unwrap(); // 100 m
        let far = inst.link(UeId::new(0), BsId::new(1)).unwrap(); // 200 m
        assert!(far.n_rrbs >= near.n_rrbs);
    }

    #[test]
    fn coverage_radius_prunes_far_bss() {
        let mut inst = two_sp_instance();
        // Rebuild with a 150 m radius: UE 0 at 100 m sees only bs0.
        inst = ProblemInstance::build(
            inst.sps.clone(),
            inst.bss.clone(),
            inst.ues.clone(),
            inst.catalog,
            inst.pricing,
            inst.radio,
            CoverageModel::FixedRadius(Meters::new(150.0)),
        )
        .unwrap();
        assert_eq!(inst.f_u(UeId::new(0)), 1);
        // UE 1 at 200 m from bs0 loses all candidates.
        assert_eq!(inst.f_u(UeId::new(1)), 0);
    }

    #[test]
    fn min_rate_coverage_behaves_like_sinr_threshold() {
        let inst = two_sp_instance();
        let rate_at_200m = inst.link(UeId::new(1), BsId::new(0)).unwrap().per_rrb_rate;
        let rebuilt = ProblemInstance::build(
            inst.sps.clone(),
            inst.bss.clone(),
            inst.ues.clone(),
            inst.catalog,
            inst.pricing,
            inst.radio,
            CoverageModel::MinPerRrbRate(BitsPerSec::new(rate_at_200m.get() + 1.0)),
        )
        .unwrap();
        assert_eq!(rebuilt.f_u(UeId::new(1)), 0);
    }

    #[test]
    fn build_rejects_dangling_references() {
        let inst = two_sp_instance();
        let mut bad_ues = inst.ues.clone();
        bad_ues[0].sp = SpId::new(9);
        let err = ProblemInstance::build(
            inst.sps.clone(),
            inst.bss.clone(),
            bad_ues,
            inst.catalog,
            inst.pricing,
            inst.radio,
            inst.coverage,
        )
        .unwrap_err();
        assert_eq!(err, Error::UnknownSp(SpId::new(9)));

        let mut bad_ues = inst.ues.clone();
        bad_ues[1].service = ServiceId::new(7);
        let err = ProblemInstance::build(
            inst.sps.clone(),
            inst.bss.clone(),
            bad_ues,
            inst.catalog,
            inst.pricing,
            inst.radio,
            inst.coverage,
        )
        .unwrap_err();
        assert_eq!(err, Error::UnknownService(ServiceId::new(7)));
    }

    #[test]
    fn build_rejects_wrong_budget_arity() {
        let inst = two_sp_instance();
        let mut bad_bss = inst.bss.clone();
        bad_bss[0].cru_budget.pop();
        let err = ProblemInstance::build(
            inst.sps.clone(),
            bad_bss,
            inst.ues.clone(),
            inst.catalog,
            inst.pricing,
            inst.radio,
            inst.coverage,
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn build_rejects_unprofitable_pricing() {
        let inst = two_sp_instance();
        let thin = vec![
            SpSpec::new(SpId::new(0), Money::new(3.0), Money::new(1.0)),
            SpSpec::new(SpId::new(1), Money::new(3.0), Money::new(1.0)),
        ];
        let err = ProblemInstance::build(
            thin,
            inst.bss.clone(),
            inst.ues.clone(),
            inst.catalog,
            inst.pricing,
            inst.radio,
            inst.coverage,
        )
        .unwrap_err();
        assert!(matches!(err, Error::UnprofitablePricing { .. }), "{err}");
    }

    #[test]
    fn residual_instance_shrinks_candidates() {
        let inst = two_sp_instance();
        // Drain bs0 completely; ue0's only remaining candidate is bs1.
        let rem_cru = vec![vec![Cru::ZERO, Cru::ZERO], inst.bss()[1].cru_budget.clone()];
        let rem_rrb = vec![RrbCount::ZERO, inst.bss()[1].rrb_budget];
        let residual = inst
            .residual(&rem_cru, &rem_rrb, inst.ues().to_vec())
            .unwrap();
        assert_eq!(residual.f_u(UeId::new(0)), 1);
        assert_eq!(residual.candidates(UeId::new(0))[0].bs, BsId::new(1));
        // ue1 requests a service bs1 does not host: no candidates left.
        assert_eq!(residual.f_u(UeId::new(1)), 0);
    }

    #[test]
    fn residual_rejects_wrong_arity() {
        let inst = two_sp_instance();
        let err = inst.residual(&[], &[], inst.ues().to_vec()).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
    }

    #[test]
    fn candidate_excludes_oversized_demand() {
        let inst = two_sp_instance();
        let mut hungry = inst.ues.clone();
        hungry[0].cru_demand = Cru::new(1000); // exceeds every budget
        let rebuilt = ProblemInstance::build(
            inst.sps.clone(),
            inst.bss.clone(),
            hungry,
            inst.catalog,
            inst.pricing,
            inst.radio,
            inst.coverage,
        )
        .unwrap();
        assert_eq!(rebuilt.f_u(UeId::new(0)), 0);
    }
}
