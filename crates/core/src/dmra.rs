//! Algorithm 1 of the paper — Decentralized Multi-SP Resource Allocation —
//! in its fast centralized-state execution.
//!
//! The implementation follows the paper line by line:
//!
//! * **UE side (lines 3–10).** Every unserved UE picks the candidate BS
//!   minimising `v_{u,i} = p_{i,u} + ρ / (remaining CRUs + remaining RRBs)`
//!   (Eq. (17)); candidates that can no longer fit the UE's CRU or RRB
//!   demand are pruned permanently (resources never grow). A UE whose
//!   candidate set empties is forwarded to the remote cloud.
//! * **BS side (lines 11–21).** Per requested service, the BS prefers
//!   same-SP proposers, tie-breaking by the smallest `f_u` (how many BSs
//!   could serve the UE) and then by the smallest combined footprint
//!   `n_{u,i} + c_j^u` — one provisional winner per (BS, service).
//! * **Radio admission (lines 22–25).** If the round's winners exceed the
//!   BS's remaining RRBs, the least-preferred winners are removed one by
//!   one until the rest fit.
//! * **Termination.** The loop ends at the first iteration with no
//!   proposals. Every BS that receives proposals accepts at least one UE
//!   per iteration (each proposal is individually feasible, so the
//!   admission step never drops *all* winners), hence the algorithm
//!   terminates after at most `|U| + 1` iterations.
//!
//! The genuinely message-passing execution of the same protocol lives in
//! [`crate::agents`]; under reliable delivery it produces bit-identical
//! allocations (see `tests/` at the workspace root).

use crate::allocation::Allocation;
use crate::allocator::{Allocator, AllocatorSession};
use crate::components::{self, decompose, Component, Decomposer, Decomposition, SolveMode};
use crate::instance::{CandidateLink, ProblemInstance};
use dmra_par::{par_map_indexed_scratch, Threads};
use dmra_types::{BsId, Cru, Error, Result, RrbCount, UeId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// Default for [`solve_min_fanout_ues`]: component sets totalling fewer
/// UEs than this solve serially on the caller's workspace instead of
/// fanning out over workers. At dynamic-regime arrival-batch sizes the
/// worker orchestration costs more than the matching itself (the
/// `BENCH_solve.json` metro curve sat at 0.99× at 4 threads before this
/// guard existed).
pub(crate) const SOLVE_MIN_FANOUT_UES_DEFAULT: usize = 512;

/// The minimum total-UE count at which a component solve fans out over
/// worker threads, read once from `DMRA_SOLVE_MIN_FANOUT_UES` (falling
/// back to [`SOLVE_MIN_FANOUT_UES_DEFAULT`] when unset or unparsable).
/// Purely a performance knob: both paths are bit-identical.
fn solve_min_fanout_ues() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| {
        std::env::var("DMRA_SOLVE_MIN_FANOUT_UES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(SOLVE_MIN_FANOUT_UES_DEFAULT)
    })
}

/// Tunables of the DMRA matcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmraConfig {
    /// `ρ` in Eq. (17): how strongly UEs prefer resource-rich BSs over
    /// cheap BSs. Figs. 6–7 sweep this knob.
    pub rho: f64,
    /// Safety bound on matching iterations. The algorithm provably
    /// terminates in at most `|U| + 1` iterations, so hitting this bound
    /// signals a bug rather than a big instance.
    pub max_iterations: usize,
    /// Whether the BS side prefers same-SP proposers (line 13 of
    /// Algorithm 1). Disabling this is the multi-SP ablation — it is *the*
    /// ingredient that separates DMRA from SP-oblivious matching.
    pub same_sp_preference: bool,
}

impl DmraConfig {
    /// Defaults used for Figs. 2–5: `ρ = 100`, same-SP preference on.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            rho: 100.0,
            max_iterations: 100_000,
            same_sp_preference: true,
        }
    }

    /// Returns a copy with a different `ρ`.
    #[must_use]
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }
}

impl Default for DmraConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// The result of a DMRA run, with convergence diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct DmraOutcome {
    /// The computed assignment.
    pub allocation: Allocation,
    /// Matching iterations executed (including the final silent one).
    pub iterations: usize,
    /// Total UE→BS proposals sent across iterations.
    pub proposals: u64,
    /// UEs accepted in each iteration — the convergence timeline (sums to
    /// the number of edge-served UEs; the final silent iteration accepts
    /// nobody and is omitted).
    pub acceptances: Vec<usize>,
    /// UEs still unmatched (neither edge-assigned nor cloud-forwarded)
    /// after each non-silent iteration — the other half of the
    /// convergence trajectory. Monotonically non-increasing; parallel to
    /// `acceptances`.
    pub unmatched: Vec<usize>,
    /// Candidate links pruned permanently across the run (line 10 of
    /// Algorithm 1: a BS that can no longer fit the UE).
    pub prunes: u64,
    /// Provisional winners evicted by the radio-admission step (lines
    /// 22–25: least-preferred winners dropped until the batch fits).
    pub evictions: u64,
}

/// The DMRA allocator (Algorithm 1, centralized-state execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dmra {
    config: DmraConfig,
    /// Explicit solve mode; `None` defers to the process-wide default
    /// ([`components::solve_mode_default`], set by `--solve`).
    mode: Option<SolveMode>,
    /// Worker knob for the component fan-out (ignored by the monolithic
    /// path). Threading never changes the outcome, only wall-clock time.
    solve_threads: Threads,
}

impl Dmra {
    /// Creates a DMRA matcher with the given configuration.
    #[must_use]
    pub fn new(config: DmraConfig) -> Self {
        Self {
            config,
            mode: None,
            solve_threads: Threads::Auto,
        }
    }

    /// The matcher's configuration.
    #[must_use]
    pub fn config(&self) -> &DmraConfig {
        &self.config
    }

    /// Returns a copy pinned to the given [`SolveMode`], overriding the
    /// process-wide default for this matcher only.
    #[must_use]
    pub fn with_solve_mode(mut self, mode: SolveMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Returns a copy with the component fan-out pinned to `threads`.
    #[must_use]
    pub fn with_solve_threads(mut self, threads: Threads) -> Self {
        self.solve_threads = threads;
        self
    }

    /// The [`SolveMode`] a solve of `instance` will actually use: the
    /// explicit mode if one was set (else the process default), demoted to
    /// [`SolveMode::Monolithic`] when the instance's interference model
    /// makes splitting unsound ([`components::splittable`]).
    #[must_use]
    pub fn effective_solve_mode(&self, instance: &ProblemInstance) -> SolveMode {
        let mode = self.mode.unwrap_or_else(components::solve_mode_default);
        if mode != SolveMode::Monolithic && !components::splittable(instance) {
            SolveMode::Monolithic
        } else {
            mode
        }
    }

    /// Runs the matching to quiescence, returning convergence diagnostics
    /// alongside the allocation.
    ///
    /// This is the optimized execution: all matcher state lives in dense
    /// `Vec`s indexed by raw BS/UE/service indices (flattened remaining
    /// resources, flattened candidate windows pruned by swap-with-tail,
    /// reusable proposal buckets keyed `bs * n_services + service`). It is
    /// bit-identical to [`Dmra::solve_reference`] — every selection rule
    /// has a unique key, so none of the reorderings the dense layout
    /// introduces can change a decision — and the test suite asserts the
    /// full [`DmraOutcome`] equality on every scenario it touches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonTermination`] if `max_iterations` elapses — this
    /// indicates a bug, as the algorithm provably terminates.
    pub fn solve(&self, instance: &ProblemInstance) -> Result<DmraOutcome> {
        self.solve_with_workspace(instance, &mut DmraWorkspace::default())
    }

    /// [`Dmra::solve`] against a caller-owned [`DmraWorkspace`], so
    /// repeated solves (one per epoch in the online simulator) reuse every
    /// scratch buffer instead of reallocating them. The result is the
    /// workspace-independent [`DmraOutcome`] — a fresh workspace, a reused
    /// one, and one previously used on a *different* instance all produce
    /// identical outcomes (unit tests pin this down).
    ///
    /// Dispatches on [`Dmra::effective_solve_mode`]: under
    /// [`SolveMode::Components`] the instance is first decomposed into
    /// connected components of the candidate-link graph and each component
    /// is matched independently — bit-identical to the monolithic run
    /// (DESIGN.md §14), only faster when the instance actually splits. An
    /// instance that is one component (or empty) falls through to the
    /// monolithic dense path, which *is* the single-component solve.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonTermination`] if `max_iterations` elapses — this
    /// indicates a bug, as the algorithm provably terminates.
    pub fn solve_with_workspace(
        &self,
        instance: &ProblemInstance,
        ws: &mut DmraWorkspace,
    ) -> Result<DmraOutcome> {
        // `Delta` without session state (no cross-epoch cache to consult)
        // degrades to exactly the `Components` execution — the session
        // entry point in `DmraSession::allocate` is the only delta path.
        if self.effective_solve_mode(instance) != SolveMode::Monolithic {
            let decomp = decompose(instance);
            record_decomposition(&decomp);
            if decomp.components.len() > 1 {
                return self.solve_decomposed(instance, &decomp, ws);
            }
            // ≤ 1 component: degrade to the serial path below.
        }
        self.solve_monolithic(instance, ws)
    }

    /// The original whole-instance dense execution (one [`match_loop`]
    /// over global indices).
    fn solve_monolithic(
        &self,
        instance: &ProblemInstance,
        ws: &mut DmraWorkspace,
    ) -> Result<DmraOutcome> {
        // Telemetry is observe-only: the flag is read once, the clock only
        // when enabled, and all recording happens after the match loop —
        // nothing here can influence a decision below.
        let obs_on = dmra_obs::enabled();
        let solve_started = obs_on.then(std::time::Instant::now);

        let n_ues = instance.n_ues();
        let n_bss = instance.n_bss();
        let n_svcs = instance.catalog().len() as usize;

        load_monolithic(instance, ws);

        let run = match_loop(&self.config, n_ues, n_bss, n_svcs, ws)?;

        if obs_on {
            record_solve(&run, n_ues, solve_started);
        }

        Ok(run.into_outcome())
    }

    /// The component-parallel execution: one [`match_loop`] per connected
    /// component (local indices), fanned out over `dmra-par` workers with
    /// per-worker workspace scratch, then a deterministic merge back to
    /// global UE order. Only called with ≥ 2 components.
    ///
    /// Bit-identity to [`Dmra::solve_monolithic`] (DESIGN.md §14): a
    /// component member's state at iteration `t` depends only on component
    /// state at `t - 1`, component UE/BS lists are ascending so local
    /// index order preserves every global tie-break order, and the merge
    /// rules below reconstruct exactly the global trajectories
    /// (`iterations = max`, per-iteration counters are sums with quiesced
    /// components contributing zero).
    fn solve_decomposed(
        &self,
        instance: &ProblemInstance,
        decomp: &Decomposition,
        ws: &mut DmraWorkspace,
    ) -> Result<DmraOutcome> {
        let obs_on = dmra_obs::enabled();
        let solve_started = obs_on.then(std::time::Instant::now);
        let n_ues = instance.n_ues();

        let which: Vec<usize> = (0..decomp.components.len()).collect();
        let mut bs_local = vec![0u32; instance.n_bss()];
        let runs = self.solve_component_set(instance, decomp, &which, ws, &mut bs_local);

        let mut runs_by_component = runs.into_iter();
        let merged = merge_component_runs(n_ues, decomp, |_| {
            runs_by_component
                .next()
                .expect("one run per listed component")
        })?;

        if obs_on {
            record_solve(&merged, n_ues, solve_started);
        }

        Ok(merged.into_outcome())
    }

    /// Solves the listed components (`which` indexes `decomp.components`,
    /// ascending), returning one [`MatchRun`] per listed component, in
    /// list order.
    ///
    /// Below the [`solve_min_fanout_ues`] total-UE threshold (or on a
    /// single-thread knob) the components run serially on the caller's
    /// workspace — the worker orchestration of tiny solves costs more
    /// than the matching itself (the `BENCH_solve.json` metro curve sat
    /// at 0.99× for dynamic-regime arrival batches). Above it they fan
    /// out over `par_map_indexed_scratch` workers, outcome-transparent by
    /// the `dmra-par` contract (outputs in index order, any thread
    /// count); either path's scratch is a reusable workspace plus a
    /// global→local BS index map whose entries are always written before
    /// read for the component at hand. The chosen path is recorded as
    /// `core.solve_serial` / `core.solve_fanout`.
    fn solve_component_set(
        &self,
        instance: &ProblemInstance,
        decomp: &Decomposition,
        which: &[usize],
        ws: &mut DmraWorkspace,
        bs_local: &mut Vec<u32>,
    ) -> Vec<Result<MatchRun>> {
        let n_bss = instance.n_bss();
        let n_svcs = instance.catalog().len() as usize;
        let config = &self.config;
        let total_ues: usize = which.iter().map(|&c| decomp.components[c].ues.len()).sum();
        let serial = total_ues < solve_min_fanout_ues() || self.solve_threads.resolve() <= 1;
        record_solve_path(serial);
        if serial {
            if bs_local.len() < n_bss {
                bs_local.resize(n_bss, 0);
            }
            which
                .iter()
                .map(|&c| {
                    let comp = &decomp.components[c];
                    load_component(instance, comp, ws, bs_local);
                    match_loop(config, comp.ues.len(), comp.bss.len(), n_svcs, ws)
                })
                .collect()
        } else {
            par_map_indexed_scratch(
                self.solve_threads,
                which.len(),
                || (DmraWorkspace::default(), vec![0u32; n_bss]),
                |(ws, bs_local), i| {
                    let comp = &decomp.components[which[i]];
                    load_component(instance, comp, ws, bs_local);
                    match_loop(config, comp.ues.len(), comp.bss.len(), n_svcs, ws)
                },
            )
        }
    }

    /// The cross-epoch delta execution ([`SolveMode::Delta`], DESIGN.md
    /// §17): decompose, then **replay** the cached [`MatchRun`] of every
    /// component that is provably untouched since the previous epoch and
    /// solve only the rest.
    ///
    /// A component replays only when *all* of the following hold, each of
    /// which fails closed:
    ///
    /// 1. the instance carries [`DeltaInfo`](crate::instance::DeltaInfo)
    ///    metadata continuing this state's lineage (`ctx_id` equal,
    ///    `seq` exactly one past the last solve — gaps, fresh contexts
    ///    and missing metadata all mean "everything dirty");
    /// 2. none of the component's member UEs or BSs appear in the diff's
    ///    dirty sets (dirty UEs = rebuilt or new-ground candidate rows;
    ///    dirty BSs = remaining-budget changes);
    /// 3. the cache holds an entry at the component's smallest UE id
    ///    whose member lists equal the component's (joins, splits and
    ///    departures all change membership).
    ///
    /// Together these imply the component's sub-instance is bit-identical
    /// to the one its cached run was computed from, so replaying the run
    /// is exact — the merged outcome is bit-identical to a from-scratch
    /// solve, which `tests/delta_solve.rs` pins across engines, seeds and
    /// allocators.
    fn solve_delta(
        &self,
        instance: &ProblemInstance,
        state: &mut DeltaState,
        ws: &mut DmraWorkspace,
    ) -> Result<DmraOutcome> {
        let obs_on = dmra_obs::enabled();
        let solve_started = obs_on.then(std::time::Instant::now);
        let n_ues = instance.n_ues();
        let n_bss = instance.n_bss();

        // Field-wise destructuring lets the decomposition borrow coexist
        // with cache/scratch mutation below.
        let DeltaState {
            valid,
            ctx_id,
            seq,
            cache,
            decomposer,
            dirty_ue,
            dirty_bs,
            which,
            bs_local,
        } = state;

        let decomp = decomposer.run(instance);
        record_decomposition(decomp);

        let delta = instance.delta();
        // `track`: maintain the cache for the next epoch. `continuous`:
        // the diff provably describes the change since the instance this
        // state last solved, so clean components may replay.
        let track = delta.is_some();
        let continuous = delta.is_some_and(|d| *valid && d.ctx_id == *ctx_id && d.seq == *seq + 1);
        if let Some(d) = delta {
            *valid = true;
            *ctx_id = d.ctx_id;
            *seq = d.seq;
        } else {
            // No metadata: nothing can vouch for the next diff's base
            // either, so drop the cache rather than let a later epoch
            // replay against a stale snapshot.
            *valid = false;
            cache.clear();
        }

        dirty_ue.clear();
        dirty_bs.clear();
        if continuous {
            let d = delta.expect("continuous implies delta metadata");
            dirty_ue.resize(n_ues, false);
            dirty_bs.resize(n_bss, false);
            for &u in &d.dirty_ues {
                if let Some(m) = dirty_ue.get_mut(u as usize) {
                    *m = true;
                }
            }
            for &b in &d.dirty_bss {
                if let Some(m) = dirty_bs.get_mut(b as usize) {
                    *m = true;
                }
            }
        }

        // Classify: a hit replays, everything else lands in `which`.
        which.clear();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut invalidations = 0u64;
        let mut replayed_ues = 0u64;
        for (c, comp) in decomp.components.iter().enumerate() {
            let cached = cache.get(&comp.ues[0]);
            let clean = continuous
                && comp.ues.iter().all(|&u| !dirty_ue[u as usize])
                && comp.bss.iter().all(|&b| !dirty_bs[b as usize])
                && cached.is_some_and(|e| e.ues == comp.ues && e.bss == comp.bss);
            if clean {
                hits += 1;
                replayed_ues += comp.ues.len() as u64;
            } else {
                which.push(c);
                if cached.is_some() {
                    invalidations += 1;
                } else {
                    misses += 1;
                }
            }
        }

        let runs = self.solve_component_set(instance, decomp, which, ws, bs_local);
        let mut fresh = runs.into_iter();
        let merged = if track {
            // Store the fresh runs, sweep entries whose component no
            // longer exists (components are ordered by smallest UE id,
            // so the key lookup is a binary search), then merge every
            // component straight out of the cache.
            for &c in which.iter() {
                let run = fresh.next().expect("one run per dirty component")?;
                let comp = &decomp.components[c];
                cache.insert(
                    comp.ues[0],
                    CachedComponent {
                        ues: comp.ues.clone(),
                        bss: comp.bss.clone(),
                        run,
                    },
                );
            }
            cache.retain(|&k, _| {
                decomp
                    .components
                    .binary_search_by_key(&k, |c| c.ues[0])
                    .is_ok()
            });
            merge_component_runs(n_ues, decomp, |c| {
                Ok(cache
                    .get(&decomp.components[c].ues[0])
                    .expect("every current component has a cache entry")
                    .run
                    .clone())
            })?
        } else {
            // Untracked ⇒ not continuous ⇒ `which` lists every component.
            merge_component_runs(n_ues, decomp, |_| {
                fresh.next().expect("one run per component (all dirty)")
            })?
        };

        if obs_on {
            record_solve(&merged, n_ues, solve_started);
            record_delta_solve(hits, misses, invalidations, replayed_ues, solve_started);
        }

        Ok(merged.into_outcome())
    }

    /// The straightforward line-by-line transcription of Algorithm 1 that
    /// [`Dmra::solve`] was optimized from, kept as the executable
    /// specification: `BTreeMap` proposal routing, typed resource state
    /// and candidate lookups through [`ProblemInstance::link`]. Tests
    /// assert `solve` and `solve_reference` return equal [`DmraOutcome`]s.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonTermination`] if `max_iterations` elapses — this
    /// indicates a bug, as the algorithm provably terminates.
    pub fn solve_reference(&self, instance: &ProblemInstance) -> Result<DmraOutcome> {
        let n_ues = instance.n_ues();
        let mut state = MatchState::new(instance);
        // Each UE's live candidate set, pruned monotonically.
        let mut b_u: Vec<Vec<CandidateLink>> = (0..n_ues)
            .map(|u| instance.candidates(UeId::new(u as u32)).to_vec())
            .collect();
        let mut assigned: Vec<Option<BsId>> = vec![None; n_ues];
        let mut cloud: Vec<bool> = vec![false; n_ues];
        let mut proposals_total = 0u64;
        let mut acceptances: Vec<usize> = Vec::new();
        let mut unmatched: Vec<usize> = Vec::new();
        let mut prunes = 0u64;
        let mut evictions = 0u64;
        let mut assigned_total = 0usize;
        let mut cloud_total = 0usize;

        for iteration in 1..=self.config.max_iterations {
            // ---- UE side: lines 3–10 ----
            // proposals[bs] maps service → proposing UEs.
            let mut proposals: BTreeMap<u32, BTreeMap<u32, Vec<UeId>>> = BTreeMap::new();
            let mut any = false;
            for u in 0..n_ues {
                if assigned[u].is_some() || cloud[u] {
                    continue;
                }
                let ue = UeId::new(u as u32);
                let svc = instance.ues()[u].service;
                loop {
                    if b_u[u].is_empty() {
                        // Line 1 / fallthrough of lines 4–10: no BS can
                        // serve this UE; forward to the remote cloud.
                        cloud[u] = true;
                        cloud_total += 1;
                        break;
                    }
                    let best = select_ue_proposal(self.config.rho, svc.as_usize(), &b_u[u], &state)
                        .expect("candidate set is non-empty");
                    let link = b_u[u][best];
                    if state.fits(instance, ue, &link) {
                        proposals
                            .entry(link.bs.index())
                            .or_default()
                            .entry(svc.index())
                            .or_default()
                            .push(ue);
                        proposals_total += 1;
                        any = true;
                        break;
                    }
                    // Line 10: the BS can never serve this UE again.
                    prunes += 1;
                    b_u[u].remove(best);
                }
            }
            if !any {
                return Ok(DmraOutcome {
                    allocation: Allocation::from_assignments(assigned),
                    iterations: iteration,
                    proposals: proposals_total,
                    acceptances,
                    unmatched,
                    prunes,
                    evictions,
                });
            }

            // ---- BS side: lines 11–25 ----
            let mut accepted_this_iteration = 0usize;
            for (bs_idx, per_service) in proposals {
                let bs = BsId::new(bs_idx);
                let mut winners: Vec<UeId> = Vec::new();
                for (_svc, candidates) in per_service {
                    let winner =
                        select_bs_winner(instance, bs, &candidates, self.config.same_sp_preference);
                    winners.push(winner);
                }
                // Radio admission: lines 22–25. Remove least-preferred
                // winners until the batch fits the remaining RRBs.
                let demand = |u: UeId| instance.link(u, bs).expect("winner is candidate").n_rrbs;
                let mut total: RrbCount = winners.iter().map(|&u| demand(u)).sum();
                if total > state.rem_rrb[bs.as_usize()] {
                    // Ascending preference = worst first.
                    winners.sort_by_key(|&u| {
                        std::cmp::Reverse(bs_preference_key(
                            instance,
                            bs,
                            u,
                            self.config.same_sp_preference,
                        ))
                    });
                    while total > state.rem_rrb[bs.as_usize()] {
                        let dropped = winners.pop().expect("winners cannot empty before fitting");
                        total -= demand(dropped);
                        evictions += 1;
                    }
                }
                for u in winners {
                    let link = *instance.link(u, bs).expect("winner is candidate");
                    state.commit(instance, u, &link);
                    assigned[u.as_usize()] = Some(bs);
                    accepted_this_iteration += 1;
                }
            }
            assigned_total += accepted_this_iteration;
            acceptances.push(accepted_this_iteration);
            unmatched.push(n_ues - assigned_total - cloud_total);
        }
        Err(Error::NonTermination {
            bound: self.config.max_iterations,
            n_ues,
            n_bss: instance.n_bss(),
        })
    }
}

impl Allocator for Dmra {
    fn name(&self) -> &str {
        "DMRA"
    }

    /// # Panics
    ///
    /// Panics if the iteration bound is exhausted, which would indicate a
    /// bug in the matcher (the algorithm provably terminates).
    fn allocate(&self, instance: &ProblemInstance) -> Allocation {
        self.solve(instance)
            .expect("DMRA terminates within its iteration bound")
            .allocation
    }

    /// DMRA's session keeps a [`DmraWorkspace`] alive across calls, so a
    /// per-epoch solve in the online simulator touches the heap only for
    /// the outcome it returns — and under [`SolveMode::Delta`] it also
    /// carries the cross-epoch per-component result cache.
    fn session(&self) -> Box<dyn AllocatorSession + '_> {
        Box::new(DmraSession {
            dmra: *self,
            workspace: DmraWorkspace::default(),
            delta: DeltaState::default(),
        })
    }
}

/// Reusable scratch state of the dense [`Dmra::solve`] execution.
///
/// Every field is sized/overwritten at the start of a solve, so a
/// workspace can be reused freely across instances of different shapes;
/// it never influences the outcome. The proposal buckets rely on the
/// solver's drain discipline (all buckets empty between solves), which a
/// `debug_assert` re-checks on entry.
#[derive(Debug, Clone, Default)]
pub struct DmraWorkspace {
    /// Remaining CRUs, flattened `[bs * n_svcs + svc]`.
    rem_cru: Vec<u32>,
    /// Remaining RRBs per BS.
    rem_rrb: Vec<u32>,
    /// Flattened per-UE candidate windows.
    cands: Vec<DenseCand>,
    /// Window start of each UE in `cands`.
    start: Vec<usize>,
    /// Live window length of each UE.
    len: Vec<usize>,
    /// Requested service index per UE.
    svc: Vec<usize>,
    /// CRU demand per UE.
    cru_demand: Vec<u32>,
    /// `f_u` per UE.
    f_u: Vec<u32>,
    /// Cloud-forwarded flags per UE.
    cloud: Vec<bool>,
    /// Proposal buckets, one per `(bs, service)` slot.
    buckets: Vec<Vec<DenseProposal>>,
    /// Bucket slots filled in the current iteration.
    touched: Vec<usize>,
    /// Per-BS winner scratch for the admission step.
    winners: Vec<DenseProposal>,
}

/// The [`AllocatorSession`] of [`Dmra`]: config plus a live workspace,
/// plus the cross-epoch delta cache ([`SolveMode::Delta`] only; empty
/// and untouched under every other mode).
struct DmraSession {
    dmra: Dmra,
    workspace: DmraWorkspace,
    delta: DeltaState,
}

impl AllocatorSession for DmraSession {
    fn allocate(&mut self, instance: &ProblemInstance) -> Allocation {
        let out = if self.dmra.effective_solve_mode(instance) == SolveMode::Delta {
            self.dmra
                .solve_delta(instance, &mut self.delta, &mut self.workspace)
        } else {
            self.dmra
                .solve_with_workspace(instance, &mut self.workspace)
        };
        out.expect("DMRA terminates within its iteration bound")
            .allocation
    }
}

/// One entry of the delta cache: a component's member lists at the time
/// it was last solved, plus the [`MatchRun`] that solve produced (local
/// indices relative to those lists).
#[derive(Debug)]
struct CachedComponent {
    ues: Vec<u32>,
    bss: Vec<u32>,
    run: MatchRun,
}

/// Session state of the cross-epoch delta solver ([`SolveMode::Delta`],
/// DESIGN.md §17): the per-component result cache keyed by the
/// component's smallest UE id, the [`DeltaInfo`] lineage cursor that
/// guards continuity, and reusable classification scratch.
///
/// [`DeltaInfo`]: crate::instance::DeltaInfo
#[derive(Debug, Default)]
struct DeltaState {
    /// Whether `ctx_id`/`seq` describe the instance this state last
    /// solved. False until the first tracked solve and after any
    /// untracked one.
    valid: bool,
    /// The [`DeploymentContext`](crate::online::DeploymentContext) id of
    /// the last tracked instance.
    ctx_id: u64,
    /// Its build sequence number. The next instance's diff is usable only
    /// if its `seq` is exactly `seq + 1` — any gap (a skipped build, a
    /// failed build, a different context) fails the continuity check
    /// closed and everything resolves as dirty.
    seq: u64,
    /// Component results from the last tracked solve, keyed by the
    /// component's smallest UE id (stable across epochs as long as the
    /// membership is stable, which the entry re-checks on lookup).
    cache: HashMap<u32, CachedComponent>,
    /// Reused union-find decomposition scratch.
    decomposer: Decomposer,
    /// Per-UE / per-BS dirty masks scattered from the instance's
    /// [`DeltaInfo`](crate::instance::DeltaInfo) lists.
    dirty_ue: Vec<bool>,
    dirty_bs: Vec<bool>,
    /// Indices of the components that must actually be solved.
    which: Vec<usize>,
    /// Global→local BS index scratch for the serial component loop.
    bs_local: Vec<u32>,
}

/// Everything one dense [`match_loop`] run produces. Indices are *local*
/// to the run: the monolithic path runs over global indices (local ==
/// global), a component run over the component's ascending UE/BS lists
/// (remapped during the merge). `Clone` exists for the delta cache,
/// which replays stored component runs verbatim.
#[derive(Debug, Clone)]
struct MatchRun {
    /// Per-UE assignment (local BS ids); `None` = cloud or unreachable.
    assigned: Vec<Option<BsId>>,
    /// Iterations executed, including the final silent one.
    iterations: usize,
    /// Total proposals sent.
    proposals: u64,
    /// UEs accepted per non-silent iteration.
    acceptances: Vec<usize>,
    /// UEs still unmatched after each non-silent iteration.
    unmatched: Vec<usize>,
    /// Candidate links pruned.
    prunes: u64,
    /// Admission-step evictions.
    evictions: u64,
    /// Total UEs edge-assigned.
    assigned_total: usize,
    /// Total UEs cloud-forwarded.
    cloud_total: usize,
    /// Whether the workspace's bucket table was already large enough
    /// (telemetry only).
    workspace_reused: bool,
}

impl MatchRun {
    fn into_outcome(self) -> DmraOutcome {
        DmraOutcome {
            allocation: Allocation::from_assignments(self.assigned),
            iterations: self.iterations,
            proposals: self.proposals,
            acceptances: self.acceptances,
            unmatched: self.unmatched,
            prunes: self.prunes,
            evictions: self.evictions,
        }
    }
}

/// Loads the dense caches of a whole-instance run into `ws`: global UE/BS
/// indices are the run's local indices.
fn load_monolithic(instance: &ProblemInstance, ws: &mut DmraWorkspace) {
    let n_ues = instance.n_ues();
    let ues = instance.ues();

    // Dense remaining-resource caches, flattened `[bs * n_svcs + svc]`
    // (`Cru` and `RrbCount` are plain u32 wrappers, so raw u32
    // arithmetic reproduces `MatchState` exactly).
    ws.rem_cru.clear();
    ws.rem_rrb.clear();
    for bs in instance.bss() {
        ws.rem_cru.extend(bs.cru_budget.iter().map(|c| c.get()));
        ws.rem_rrb.push(bs.rrb_budget.get());
    }

    // Flattened candidate windows: UE `u` owns
    // `cands[start[u] .. start[u] + len[u]]`; pruning swaps the pruned
    // entry to the window tail and shrinks the window. The arg-min in the
    // match loop has a unique (value, bs) key per entry, so the reordering
    // never changes which candidate is selected.
    ws.cands.clear();
    ws.start.clear();
    ws.len.clear();
    for u in 0..n_ues {
        let row = instance.candidates(UeId::new(u as u32));
        ws.start.push(ws.cands.len());
        ws.len.push(row.len());
        ws.cands.extend(row.iter().map(|l| DenseCand {
            bs: l.bs.index(),
            n_rrbs: l.n_rrbs.get(),
            price: l.price.get(),
            same_sp: l.same_sp,
        }));
    }
    ws.svc.clear();
    ws.svc.extend(ues.iter().map(|ue| ue.service.as_usize()));
    ws.cru_demand.clear();
    ws.cru_demand
        .extend(ues.iter().map(|ue| ue.cru_demand.get()));
    ws.f_u.clear();
    ws.f_u
        .extend((0..n_ues).map(|u| instance.f_u(UeId::new(u as u32))));
}

/// Loads the dense caches of one component's sub-instance into `ws`,
/// remapping BS indices through `bs_local` (global → local; entries are
/// written for every BS of this component before any read, so the map can
/// be reused across components without clearing).
///
/// Because `comp.ues` and `comp.bss` are ascending, local index order
/// preserves global order — every tie-break (`c.bs < best_bs`, the
/// `Reverse(ue)` preference term, the `touched` slot sort) resolves
/// exactly as it does in the monolithic run. All per-UE values (`f_u`,
/// demands, prices) are the instance-global ones; `f_u` equals the UE's
/// candidate-row length, which is entirely intra-component.
fn load_component(
    instance: &ProblemInstance,
    comp: &Component,
    ws: &mut DmraWorkspace,
    bs_local: &mut [u32],
) {
    let ues = instance.ues();
    ws.rem_cru.clear();
    ws.rem_rrb.clear();
    for (li, &gb) in comp.bss.iter().enumerate() {
        let bs = &instance.bss()[gb as usize];
        ws.rem_cru.extend(bs.cru_budget.iter().map(|c| c.get()));
        ws.rem_rrb.push(bs.rrb_budget.get());
        bs_local[gb as usize] = li as u32;
    }
    ws.cands.clear();
    ws.start.clear();
    ws.len.clear();
    ws.svc.clear();
    ws.cru_demand.clear();
    ws.f_u.clear();
    for &gu in &comp.ues {
        let row = instance.candidates(UeId::new(gu));
        ws.start.push(ws.cands.len());
        ws.len.push(row.len());
        ws.cands.extend(row.iter().map(|l| DenseCand {
            bs: bs_local[l.bs.as_usize()],
            n_rrbs: l.n_rrbs.get(),
            price: l.price.get(),
            same_sp: l.same_sp,
        }));
        let u = gu as usize;
        ws.svc.push(ues[u].service.as_usize());
        ws.cru_demand.push(ues[u].cru_demand.get());
        ws.f_u.push(instance.f_u(UeId::new(gu)));
    }
}

/// The dense deferred-acceptance loop of Algorithm 1, running over the
/// `n_ues × n_bss × n_svcs` sub-instance currently loaded in `ws` (see
/// [`load_monolithic`] / [`load_component`]).
fn match_loop(
    config: &DmraConfig,
    n_ues: usize,
    n_bss: usize,
    n_svcs: usize,
    ws: &mut DmraWorkspace,
) -> Result<MatchRun> {
    let rem_cru = &mut ws.rem_cru;
    let rem_rrb = &mut ws.rem_rrb;
    let cands = &mut ws.cands;
    let start = &ws.start;
    let len = &mut ws.len;
    let svc = &ws.svc;
    let cru_demand = &ws.cru_demand;
    let f_u = &ws.f_u;

    // `assigned` moves into the outcome's `Allocation`, so it is the
    // one per-solve allocation that cannot live in the workspace.
    let mut assigned: Vec<Option<BsId>> = vec![None; n_ues];
    ws.cloud.clear();
    ws.cloud.resize(n_ues, false);
    let cloud = &mut ws.cloud;
    let mut proposals_total = 0u64;
    let mut acceptances: Vec<usize> = Vec::new();
    let mut unmatched: Vec<usize> = Vec::new();
    let mut prunes = 0u64;
    let mut evictions = 0u64;
    let mut assigned_total = 0usize;
    let mut cloud_total = 0usize;

    // Reusable proposal buckets, one per (bs, service) pair; `touched`
    // lists the buckets filled this iteration (sorted before the BS
    // side so it walks (bs, service) in exactly the order the
    // reference's nested BTreeMaps would). Every bucket is empty
    // between solves (each iteration drains the buckets it touched),
    // so reuse only needs to grow the slot table.
    let workspace_reused = ws.buckets.len() >= n_bss * n_svcs;
    if !workspace_reused {
        ws.buckets.resize_with(n_bss * n_svcs, Vec::new);
    }
    debug_assert!(ws.buckets.iter().all(Vec::is_empty));
    let buckets = &mut ws.buckets;
    ws.touched.clear();
    let touched = &mut ws.touched;
    ws.winners.clear();
    let winners = &mut ws.winners;
    let mut final_iterations = None;

    for iteration in 1..=config.max_iterations {
        // ---- UE side: lines 3–10 ----
        let mut any = false;
        for u in 0..n_ues {
            if assigned[u].is_some() || cloud[u] {
                continue;
            }
            let s = svc[u];
            loop {
                if len[u] == 0 {
                    // Line 1 / fallthrough of lines 4–10: no BS can
                    // serve this UE; forward to the remote cloud.
                    cloud[u] = true;
                    cloud_total += 1;
                    break;
                }
                // Eq. (17) arg-min over the live window.
                let window = &cands[start[u]..start[u] + len[u]];
                let mut best_i = 0usize;
                let mut best_v = f64::INFINITY;
                let mut best_bs = u32::MAX;
                for (i, c) in window.iter().enumerate() {
                    let b = c.bs as usize;
                    let denom = f64::from(rem_cru[b * n_svcs + s]) + f64::from(rem_rrb[b]);
                    let v = if denom <= 0.0 {
                        f64::INFINITY
                    } else {
                        c.price + config.rho / denom
                    };
                    if v < best_v || (v == best_v && c.bs < best_bs) {
                        best_i = i;
                        best_v = v;
                        best_bs = c.bs;
                    }
                }
                let c = cands[start[u] + best_i];
                let b = c.bs as usize;
                if rem_cru[b * n_svcs + s] >= cru_demand[u] && rem_rrb[b] >= c.n_rrbs {
                    let slot = b * n_svcs + s;
                    if buckets[slot].is_empty() {
                        touched.push(slot);
                    }
                    // The proposal carries everything the BS side
                    // needs, so no per-winner candidate lookups later.
                    buckets[slot].push(DenseProposal {
                        ue: u as u32,
                        n_rrbs: c.n_rrbs,
                        cru_demand: cru_demand[u],
                        pref: (
                            config.same_sp_preference && c.same_sp,
                            Reverse(f_u[u]),
                            Reverse(c.n_rrbs + cru_demand[u]),
                            Reverse(u as u32),
                        ),
                    });
                    proposals_total += 1;
                    any = true;
                    break;
                }
                // Line 10: the BS can never serve this UE again.
                prunes += 1;
                len[u] -= 1;
                cands.swap(start[u] + best_i, start[u] + len[u]);
            }
        }
        if !any {
            final_iterations = Some(iteration);
            break;
        }

        // ---- BS side: lines 11–25 ----
        touched.sort_unstable();
        let mut accepted_this_iteration = 0usize;
        let mut t = 0usize;
        while t < touched.len() {
            let bs = touched[t] / n_svcs;
            winners.clear();
            while t < touched.len() && touched[t] / n_svcs == bs {
                // One winner per service: the max-preference proposer
                // (the key embeds the UE id, so it is unique).
                let bucket = &buckets[touched[t]];
                let mut best = bucket[0];
                for p in &bucket[1..] {
                    if p.pref > best.pref {
                        best = *p;
                    }
                }
                winners.push(best);
                t += 1;
            }
            // Radio admission: lines 22–25. Remove least-preferred
            // winners until the batch fits the remaining RRBs.
            let mut total: u32 = winners.iter().map(|w| w.n_rrbs).sum();
            if total > rem_rrb[bs] {
                // Ascending preference = worst first.
                winners.sort_by_key(|w| Reverse(w.pref));
                while total > rem_rrb[bs] {
                    let dropped = winners.pop().expect("winners cannot empty before fitting");
                    total -= dropped.n_rrbs;
                    evictions += 1;
                }
            }
            for w in winners.drain(..) {
                let u = w.ue as usize;
                rem_cru[bs * n_svcs + svc[u]] -= w.cru_demand;
                rem_rrb[bs] -= w.n_rrbs;
                assigned[u] = Some(BsId::new(bs as u32));
                accepted_this_iteration += 1;
            }
        }
        for &slot in touched.iter() {
            buckets[slot].clear();
        }
        touched.clear();
        assigned_total += accepted_this_iteration;
        acceptances.push(accepted_this_iteration);
        unmatched.push(n_ues - assigned_total - cloud_total);
    }
    let Some(iterations) = final_iterations else {
        return Err(Error::NonTermination {
            bound: config.max_iterations,
            n_ues,
            n_bss,
        });
    };

    Ok(MatchRun {
        assigned,
        iterations,
        proposals: proposals_total,
        acceptances,
        unmatched,
        prunes,
        evictions,
        assigned_total,
        cloud_total,
        workspace_reused,
    })
}

/// Deterministic merge of per-component [`MatchRun`]s back to global UE
/// order: `run_of(c)` yields component `c`'s run (freshly solved or
/// replayed from the delta cache — the merge cannot tell the difference,
/// which is the point). Components are ordered by smallest UE id and each
/// UE belongs to exactly one component, so the merge rules reconstruct
/// exactly the monolithic trajectories: `iterations = max`, per-iteration
/// counters are element-wise sums with quiesced components contributing
/// zero, and cloud-only UEs (in no component) seed `cloud_total`.
fn merge_component_runs<F>(n_ues: usize, decomp: &Decomposition, mut run_of: F) -> Result<MatchRun>
where
    F: FnMut(usize) -> Result<MatchRun>,
{
    let mut merged = MatchRun {
        assigned: vec![None; n_ues],
        iterations: 1,
        proposals: 0,
        acceptances: Vec::new(),
        unmatched: Vec::new(),
        prunes: 0,
        evictions: 0,
        assigned_total: 0,
        cloud_total: decomp.cloud_only.len(),
        workspace_reused: false,
    };
    for (c, comp) in decomp.components.iter().enumerate() {
        let run = run_of(c)?;
        // A component that quiesced at `T_c` contributes zero to every
        // later global iteration: all its UEs are assigned or
        // cloud-forwarded by then, exactly as in the monolithic run.
        merged.iterations = merged.iterations.max(run.iterations);
        merged.proposals += run.proposals;
        merged.prunes += run.prunes;
        merged.evictions += run.evictions;
        merged.assigned_total += run.assigned_total;
        merged.cloud_total += run.cloud_total;
        if merged.acceptances.len() < run.acceptances.len() {
            merged.acceptances.resize(run.acceptances.len(), 0);
            merged.unmatched.resize(run.unmatched.len(), 0);
        }
        for (t, &a) in run.acceptances.iter().enumerate() {
            merged.acceptances[t] += a;
        }
        for (t, &m) in run.unmatched.iter().enumerate() {
            merged.unmatched[t] += m;
        }
        for (lu, &gu) in comp.ues.iter().enumerate() {
            if let Some(lb) = run.assigned[lu] {
                merged.assigned[gu as usize] = Some(BsId::new(comp.bss[lb.as_usize()]));
            }
        }
    }
    Ok(merged)
}

/// Records which execution path [`Dmra::solve_component_set`] chose
/// (`core.solve_serial` below the min-fanout threshold,
/// `core.solve_fanout` above it) — the witness for the threshold
/// satellite's telemetry requirement.
fn record_solve_path(serial: bool) {
    if !dmra_obs::enabled() {
        return;
    }
    static FANOUT: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("core.solve_fanout");
    static SERIAL: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("core.solve_serial");
    if serial {
        SERIAL.get().inc();
    } else {
        FANOUT.get().inc();
    }
}

/// Records the `core.delta_*` telemetry of one [`SolveMode::Delta`]
/// solve: component-level hit/miss/invalidation counts (hit = replayed
/// verbatim; invalidation = a cached entry existed but was dirty or its
/// membership changed; miss = no cached entry), total replayed UEs, and
/// the wall-clock histogram `core.delta_solve_ns`.
fn record_delta_solve(
    hits: u64,
    misses: u64,
    invalidations: u64,
    replayed_ues: u64,
    solve_started: Option<std::time::Instant>,
) {
    static SOLVES: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("core.delta_solves");
    static HITS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("core.delta_component_hits");
    static MISSES: dmra_obs::LazyCounter =
        dmra_obs::LazyCounter::new("core.delta_component_misses");
    static INVALIDATIONS: dmra_obs::LazyCounter =
        dmra_obs::LazyCounter::new("core.delta_invalidations");
    static REPLAYED_UES: dmra_obs::LazyCounter =
        dmra_obs::LazyCounter::new("core.delta_replayed_ues");
    static SOLVE_NS: dmra_obs::LazyHistogram = dmra_obs::LazyHistogram::new("core.delta_solve_ns");
    SOLVES.get().inc();
    HITS.get().add(hits);
    MISSES.get().add(misses);
    INVALIDATIONS.get().add(invalidations);
    REPLAYED_UES.get().add(replayed_ues);
    let solve_ns = solve_started.map_or(0, |t| {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    });
    SOLVE_NS.get().record(solve_ns);
    dmra_obs::global_trace().record(dmra_obs::TraceEvent {
        name: "core.delta_solve",
        index: SOLVES.get().get(),
        fields: vec![
            ("hits", hits as f64),
            ("misses", misses as f64),
            ("invalidations", invalidations as f64),
            ("replayed_ues", replayed_ues as f64),
            ("wall_ns", solve_ns as f64),
        ],
    });
}

/// Records the standard `dmra.*` telemetry of one finished solve — the
/// merged totals of a decomposed run are recorded exactly once, with the
/// same counters the monolithic path uses.
fn record_solve(run: &MatchRun, n_ues: usize, solve_started: Option<std::time::Instant>) {
    // Handles are resolved once and cached; steady-state recording
    // is one atomic op per metric (see BENCH_obs_overhead.json).
    static SOLVES: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("dmra.solves");
    static ROUNDS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("dmra.rounds");
    static PROPOSALS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("dmra.proposals");
    static ACCEPTANCES: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("dmra.acceptances");
    static CLOUD_FORWARDS: dmra_obs::LazyCounter =
        dmra_obs::LazyCounter::new("dmra.cloud_forwards");
    static PRUNES: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("dmra.prunes");
    static EVICTIONS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("dmra.evictions");
    static REUSE_HITS: dmra_obs::LazyCounter =
        dmra_obs::LazyCounter::new("dmra.workspace_reuse_hits");
    static SOLVE_NS: dmra_obs::LazyHistogram = dmra_obs::LazyHistogram::new("dmra.solve_ns");
    SOLVES.get().inc();
    ROUNDS.get().add(run.iterations as u64);
    PROPOSALS.get().add(run.proposals);
    ACCEPTANCES.get().add(run.assigned_total as u64);
    CLOUD_FORWARDS.get().add(run.cloud_total as u64);
    PRUNES.get().add(run.prunes);
    EVICTIONS.get().add(run.evictions);
    if run.workspace_reused {
        REUSE_HITS.get().inc();
    }
    let solve_ns = solve_started.map_or(0, |t| {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    });
    SOLVE_NS.get().record(solve_ns);
    dmra_obs::global_trace().record(dmra_obs::TraceEvent {
        name: "dmra.solve",
        index: SOLVES.get().get(),
        fields: vec![
            ("ues", n_ues as f64),
            ("rounds", run.iterations as f64),
            ("proposals", run.proposals as f64),
            ("accepted", run.assigned_total as f64),
            ("cloud", run.cloud_total as f64),
            ("prunes", run.prunes as f64),
            ("evictions", run.evictions as f64),
            ("wall_ns", solve_ns as f64),
        ],
    });
}

/// Records the `core.components` decomposition telemetry: how many
/// components the instance split into, the largest component's UE count
/// (a high-water gauge) and the full size distribution. Shows up in
/// `--trace-out` snapshots and the `figures -- bench` breakdown.
fn record_decomposition(decomp: &Decomposition) {
    if !dmra_obs::enabled() {
        return;
    }
    static COMPONENTS: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("core.components");
    static MAX_UES: dmra_obs::LazyGauge = dmra_obs::LazyGauge::new("core.component_max_ues");
    static COMPONENT_UES: dmra_obs::LazyHistogram =
        dmra_obs::LazyHistogram::new("core.component_ues");
    COMPONENTS.get().add(decomp.components.len() as u64);
    MAX_UES.get().set_max(decomp.max_component_ues() as u64);
    for comp in &decomp.components {
        COMPONENT_UES.get().record(comp.ues.len() as u64);
    }
}

/// One live candidate in the dense solver's flattened per-UE window.
#[derive(Debug, Clone, Copy)]
struct DenseCand {
    /// Raw BS index.
    bs: u32,
    /// `n_{u,i}`: RRB demand of this UE at this BS.
    n_rrbs: u32,
    /// `p_{i,u}` as a raw float.
    price: f64,
    /// Whether UE and BS belong to the same SP.
    same_sp: bool,
}

/// The BS-side preference key of [`bs_preference_key`], precomputed:
/// larger is better, and the embedded UE id makes it unique.
type DensePref = (bool, Reverse<u32>, Reverse<u32>, Reverse<u32>);

/// A proposal in the dense solver, carrying everything the BS side needs.
#[derive(Debug, Clone, Copy)]
struct DenseProposal {
    /// Raw UE index of the proposer.
    ue: u32,
    /// RRB demand at the proposed BS.
    n_rrbs: u32,
    /// CRU demand of the proposer's service request.
    cru_demand: u32,
    /// Precomputed BS preference for this proposer.
    pref: DensePref,
}

/// Mutable per-BS resource state shared by the matcher phases.
#[derive(Debug, Clone)]
pub(crate) struct MatchState {
    /// Remaining CRUs, indexed `[bs][service]`.
    pub(crate) rem_cru: Vec<Vec<Cru>>,
    /// Remaining RRBs, indexed by BS.
    pub(crate) rem_rrb: Vec<RrbCount>,
}

impl MatchState {
    pub(crate) fn new(instance: &ProblemInstance) -> Self {
        Self {
            rem_cru: instance
                .bss()
                .iter()
                .map(|b| b.cru_budget.clone())
                .collect(),
            rem_rrb: instance.bss().iter().map(|b| b.rrb_budget).collect(),
        }
    }

    /// Line 6 of Algorithm 1: can this BS still fit this UE?
    pub(crate) fn fits(&self, instance: &ProblemInstance, ue: UeId, link: &CandidateLink) -> bool {
        let i = link.bs.as_usize();
        let ue_spec = &instance.ues()[ue.as_usize()];
        self.rem_cru[i][ue_spec.service.as_usize()] >= ue_spec.cru_demand
            && self.rem_rrb[i] >= link.n_rrbs
    }

    /// Deducts the UE's demands from the BS.
    pub(crate) fn commit(&mut self, instance: &ProblemInstance, ue: UeId, link: &CandidateLink) {
        let i = link.bs.as_usize();
        let ue_spec = &instance.ues()[ue.as_usize()];
        self.rem_cru[i][ue_spec.service.as_usize()] -= ue_spec.cru_demand;
        self.rem_rrb[i] -= link.n_rrbs;
    }
}

/// Eq. (17): the UE's preference value for a candidate link given the
/// current remaining resources. Lower is better. A fully-drained BS scores
/// `+∞` (it will fail the feasibility check and be pruned).
pub(crate) fn ue_preference(
    rho: f64,
    link: &CandidateLink,
    rem_cru: Cru,
    rem_rrb: RrbCount,
) -> f64 {
    let denom = rem_cru.as_f64() + rem_rrb.as_f64();
    if denom <= 0.0 {
        return f64::INFINITY;
    }
    link.price.get() + rho / denom
}

/// Picks the index of the candidate with minimal `v_{u,i}` (line 5),
/// tie-breaking by BS id for determinism. Returns `None` for an empty set.
///
/// `service_idx` is the index of the *UE's* requested service — Eq. (17)
/// reads the remaining CRUs of that service at each candidate BS.
pub(crate) fn select_ue_proposal(
    rho: f64,
    service_idx: usize,
    candidates: &[CandidateLink],
    state: &MatchState,
) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .map(|(idx, link)| {
            let i = link.bs.as_usize();
            let v = ue_preference(rho, link, state.rem_cru[i][service_idx], state.rem_rrb[i]);
            (idx, v, link.bs)
        })
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.2.cmp(&b.2))
        })
        .map(|(idx, _, _)| idx)
}

/// Line 13–21: picks the winning proposer for one (BS, service) pair.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub(crate) fn select_bs_winner(
    instance: &ProblemInstance,
    bs: BsId,
    candidates: &[UeId],
    same_sp_preference: bool,
) -> UeId {
    *candidates
        .iter()
        .min_by_key(|&&u| std::cmp::Reverse(bs_preference_key(instance, bs, u, same_sp_preference)))
        .expect("candidate set must be non-empty")
}

/// The BS's preference for a UE, as a key where **larger is better** (use
/// with `Reverse` for min-by selection of the best).
///
/// Order: same-SP first (if enabled), then smaller `f_u`, then smaller
/// footprint `n_{u,i} + c_j^u`, then smaller UE id.
pub(crate) fn bs_preference_key(
    instance: &ProblemInstance,
    bs: BsId,
    ue: UeId,
    same_sp_preference: bool,
) -> (
    bool,
    std::cmp::Reverse<u32>,
    std::cmp::Reverse<u32>,
    std::cmp::Reverse<u32>,
) {
    let link = instance.link(ue, bs).expect("proposer must be a candidate");
    let footprint = link.n_rrbs.get() + instance.ues()[ue.as_usize()].cru_demand.get();
    (
        same_sp_preference && link.same_sp,
        std::cmp::Reverse(instance.f_u(ue)),
        std::cmp::Reverse(footprint),
        std::cmp::Reverse(ue.index()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::two_sp_instance;
    use crate::instance::{CoverageModel, ProblemInstance};
    use dmra_econ::PricingConfig;
    use dmra_radio::RadioConfig;
    use dmra_types::{
        BitsPerSec, BsSpec, Cru, Dbm, Hertz, Money, Point, ServiceCatalog, ServiceId, SpId, SpSpec,
        UeSpec,
    };

    #[test]
    fn dmra_serves_both_ues_on_tiny_instance() {
        let inst = two_sp_instance();
        let out = Dmra::default().solve(&inst).unwrap();
        out.allocation.validate(&inst).unwrap();
        assert_eq!(out.allocation.edge_served(), 2);
        assert!(out.iterations <= 3, "iterations = {}", out.iterations);
        assert!(out.proposals >= 2);
    }

    #[test]
    fn allocator_name_is_dmra() {
        assert_eq!(Dmra::default().name(), "DMRA");
    }

    /// A scenario engineered so the same-SP preference matters: two UEs of
    /// different SPs compete for the last slot of a BS.
    fn contested_instance(rrb_budget: u32) -> ProblemInstance {
        let sps = vec![
            SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0)),
            SpSpec::new(SpId::new(1), Money::new(10.0), Money::new(1.0)),
        ];
        let catalog = ServiceCatalog::new(1);
        let bss = vec![BsSpec::new(
            dmra_types::BsId::new(0),
            SpId::new(0),
            Point::new(0.0, 0.0),
            vec![Cru::new(100)],
            Hertz::from_mhz(10.0),
            dmra_types::RrbCount::new(rrb_budget),
        )];
        // Both UEs equidistant, same demand; ue0 subscribes to sp1 (cross),
        // ue1 subscribes to sp0 (same as the BS).
        let mk_ue = |id: u32, sp: u32| {
            UeSpec::new(
                dmra_types::UeId::new(id),
                SpId::new(sp),
                Point::new(100.0, 0.0),
                ServiceId::new(0),
                Cru::new(4),
                BitsPerSec::from_mbps(3.0),
                Dbm::new(10.0),
            )
        };
        let ues = vec![mk_ue(0, 1), mk_ue(1, 0)];
        ProblemInstance::build(
            sps,
            bss,
            ues,
            catalog,
            PricingConfig::paper_defaults(),
            RadioConfig::paper_defaults(),
            CoverageModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn same_sp_proposer_wins_the_contested_slot() {
        // Each UE needs 1 RRB at 100 m; a budget of 1 fits exactly one.
        let inst = contested_instance(1);
        let out = Dmra::default().solve(&inst).unwrap();
        out.allocation.validate(&inst).unwrap();
        // The same-SP UE (ue1) must win; ue0 goes to the cloud.
        assert_eq!(
            out.allocation.bs_of(dmra_types::UeId::new(1)),
            Some(dmra_types::BsId::new(0))
        );
        assert_eq!(out.allocation.bs_of(dmra_types::UeId::new(0)), None);
    }

    #[test]
    fn ablation_without_same_sp_preference_changes_winner() {
        let inst = contested_instance(1);
        let cfg = DmraConfig {
            same_sp_preference: false,
            ..DmraConfig::paper_defaults()
        };
        let out = Dmra::new(cfg).solve(&inst).unwrap();
        // Without the SP term the tie-break falls through to f_u (equal),
        // footprint (equal), then smallest UE id: ue0 wins.
        assert_eq!(
            out.allocation.bs_of(dmra_types::UeId::new(0)),
            Some(dmra_types::BsId::new(0))
        );
    }

    #[test]
    fn both_served_when_budget_allows() {
        let inst = contested_instance(55);
        let out = Dmra::default().solve(&inst).unwrap();
        assert_eq!(out.allocation.edge_served(), 2);
    }

    #[test]
    fn no_candidates_means_cloud() {
        // A BS with zero RRBs can never serve anyone.
        let inst = contested_instance(0);
        let out = Dmra::default().solve(&inst).unwrap();
        assert_eq!(out.allocation.edge_served(), 0);
        assert_eq!(out.allocation.cloud_ues().count(), 2);
    }

    #[test]
    fn ue_preference_formula_matches_eq17() {
        let inst = two_sp_instance();
        let link = inst
            .link(dmra_types::UeId::new(0), dmra_types::BsId::new(0))
            .unwrap();
        let v = ue_preference(100.0, link, Cru::new(50), dmra_types::RrbCount::new(50));
        assert!((v - (link.price.get() + 1.0)).abs() < 1e-12);
        // Drained BS is infinitely unattractive.
        let v = ue_preference(100.0, link, Cru::ZERO, dmra_types::RrbCount::ZERO);
        assert!(v.is_infinite());
        // rho = 0 reduces to pure price preference.
        let v = ue_preference(0.0, link, Cru::new(1), dmra_types::RrbCount::new(1));
        assert!((v - link.price.get()).abs() < 1e-12);
    }

    #[test]
    fn higher_rho_prefers_resource_rich_bs() {
        let inst = two_sp_instance();
        let state_rich = MatchState {
            rem_cru: vec![vec![Cru::new(100); 2], vec![Cru::new(10); 2]],
            rem_rrb: vec![dmra_types::RrbCount::new(55), dmra_types::RrbCount::new(5)],
        };
        let cands = inst.candidates(dmra_types::UeId::new(0)).to_vec();
        // With rho = 0 the cheaper (same-SP, nearer) bs0 wins anyway here,
        // so flip the test: make bs1 cheaper by checking preference values
        // directly instead.
        let v0_low = ue_preference(0.0, &cands[0], Cru::new(100), dmra_types::RrbCount::new(55));
        let v0_high = ue_preference(
            1000.0,
            &cands[0],
            Cru::new(100),
            dmra_types::RrbCount::new(55),
        );
        let v1_high = ue_preference(
            1000.0,
            &cands[1],
            Cru::new(10),
            dmra_types::RrbCount::new(5),
        );
        assert!(v0_high > v0_low, "rho adds a positive term");
        // The resource-poor BS is penalised much harder at high rho.
        assert!(v1_high - cands[1].price.get() > v0_high - cands[0].price.get());
        let _ = state_rich;
    }

    #[test]
    fn iteration_count_is_bounded_by_ues_plus_one() {
        let inst = two_sp_instance();
        let out = Dmra::default().solve(&inst).unwrap();
        assert!(out.iterations <= inst.n_ues() + 1);
    }

    #[test]
    fn dense_solver_matches_reference_on_every_small_scenario() {
        // Full-outcome equality (allocation, iteration count, proposal
        // count, acceptance timeline) between the optimized dense solver
        // and the line-by-line reference, across the knobs that change
        // its decisions. Paper-scale equality is asserted by the
        // workspace-root `parallelism` integration tests.
        let scenarios: Vec<(ProblemInstance, DmraConfig)> = vec![
            (two_sp_instance(), DmraConfig::paper_defaults()),
            (
                two_sp_instance(),
                DmraConfig::paper_defaults().with_rho(0.0),
            ),
            (
                two_sp_instance(),
                DmraConfig {
                    same_sp_preference: false,
                    ..DmraConfig::paper_defaults()
                },
            ),
            (contested_instance(1), DmraConfig::paper_defaults()),
            (
                contested_instance(1),
                DmraConfig {
                    same_sp_preference: false,
                    ..DmraConfig::paper_defaults()
                },
            ),
            (contested_instance(0), DmraConfig::paper_defaults()),
            (
                contested_instance(55),
                DmraConfig::paper_defaults().with_rho(1000.0),
            ),
        ];
        for (i, (inst, cfg)) in scenarios.iter().enumerate() {
            let dmra = Dmra::new(*cfg);
            let fast = dmra.solve(inst).unwrap();
            let reference = dmra.solve_reference(inst).unwrap();
            assert_eq!(fast, reference, "scenario #{i} diverged");
        }
    }

    #[test]
    fn workspace_reuse_never_changes_the_outcome() {
        // One workspace dragged across instances of different shapes and
        // configs must reproduce the fresh-workspace outcome every time.
        let instances = [
            two_sp_instance(),
            contested_instance(1),
            contested_instance(0),
            two_sp_instance(),
            contested_instance(55),
        ];
        let mut ws = DmraWorkspace::default();
        for (i, inst) in instances.iter().enumerate() {
            let dmra = Dmra::default();
            let reused = dmra.solve_with_workspace(inst, &mut ws).unwrap();
            let fresh = dmra.solve(inst).unwrap();
            assert_eq!(reused, fresh, "instance #{i} diverged under reuse");
        }
    }

    #[test]
    fn session_matches_one_shot_allocate() {
        let dmra = Dmra::default();
        let mut session = dmra.session();
        for inst in [two_sp_instance(), contested_instance(1), two_sp_instance()] {
            assert_eq!(session.allocate(&inst), dmra.allocate(&inst));
        }
    }

    #[test]
    fn acceptance_timeline_sums_to_served() {
        let inst = two_sp_instance();
        let out = Dmra::default().solve(&inst).unwrap();
        let total: usize = out.acceptances.iter().sum();
        assert_eq!(total, out.allocation.edge_served());
        // The timeline covers every non-silent iteration.
        assert_eq!(out.acceptances.len() + 1, out.iterations);
        // Every BS with proposals accepts at least one UE per iteration
        // (the termination argument), so no zero entries appear.
        assert!(out.acceptances.iter().all(|&a| a > 0));
        // The unmatched trajectory parallels the acceptance timeline and
        // is monotonically non-increasing, ending at zero residual demand
        // (everyone is edge-served or cloud-forwarded at quiescence).
        assert_eq!(out.unmatched.len(), out.acceptances.len());
        assert!(out.unmatched.windows(2).all(|w| w[1] <= w[0]));
        let served = out.allocation.edge_served();
        let cloud = out.allocation.cloud_ues().count();
        assert_eq!(
            *out.unmatched.last().unwrap(),
            inst.n_ues() - served - cloud
        );
    }

    /// Two BS "islands" far beyond coverage range of each other, each with
    /// its own cluster of UEs — decomposes into two components. A third UE
    /// cluster member sits out of everyone's coverage (cloud-only).
    fn island_instance() -> ProblemInstance {
        let sps = vec![
            SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0)),
            SpSpec::new(SpId::new(1), Money::new(10.0), Money::new(1.0)),
        ];
        let catalog = ServiceCatalog::new(2);
        let mk_bs = |id: u32, sp: u32, x: f64| {
            BsSpec::new(
                dmra_types::BsId::new(id),
                SpId::new(sp),
                Point::new(x, 0.0),
                vec![Cru::new(100), Cru::new(100)],
                Hertz::from_mhz(10.0),
                dmra_types::RrbCount::new(55),
            )
        };
        let bss = vec![mk_bs(0, 0, 0.0), mk_bs(1, 1, 100_000.0)];
        let mk_ue = |id: u32, sp: u32, x: f64, svc: u32| {
            UeSpec::new(
                dmra_types::UeId::new(id),
                SpId::new(sp),
                Point::new(x, 0.0),
                ServiceId::new(svc),
                Cru::new(4),
                BitsPerSec::from_mbps(3.0),
                Dbm::new(10.0),
            )
        };
        let ues = vec![
            mk_ue(0, 0, 100.0, 0),     // island 0
            mk_ue(1, 1, 100_100.0, 1), // island 1
            mk_ue(2, 1, 120.0, 0),     // island 0, cross-SP
            mk_ue(3, 0, 50_000.0, 0),  // out of all coverage → cloud-only
            mk_ue(4, 0, 100_050.0, 1), // island 1, cross-SP
        ];
        ProblemInstance::build(
            sps,
            bss,
            ues,
            catalog,
            PricingConfig::paper_defaults(),
            RadioConfig::paper_defaults(),
            CoverageModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn island_instance_decomposes_into_two_components() {
        let inst = island_instance();
        let d = crate::components::decompose(&inst);
        assert_eq!(d.components.len(), 2, "decomposition: {d:?}");
        assert_eq!(d.cloud_only, vec![3]);
        assert_eq!(d.components[0].ues, vec![0, 2]);
        assert_eq!(d.components[0].bss, vec![0]);
        assert_eq!(d.components[1].ues, vec![1, 4]);
        assert_eq!(d.components[1].bss, vec![1]);
    }

    #[test]
    fn component_solve_is_bit_identical_to_monolithic() {
        // The full DmraOutcome — allocation, iteration count, proposal
        // totals, convergence trajectories — must match between the two
        // executions, on instances that do and do not split, across the
        // config knobs, for every thread count.
        let scenarios: Vec<(ProblemInstance, DmraConfig)> = vec![
            (island_instance(), DmraConfig::paper_defaults()),
            (
                island_instance(),
                DmraConfig::paper_defaults().with_rho(0.0),
            ),
            (
                island_instance(),
                DmraConfig {
                    same_sp_preference: false,
                    ..DmraConfig::paper_defaults()
                },
            ),
            (two_sp_instance(), DmraConfig::paper_defaults()),
            (contested_instance(1), DmraConfig::paper_defaults()),
            (contested_instance(0), DmraConfig::paper_defaults()),
            (
                contested_instance(55),
                DmraConfig::paper_defaults().with_rho(1000.0),
            ),
        ];
        for (i, (inst, cfg)) in scenarios.iter().enumerate() {
            let mono = Dmra::new(*cfg)
                .with_solve_mode(SolveMode::Monolithic)
                .solve(inst)
                .unwrap();
            for threads in [1, 2, 3, 8] {
                let comp = Dmra::new(*cfg)
                    .with_solve_mode(SolveMode::Components)
                    .with_solve_threads(Threads::Fixed(threads))
                    .solve(inst)
                    .unwrap();
                assert_eq!(comp, mono, "scenario #{i} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn component_session_matches_monolithic_session() {
        let mono = Dmra::default().with_solve_mode(SolveMode::Monolithic);
        let comp = Dmra::default().with_solve_mode(SolveMode::Components);
        let mut mono_session = mono.session();
        let mut comp_session = comp.session();
        for inst in [
            island_instance(),
            two_sp_instance(),
            island_instance(),
            contested_instance(1),
        ] {
            assert_eq!(comp_session.allocate(&inst), mono_session.allocate(&inst));
        }
    }

    #[test]
    fn load_proportional_interference_pins_the_monolithic_path() {
        // The global coupling through aggregate received power makes
        // splitting unsound; the effective mode must demote itself, and
        // the solve must still equal the monolithic one trivially.
        let inst = {
            let sps = vec![
                SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0)),
                SpSpec::new(SpId::new(1), Money::new(10.0), Money::new(1.0)),
            ];
            let catalog = ServiceCatalog::new(1);
            let mk_bs = |id: u32, sp: u32, x: f64| {
                BsSpec::new(
                    dmra_types::BsId::new(id),
                    SpId::new(sp),
                    Point::new(x, 0.0),
                    vec![Cru::new(100)],
                    Hertz::from_mhz(10.0),
                    dmra_types::RrbCount::new(55),
                )
            };
            let mk_ue = |id: u32, sp: u32, x: f64| {
                UeSpec::new(
                    dmra_types::UeId::new(id),
                    SpId::new(sp),
                    Point::new(x, 0.0),
                    ServiceId::new(0),
                    Cru::new(4),
                    BitsPerSec::from_mbps(3.0),
                    Dbm::new(10.0),
                )
            };
            let radio = dmra_radio::RadioConfig {
                interference: dmra_radio::InterferenceModel::LoadProportional { factor: 0.1 },
                ..RadioConfig::paper_defaults()
            };
            ProblemInstance::build(
                sps,
                vec![mk_bs(0, 0, 0.0), mk_bs(1, 1, 100_000.0)],
                vec![mk_ue(0, 0, 100.0), mk_ue(1, 1, 100_100.0)],
                catalog,
                PricingConfig::paper_defaults(),
                radio,
                CoverageModel::default(),
            )
            .unwrap()
        };
        let dmra = Dmra::default().with_solve_mode(SolveMode::Components);
        assert_eq!(dmra.effective_solve_mode(&inst), SolveMode::Monolithic);
        assert!(!crate::components::splittable(&inst));
        let comp = dmra.solve(&inst).unwrap();
        let mono = Dmra::default()
            .with_solve_mode(SolveMode::Monolithic)
            .solve(&inst)
            .unwrap();
        assert_eq!(comp, mono);
    }

    #[test]
    fn all_cloud_instance_merges_to_one_silent_iteration() {
        // Zero-RRB budget: every candidate prunes away in iteration 1 and
        // everyone cloud-forwards; both paths must agree on the degenerate
        // trajectory (iterations = 1, empty timelines).
        let inst = contested_instance(0);
        let comp = Dmra::default()
            .with_solve_mode(SolveMode::Components)
            .solve(&inst)
            .unwrap();
        assert_eq!(comp.iterations, 1);
        assert!(comp.acceptances.is_empty());
    }

    /// The full deployment budgets of an instance, as residual-shaped
    /// vectors.
    fn full_budgets(inst: &ProblemInstance) -> (Vec<Vec<Cru>>, Vec<dmra_types::RrbCount>) {
        (
            inst.bss().iter().map(|b| b.cru_budget.clone()).collect(),
            inst.bss().iter().map(|b| b.rrb_budget).collect(),
        )
    }

    fn island_batch() -> Vec<UeSpec> {
        island_instance().ues().to_vec()
    }

    #[test]
    fn delta_session_without_metadata_matches_monolithic_session() {
        // Instances built from scratch carry no DeltaInfo, so the delta
        // session must degrade to the components execution — bit-identical
        // to the monolithic session on every call, cache kept empty.
        let delta = Dmra::default().with_solve_mode(SolveMode::Delta);
        let mono = Dmra::default().with_solve_mode(SolveMode::Monolithic);
        let mut delta_session = DmraSession {
            dmra: delta,
            workspace: DmraWorkspace::default(),
            delta: DeltaState::default(),
        };
        let mut mono_session = mono.session();
        for inst in [
            island_instance(),
            two_sp_instance(),
            island_instance(),
            contested_instance(1),
        ] {
            assert_eq!(delta_session.allocate(&inst), mono_session.allocate(&inst));
            assert!(
                delta_session.delta.cache.is_empty(),
                "untracked instances must not populate the delta cache"
            );
            assert!(!delta_session.delta.valid);
        }
    }

    #[test]
    fn delta_session_matches_monolithic_across_context_epochs() {
        // Epochs built through a row-cached DeploymentContext carry
        // DeltaInfo; the delta session must stay bit-identical to a
        // monolithic solve of every epoch instance, across unchanged
        // epochs (pure replay), a moved UE (partial re-solve), and a
        // same-id re-arrival with a different demand (the adversarial
        // case: the row key misses, the UE lands in the dirty set and its
        // component must re-solve).
        let deployment = island_instance();
        let (rem_cru, rem_rrb) = full_budgets(&deployment);
        let mut ctx = crate::online::DeploymentContext::new(&deployment).with_row_cache();
        let mut session = DmraSession {
            dmra: Dmra::default().with_solve_mode(SolveMode::Delta),
            workspace: DmraWorkspace::default(),
            delta: DeltaState::default(),
        };
        let mono = Dmra::default().with_solve_mode(SolveMode::Monolithic);

        let mut moved = island_batch();
        moved[2].position = Point::new(140.0, 0.0); // still island 0
        let mut redemanded = island_batch();
        redemanded[2].cru_demand = Cru::new(5); // same id, new demand
        let epochs = [
            island_batch(),
            island_batch(), // identical: both components replay
            moved,
            redemanded,
            island_batch(),
        ];
        for (e, batch) in epochs.into_iter().enumerate() {
            let inst = ctx
                .epoch_instance(&rem_cru, &rem_rrb, batch)
                .unwrap_or_else(|err| panic!("epoch {e}: {err}"));
            let d = inst.delta().expect("row-cached builds carry DeltaInfo");
            match e {
                1 => assert!(
                    d.dirty_ues.is_empty() && d.dirty_bss.is_empty(),
                    "identical epoch {e} must be fully clean, got {d:?}"
                ),
                // Epoch 4 reverts to the original batch, but slot 2's
                // cached row still carries epoch 3's key, so it misses
                // and stays dirty — exactly the fail-closed behaviour.
                2..=4 => assert!(
                    d.dirty_ues.contains(&2),
                    "epoch {e} must dirty the changed UE, got {d:?}"
                ),
                _ => {}
            }
            let fast = session.allocate(inst);
            assert_eq!(fast, mono.allocate(inst), "epoch {e} diverged");
            assert!(session.delta.valid);
            assert_eq!(session.delta.cache.len(), 2, "epoch {e}");
        }
    }

    #[test]
    fn delta_clean_components_replay_verbatim_from_the_cache() {
        // White-box proof that clean components replay rather than
        // re-solve: tamper the cached run of component 0 between two
        // identical epochs and observe the tampered assignment flow
        // through to the output verbatim.
        let deployment = island_instance();
        let (rem_cru, rem_rrb) = full_budgets(&deployment);
        let mut ctx = crate::online::DeploymentContext::new(&deployment).with_row_cache();
        let mut session = DmraSession {
            dmra: Dmra::default().with_solve_mode(SolveMode::Delta),
            workspace: DmraWorkspace::default(),
            delta: DeltaState::default(),
        };

        let inst = ctx
            .epoch_instance(&rem_cru, &rem_rrb, island_batch())
            .unwrap();
        let honest = session.allocate(inst);
        assert_eq!(honest.bs_of(dmra_types::UeId::new(0)), Some(BsId::new(0)));

        // Component 0 is keyed by its smallest UE id (0); drop its local
        // UE 0 assignment in the cached run.
        session
            .delta
            .cache
            .get_mut(&0)
            .expect("component 0 is cached")
            .run
            .assigned[0] = None;

        let inst = ctx
            .epoch_instance(&rem_cru, &rem_rrb, island_batch())
            .unwrap();
        let replayed = session.allocate(inst);
        assert_eq!(
            replayed.bs_of(dmra_types::UeId::new(0)),
            None,
            "a clean component must replay its cached run verbatim"
        );
        // The other island's replay is untouched.
        assert_eq!(
            replayed.bs_of(dmra_types::UeId::new(1)),
            honest.bs_of(dmra_types::UeId::new(1))
        );
    }

    #[test]
    fn delta_continuity_gap_fails_closed() {
        // Skipping an epoch (the session never sees build N) leaves a
        // sequence gap; the next allocate must treat everything as dirty
        // and still produce the monolithic answer — even with a poisoned
        // cache entry, which a (wrong) replay would leak.
        let deployment = island_instance();
        let (rem_cru, rem_rrb) = full_budgets(&deployment);
        let mut ctx = crate::online::DeploymentContext::new(&deployment).with_row_cache();
        let mut session = DmraSession {
            dmra: Dmra::default().with_solve_mode(SolveMode::Delta),
            workspace: DmraWorkspace::default(),
            delta: DeltaState::default(),
        };
        let inst = ctx
            .epoch_instance(&rem_cru, &rem_rrb, island_batch())
            .unwrap();
        let honest = session.allocate(inst);
        session
            .delta
            .cache
            .get_mut(&0)
            .expect("component 0 is cached")
            .run
            .assigned[0] = None;
        // Build an epoch the session never solves: the lineage advances
        // past it.
        let _ = ctx
            .epoch_instance(&rem_cru, &rem_rrb, island_batch())
            .unwrap();
        let inst = ctx
            .epoch_instance(&rem_cru, &rem_rrb, island_batch())
            .unwrap();
        assert_eq!(
            session.allocate(inst),
            honest,
            "a lineage gap must force a full re-solve"
        );
    }

    #[test]
    fn trajectory_counters_match_reference_on_contested_instance() {
        // The contested instance forces a radio-admission eviction and
        // candidate prunes; the dense solver must report the same counts
        // as the line-by-line reference (full-outcome equality covers the
        // fields, this spells the trajectory out for clarity).
        let inst = contested_instance(1);
        let dmra = Dmra::default();
        let fast = dmra.solve(&inst).unwrap();
        let reference = dmra.solve_reference(&inst).unwrap();
        assert_eq!(fast.iterations, reference.iterations);
        assert_eq!(fast.proposals, reference.proposals);
        assert_eq!(fast.acceptances, reference.acceptances);
        assert_eq!(fast.unmatched, reference.unmatched);
        assert_eq!(fast.prunes, reference.prunes);
        assert_eq!(fast.evictions, reference.evictions);
        // One UE loses the only slot and retries until its candidate set
        // empties: at least one prune must have happened.
        assert!(fast.prunes > 0, "expected prunes on the contested instance");
    }
}
