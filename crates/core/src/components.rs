//! Connected-component decomposition of a [`ProblemInstance`].
//!
//! The matching of Algorithm 1 is decentralized by construction: a UE only
//! ever interacts with the BSs in its candidate set, and a BS only with the
//! UEs that propose to it. Viewing UEs and BSs as the two sides of a
//! bipartite graph whose edges are the precomputed candidate links, the
//! instance splits into connected components whose deferred-acceptance
//! runs cannot influence each other — no preference value, feasibility
//! check or admission decision ever reads state outside the component.
//! [`decompose`] finds that partition with a union-find pass over the
//! candidate rows; [`crate::Dmra`] solves the components independently
//! (in parallel when it helps) and merges the sub-outcomes back in global
//! UE order, bit-identical to the monolithic solve (DESIGN.md §14 spells
//! out the argument).
//!
//! Splitting is only sound when candidate links are the *whole* coupling
//! between agents. The load-proportional interference model couples every
//! UE through the aggregate received power at each BS, so instances built
//! with it refuse to split — the same guard the incremental row cache and
//! the region-sharded runtime apply.

use crate::instance::ProblemInstance;
use dmra_radio::InterferenceModel;
use dmra_types::UeId;
use std::sync::atomic::{AtomicU8, Ordering};

/// How [`crate::Dmra`] executes a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// One dense matching run over the whole instance — the original
    /// execution, and the fallback whenever splitting is unsound.
    #[default]
    Monolithic,
    /// Decompose the instance into connected components and solve them
    /// independently, fanning out over `dmra-par` workers. Bit-identical
    /// to [`SolveMode::Monolithic`] (enforced by the equality suites);
    /// only wall-clock time changes. Opt in via `--solve components` or
    /// [`set_solve_mode_default`].
    Components,
    /// [`SolveMode::Components`] plus a cross-epoch per-component result
    /// cache: a session-held solver replays the cached matching of every
    /// component whose member rows and member-BS budgets are bit-unchanged
    /// since its last solve (as witnessed by the [`DeltaInfo`] the online
    /// row cache attaches to the instance), and re-matches only the dirty
    /// components. Bit-identical to both other modes (DESIGN.md §17);
    /// instances without delta metadata — or solves outside a session —
    /// degrade to exactly the [`SolveMode::Components`] execution. Opt in
    /// via `--solve delta`.
    ///
    /// [`DeltaInfo`]: crate::DeltaInfo
    Delta,
}

/// Process-wide default consumed by [`crate::Dmra`] solves that were not
/// given an explicit mode. A plain relaxed atomic: the value is set once
/// at CLI startup, before any solver runs.
static SOLVE_MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default [`SolveMode`] picked up by every
/// subsequently run [`crate::Dmra`] solve without an explicit mode.
/// Intended for CLI startup (`--solve`); library code should use
/// [`crate::Dmra::with_solve_mode`] instead.
pub fn set_solve_mode_default(mode: SolveMode) {
    let raw = match mode {
        SolveMode::Monolithic => 0,
        SolveMode::Components => 1,
        SolveMode::Delta => 2,
    };
    SOLVE_MODE.store(raw, Ordering::Relaxed);
}

/// The current process-wide default [`SolveMode`].
#[must_use]
pub fn solve_mode_default() -> SolveMode {
    match SOLVE_MODE.load(Ordering::Relaxed) {
        1 => SolveMode::Components,
        2 => SolveMode::Delta,
        _ => SolveMode::Monolithic,
    }
}

/// One connected component of the candidate-link graph: a set of UEs and
/// the BSs they can reach, closed under "shares a candidate link".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Component {
    /// Raw UE indices, ascending — so local UE order preserves the global
    /// tie-break order inside the component.
    pub ues: Vec<u32>,
    /// Raw BS indices, ascending — same order-preservation argument for
    /// the BS-side tie-breaks.
    pub bss: Vec<u32>,
}

/// The full partition produced by [`decompose`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Decomposition {
    /// Components ordered by their smallest UE index (ascending), which
    /// makes the merge order — and therefore the merged outcome —
    /// deterministic.
    pub components: Vec<Component>,
    /// UEs with an empty candidate row. They join no component: the
    /// matcher cloud-forwards them in its first iteration without ever
    /// touching BS state.
    pub cloud_only: Vec<u32>,
}

impl Decomposition {
    /// Number of UEs across all components plus the cloud-only set.
    #[must_use]
    pub fn n_ues(&self) -> usize {
        self.cloud_only.len() + self.components.iter().map(|c| c.ues.len()).sum::<usize>()
    }

    /// The largest component's UE count (0 when there are none).
    #[must_use]
    pub fn max_component_ues(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.ues.len())
            .max()
            .unwrap_or(0)
    }
}

/// Returns `true` when the instance's physics allow component splitting:
/// candidate links must be the only coupling between UEs. The
/// load-proportional interference model adds a global coupling through
/// the per-BS aggregate received power, so it pins the solve to the
/// monolithic path (mirroring the row-cache and shard-runtime guards).
#[must_use]
pub fn splittable(instance: &ProblemInstance) -> bool {
    !matches!(
        instance.radio().interference,
        InterferenceModel::LoadProportional { .. }
    )
}

/// Partitions the instance into connected components of the candidate-link
/// graph via union-find (path-halving find, union by size).
///
/// The pass is `O(links α(n))` and allocation-light: one parent/size table
/// over `n_ues + n_bss` nodes, then one ascending sweep per side to emit
/// the components in deterministic order.
#[must_use]
pub fn decompose(instance: &ProblemInstance) -> Decomposition {
    let mut decomposer = Decomposer::default();
    decomposer.run(instance);
    decomposer.decomp
}

/// A [`decompose`] whose scratch survives across calls: the union-find
/// tables, the root map and the emitted component lists are all reused,
/// so the per-epoch decomposition in the delta solver allocates nothing
/// in steady state. Output is identical to [`decompose`] for every
/// instance — the reuse test below pins that.
#[derive(Debug, Default)]
pub struct Decomposer {
    uf: UnionFind,
    component_of_root: Vec<usize>,
    decomp: Decomposition,
    /// Retired `Component` allocations, recycled on the next run.
    spare: Vec<Component>,
}

impl Decomposer {
    /// Decomposes `instance`, reusing all internal scratch. The returned
    /// reference is valid until the next call.
    pub fn run(&mut self, instance: &ProblemInstance) -> &Decomposition {
        let n_ues = instance.n_ues();
        let n_bss = instance.n_bss();
        // Nodes 0..n_ues are UEs; n_ues..n_ues+n_bss are BSs.
        self.uf.reset(n_ues + n_bss);
        self.decomp.cloud_only.clear();
        for u in 0..n_ues {
            let row = instance.candidates(UeId::new(u as u32));
            if row.is_empty() {
                self.decomp.cloud_only.push(u as u32);
                continue;
            }
            for link in row {
                self.uf.union(u, n_ues + link.bs.as_usize());
            }
        }
        // Emit components ordered by smallest member UE; membership lists
        // come out ascending because both sweeps run in ascending index
        // order.
        self.component_of_root.clear();
        self.component_of_root.resize(n_ues + n_bss, usize::MAX);
        self.spare.append(&mut self.decomp.components);
        for comp in &mut self.spare {
            comp.ues.clear();
            comp.bss.clear();
        }
        let components = &mut self.decomp.components;
        for u in 0..n_ues {
            if instance.candidates(UeId::new(u as u32)).is_empty() {
                continue;
            }
            let root = self.uf.find(u);
            let c = if self.component_of_root[root] == usize::MAX {
                self.component_of_root[root] = components.len();
                components.push(self.spare.pop().unwrap_or_default());
                components.len() - 1
            } else {
                self.component_of_root[root]
            };
            components[c].ues.push(u as u32);
        }
        for b in 0..n_bss {
            let c = self.component_of_root[self.uf.find(n_ues + b)];
            if c != usize::MAX {
                // BSs out of everyone's reach (no candidate link at all)
                // stay out of every component; no solve will touch them.
                components[c].bss.push(b as u32);
            }
        }
        &self.decomp
    }

    /// The decomposition produced by the last [`Decomposer::run`].
    #[must_use]
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }
}

/// Array-based disjoint-set forest.
#[derive(Debug, Default)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    #[cfg(test)]
    fn new(n: usize) -> Self {
        let mut uf = Self::default();
        uf.reset(n);
        uf
    }

    /// Re-initializes the forest to `n` singletons, reusing the tables.
    fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.size.clear();
        self.size.resize(n, 1);
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            // Path halving: point every other node at its grandparent.
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::two_sp_instance;

    #[test]
    fn union_find_merges_and_finds() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(4));
        assert_ne!(uf.find(4), uf.find(5));
    }

    #[test]
    fn two_sp_instance_is_one_component() {
        // The tiny shared instance: both UEs reach both BSs.
        let inst = two_sp_instance();
        let d = decompose(&inst);
        assert_eq!(d.components.len(), 1);
        assert!(d.cloud_only.is_empty());
        assert_eq!(d.components[0].ues, vec![0, 1]);
        assert_eq!(d.components[0].bss, vec![0, 1]);
        assert_eq!(d.n_ues(), inst.n_ues());
        assert_eq!(d.max_component_ues(), 2);
    }

    #[test]
    fn default_solve_mode_is_monolithic() {
        // The process default starts monolithic; `--solve components` is
        // an explicit opt-in. (Tests that flip the global default live in
        // the CLI crate where the process-global race is managed.)
        assert_eq!(SolveMode::default(), SolveMode::Monolithic);
    }

    #[test]
    fn noise_only_instances_are_splittable() {
        assert!(splittable(&two_sp_instance()));
    }

    #[test]
    fn decomposer_reuse_matches_fresh_decompose() {
        // One Decomposer dragged across instances of different shapes must
        // reproduce the from-scratch decomposition every time, including
        // after shrinking (stale scratch larger than the instance).
        let big = two_sp_instance();
        let mut small = two_sp_instance();
        // A one-UE residual re-build keeps the deployment but shrinks the
        // UE side; decompose only reads rows, so reusing `big` twice with
        // `small` in between exercises grow → shrink → grow.
        let rem_cru: Vec<Vec<dmra_types::Cru>> =
            big.bss().iter().map(|b| b.cru_budget.clone()).collect();
        let rem_rrb: Vec<dmra_types::RrbCount> = big.bss().iter().map(|b| b.rrb_budget).collect();
        small = small
            .residual(&rem_cru, &rem_rrb, vec![big.ues()[0]])
            .unwrap();
        let mut d = Decomposer::default();
        for inst in [&big, &small, &big, &small] {
            assert_eq!(d.run(inst), &decompose(inst));
            assert_eq!(d.decomposition(), &decompose(inst));
        }
    }

    #[test]
    fn solve_mode_default_roundtrips_all_modes() {
        // The raw-atomic encoding must survive a set/get round trip for
        // every variant. Restore monolithic afterwards: the default is
        // process-global state shared with other tests.
        for mode in [
            SolveMode::Components,
            SolveMode::Delta,
            SolveMode::Monolithic,
        ] {
            set_solve_mode_default(mode);
            assert_eq!(solve_mode_default(), mode);
        }
    }
}
