//! The message-passing execution of Algorithm 1.
//!
//! The paper calls DMRA *decentralized*: UEs, SPs and BSs exchange service
//! requests, accept notifications and resource broadcasts until no UE has a
//! request left. This module runs exactly that protocol on the
//! [`dmra_proto::RoundEngine`]:
//!
//! * [`UeAgent`] holds only its own spec, its candidate links and a *local
//!   view* of each candidate BS's remaining resources (updated from
//!   broadcasts). It proposes to the BS minimising Eq. (17) under that
//!   view, prunes candidates its view says can never fit it, and falls
//!   back to the cloud when the candidate set empties.
//! * [`BsAgent`] holds its own budgets. Each round it groups incoming
//!   service requests by service, picks one winner per service (same-SP
//!   first, then smallest `f_u`, then smallest footprint), applies the
//!   RRB admission step, sends `Accept` to winners and broadcasts its
//!   remaining resources to every UE it covers (line 26 of Algorithm 1).
//!
//! **Equivalence.** Under reliable delivery each protocol round pair
//! (propose round + respond round) computes exactly one iteration of the
//! centralized matcher on identical information: a UE's candidates are a
//! subset of the BSs that cover it, so every resource change it could act
//! on reaches it before its next proposal. The workspace integration tests
//! assert bit-identical allocations against [`crate::Dmra`].
//!
//! **Fault tolerance.** With a lossy [`DropPolicy`] the protocol remains
//! safe (BSs are authoritative for resource accounting, so no budget is
//! ever exceeded) and mostly live: a UE that waits two consecutive silent
//! rounds re-sends its proposal, and after three unanswered retries to the
//! same BS it declares the BS dead and prunes it — which is what lets the
//! protocol route around fail-stopped BSs (see
//! [`dmra_proto::RoundEngine::crash_at`]). A lost `Accept` can leave a BS
//! reserving resources for a UE that re-attached elsewhere; the harvest
//! step keeps the BS-side record made first and reports such conflicts in
//! [`DecentralizedOutcome::conflicting_accepts`].

use crate::allocation::Allocation;
use crate::dmra::DmraConfig;
use crate::instance::{CandidateLink, ProblemInstance};
use dmra_proto::{
    Address, Agent, DelayModel, DropPolicy, Envelope, MessageKind, Outbox, RoundEngine, RunStats,
};
use dmra_types::{BsId, Cru, Result, RrbCount, ServiceId, SpId, UeId};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// The DMRA protocol message vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum DmraMsg {
    /// UE → BS (lines 6–7): "serve my task". Carries everything the BS
    /// needs for its preference: the requested service, the UE's SP, its
    /// coverage count `f_u`, and its CRU/RRB demands at this BS.
    ServiceRequest {
        /// The requested service `j`.
        service: ServiceId,
        /// The SP the UE subscribes to.
        sp: SpId,
        /// `f_u`: how many BSs could serve this UE.
        f_u: u32,
        /// `c_j^u`: CRU demand.
        cru_demand: Cru,
        /// `n_{u,i}`: RRB demand at the receiving BS.
        n_rrbs: RrbCount,
    },
    /// BS → UE: the proposal was accepted; the UE is served.
    Accept,
    /// BS → covered UEs (line 26): remaining per-service CRUs and RRBs.
    ResourceUpdate {
        /// Remaining CRUs per service at the sender.
        rem_cru: Vec<Cru>,
        /// Remaining RRBs at the sender.
        rem_rrb: RrbCount,
    },
    /// UE → cloud: no BS can serve the task (line 1 / emptied `B_u`).
    CloudForward,
}

impl MessageKind for DmraMsg {
    fn kind(&self) -> &'static str {
        match self {
            DmraMsg::ServiceRequest { .. } => "service-request",
            DmraMsg::Accept => "accept",
            DmraMsg::ResourceUpdate { .. } => "resource-update",
            DmraMsg::CloudForward => "cloud-forward",
        }
    }

    /// Wire sizes assume 4-byte ids/counts plus a 16-byte header.
    fn size_bytes(&self) -> usize {
        match self {
            // service + sp + f_u + cru + rrbs = 5 fields.
            DmraMsg::ServiceRequest { .. } => 16 + 5 * 4,
            DmraMsg::Accept | DmraMsg::CloudForward => 16,
            // One CRU count per service plus the RRB count.
            DmraMsg::ResourceUpdate { rem_cru, .. } => 16 + 4 * (rem_cru.len() + 1),
        }
    }
}

/// A shared, single-threaded assignment board the BS agents write accepted
/// pairs onto. First write wins; later conflicting writes are counted.
type Board = Rc<RefCell<BoardState>>;

#[derive(Debug, Default)]
pub(crate) struct BoardState {
    assigned: Vec<Option<BsId>>,
    conflicts: u64,
}

/// The local view a UE keeps of one candidate BS.
#[derive(Debug, Clone, Copy)]
struct CandidateView {
    link: CandidateLink,
    rem_cru: Cru,
    rem_rrb: RrbCount,
}

/// The UE side of the protocol.
#[derive(Debug)]
pub struct UeAgent {
    id: UeId,
    service: ServiceId,
    sp: SpId,
    f_u: u32,
    cru_demand: Cru,
    rho: f64,
    candidates: Vec<CandidateView>,
    assigned: bool,
    cloud_announced: bool,
    awaiting: Option<BsId>,
    silent_rounds: u32,
    /// Consecutive unanswered proposals to the currently awaited BS; at
    /// three the BS is presumed crashed and pruned.
    retries_on_awaited: u32,
}

impl UeAgent {
    /// Builds the agent for `ue` from the instance (its spec, candidates
    /// and the initial — exact — resource view).
    ///
    /// # Panics
    ///
    /// Panics if `ue` is not part of the instance.
    #[must_use]
    pub fn new(instance: &ProblemInstance, ue: UeId, config: &DmraConfig) -> Self {
        let spec = &instance.ues()[ue.as_usize()];
        let candidates = instance
            .candidates(ue)
            .iter()
            .map(|&link| {
                let bs = &instance.bss()[link.bs.as_usize()];
                CandidateView {
                    link,
                    rem_cru: bs.cru_budget_for(spec.service),
                    rem_rrb: bs.rrb_budget,
                }
            })
            .collect();
        Self {
            id: ue,
            service: spec.service,
            sp: spec.sp,
            f_u: instance.f_u(ue),
            cru_demand: spec.cru_demand,
            rho: config.rho,
            candidates,
            assigned: false,
            cloud_announced: false,
            awaiting: None,
            silent_rounds: 0,
            retries_on_awaited: 0,
        }
    }

    /// Picks the best candidate under the local view (Eq. (17)), pruning
    /// candidates whose viewed resources can never fit this UE.
    fn propose(&mut self, out: &mut Outbox<DmraMsg>) {
        loop {
            if self.candidates.is_empty() {
                if !self.cloud_announced {
                    self.cloud_announced = true;
                    out.send(Address::Cloud, DmraMsg::CloudForward);
                }
                return;
            }
            let best = self
                .candidates
                .iter()
                .enumerate()
                .map(|(idx, c)| {
                    let denom = c.rem_cru.as_f64() + c.rem_rrb.as_f64();
                    let v = if denom <= 0.0 {
                        f64::INFINITY
                    } else {
                        c.link.price.get() + self.rho / denom
                    };
                    (idx, v, c.link.bs)
                })
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.2.cmp(&b.2))
                })
                .map(|(idx, _, _)| idx)
                .expect("candidates non-empty");
            let cand = self.candidates[best];
            if cand.rem_cru >= self.cru_demand && cand.rem_rrb >= cand.link.n_rrbs {
                self.awaiting = Some(cand.link.bs);
                self.silent_rounds = 0;
                out.send(
                    Address::Bs(cand.link.bs),
                    DmraMsg::ServiceRequest {
                        service: self.service,
                        sp: self.sp,
                        f_u: self.f_u,
                        cru_demand: self.cru_demand,
                        n_rrbs: cand.link.n_rrbs,
                    },
                );
                return;
            }
            // Line 10: resources never grow — prune permanently.
            self.candidates.remove(best);
        }
    }

    /// Whether this agent ended the run attached to a BS.
    #[must_use]
    pub fn is_assigned(&self) -> bool {
        self.assigned
    }
}

impl Agent<DmraMsg> for UeAgent {
    fn address(&self) -> Address {
        Address::Ue(self.id)
    }

    fn on_round(&mut self, inbox: &[Envelope<DmraMsg>], out: &mut Outbox<DmraMsg>) {
        for env in inbox {
            match &env.msg {
                DmraMsg::Accept => {
                    self.assigned = true;
                    self.awaiting = None;
                }
                DmraMsg::ResourceUpdate { rem_cru, rem_rrb } => {
                    let Address::Bs(bs) = env.from else { continue };
                    for c in &mut self.candidates {
                        if c.link.bs == bs {
                            c.rem_cru = rem_cru
                                .get(self.service.as_usize())
                                .copied()
                                .unwrap_or(Cru::ZERO);
                            c.rem_rrb = *rem_rrb;
                        }
                    }
                    // An update from the BS we proposed to, without an
                    // Accept in the same inbox, is a rejection.
                    if self.awaiting == Some(bs) && !self.assigned {
                        self.awaiting = None;
                        self.retries_on_awaited = 0;
                    }
                }
                DmraMsg::ServiceRequest { .. } | DmraMsg::CloudForward => {}
            }
        }
        if self.assigned || self.cloud_announced {
            return;
        }
        match self.awaiting {
            None => self.propose(out),
            Some(bs) if inbox.is_empty() => {
                // Timeout: the proposal or its response was lost. One
                // silent round is normal pipelining; two means loss.
                self.silent_rounds += 1;
                if self.silent_rounds >= 2 {
                    self.retries_on_awaited += 1;
                    if self.retries_on_awaited >= 3 {
                        // Presume the BS crashed; never propose to it
                        // again (fail-stop assumption).
                        self.candidates.retain(|c| c.link.bs != bs);
                        self.retries_on_awaited = 0;
                    }
                    self.awaiting = None;
                    self.propose(out);
                }
            }
            Some(_) => {}
        }
    }
}

/// The BS side of the protocol.
#[derive(Debug)]
pub struct BsAgent {
    id: BsId,
    sp: SpId,
    rem_cru: Vec<Cru>,
    rem_rrb: RrbCount,
    covered: Vec<UeId>,
    same_sp_preference: bool,
    /// UEs this BS already committed resources to. Duplicate requests
    /// (possible under delays/timeouts) are answered with an idempotent
    /// re-`Accept` instead of a double commitment.
    served: HashSet<UeId>,
    board: Board,
}

impl BsAgent {
    /// Builds the agent for `bs` from the instance. Crate-private because
    /// the shared assignment board is an implementation detail; use
    /// [`run_decentralized`] to execute the protocol.
    #[must_use]
    pub(crate) fn new(
        instance: &ProblemInstance,
        bs: BsId,
        config: &DmraConfig,
        board: Board,
    ) -> Self {
        let spec = &instance.bss()[bs.as_usize()];
        Self {
            id: bs,
            sp: spec.sp,
            rem_cru: spec.cru_budget.clone(),
            rem_rrb: spec.rrb_budget,
            covered: instance.covered_ues(bs).to_vec(),
            same_sp_preference: config.same_sp_preference,
            served: HashSet::new(),
            board,
        }
    }
}

/// A proposer as seen by the BS (decoded from its `ServiceRequest`).
#[derive(Debug, Clone, Copy)]
struct Proposer {
    ue: UeId,
    service: ServiceId,
    sp: SpId,
    f_u: u32,
    cru_demand: Cru,
    n_rrbs: RrbCount,
}

type PreferenceKey = (
    bool,
    std::cmp::Reverse<u32>,
    std::cmp::Reverse<u32>,
    std::cmp::Reverse<u32>,
);

impl Proposer {
    /// Larger is better; mirrors the centralized matcher's BS preference.
    fn preference_key(&self, bs_sp: SpId, same_sp_preference: bool) -> PreferenceKey {
        (
            same_sp_preference && self.sp == bs_sp,
            std::cmp::Reverse(self.f_u),
            std::cmp::Reverse(self.n_rrbs.get() + self.cru_demand.get()),
            std::cmp::Reverse(self.ue.index()),
        )
    }
}

impl Agent<DmraMsg> for BsAgent {
    fn address(&self) -> Address {
        Address::Bs(self.id)
    }

    fn on_round(&mut self, inbox: &[Envelope<DmraMsg>], out: &mut Outbox<DmraMsg>) {
        let mut proposers: Vec<Proposer> = Vec::new();
        for env in inbox {
            if let DmraMsg::ServiceRequest {
                service,
                sp,
                f_u,
                cru_demand,
                n_rrbs,
            } = env.msg
            {
                let Address::Ue(ue) = env.from else { continue };
                if self.served.contains(&ue) {
                    // Duplicate (the UE timed out before our Accept landed,
                    // or the Accept was lost): re-send it, commit nothing.
                    out.send(Address::Ue(ue), DmraMsg::Accept);
                    continue;
                }
                proposers.push(Proposer {
                    ue,
                    service,
                    sp,
                    f_u,
                    cru_demand,
                    n_rrbs,
                });
            }
        }
        if proposers.is_empty() {
            return;
        }

        // Lines 13–21: one provisional winner per requested service.
        let mut services: Vec<ServiceId> = proposers.iter().map(|p| p.service).collect();
        services.sort_unstable();
        services.dedup();
        let mut winners: Vec<Proposer> = Vec::new();
        for svc in services {
            let winner = proposers
                .iter()
                .filter(|p| p.service == svc)
                // Ignore proposals the BS can no longer satisfy (stale
                // views under message loss).
                .filter(|p| {
                    self.rem_cru[svc.as_usize()] >= p.cru_demand && self.rem_rrb >= p.n_rrbs
                })
                .max_by_key(|p| p.preference_key(self.sp, self.same_sp_preference))
                .copied();
            if let Some(w) = winner {
                winners.push(w);
            }
        }

        // Lines 22–25: RRB admission — drop least-preferred winners until
        // the batch fits.
        let mut total: RrbCount = winners.iter().map(|w| w.n_rrbs).sum();
        if total > self.rem_rrb {
            winners.sort_by_key(|w| {
                std::cmp::Reverse(w.preference_key(self.sp, self.same_sp_preference))
            });
            while total > self.rem_rrb {
                let dropped = winners.pop().expect("winners cannot empty before fitting");
                total -= dropped.n_rrbs;
            }
        }

        for w in &winners {
            self.rem_cru[w.service.as_usize()] -= w.cru_demand;
            self.rem_rrb -= w.n_rrbs;
            self.served.insert(w.ue);
            out.send(Address::Ue(w.ue), DmraMsg::Accept);
            let mut board = self.board.borrow_mut();
            let slot = &mut board.assigned[w.ue.as_usize()];
            if slot.is_none() {
                *slot = Some(self.id);
            } else {
                board.conflicts += 1;
            }
        }

        // Line 26: broadcast the remaining resources to covered UEs. Also
        // reaches every rejected proposer (proposers are candidates, and
        // candidates are covered), acting as the rejection signal.
        for &ue in &self.covered {
            out.send(
                Address::Ue(ue),
                DmraMsg::ResourceUpdate {
                    rem_cru: self.rem_cru.clone(),
                    rem_rrb: self.rem_rrb,
                },
            );
        }
    }
}

/// The result of a decentralized run.
#[derive(Debug, Clone, PartialEq)]
pub struct DecentralizedOutcome {
    /// The assignment harvested from the BS-side records.
    pub allocation: Allocation,
    /// Engine statistics: rounds, message counts by kind, drops.
    pub stats: RunStats,
    /// Accepts that conflicted with an earlier assignment of the same UE
    /// (possible only under message loss; always 0 with reliable delivery).
    pub conflicting_accepts: u64,
}

/// Fault-injection and bounds for a protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolOptions {
    /// Message-loss policy.
    pub drop_policy: DropPolicy,
    /// Delivery-delay model.
    pub delay: DelayModel,
    /// BSs that fail-stop at the given protocol round.
    pub crashed_bss: Vec<(BsId, usize)>,
    /// Round bound before declaring non-termination.
    pub max_rounds: usize,
    /// Consecutive silent rounds required before quiescence. The UE retry
    /// timeout fires after two silent rounds, so the default of 3 keeps
    /// crashed-BS failover alive; raise it when long random delays could
    /// make a retry look like silence.
    pub quiescence_grace: usize,
}

impl Default for ProtocolOptions {
    /// Reliable, immediate, crash-free, generous bound.
    fn default() -> Self {
        Self {
            drop_policy: DropPolicy::reliable(),
            delay: DelayModel::Immediate,
            crashed_bss: Vec::new(),
            max_rounds: 100_000,
            quiescence_grace: 3,
        }
    }
}

/// Runs the DMRA protocol as message-passing agents.
///
/// With [`DropPolicy::reliable`] this produces exactly the allocation of
/// the centralized [`crate::Dmra`] matcher. With a lossy policy the result
/// is still safe (validates against the instance) but may serve fewer UEs.
///
/// # Errors
///
/// Returns [`dmra_types::Error::NonTermination`] if the protocol does not
/// quiesce within `max_rounds`.
pub fn run_decentralized(
    instance: &ProblemInstance,
    config: &DmraConfig,
    drop_policy: DropPolicy,
    max_rounds: usize,
) -> Result<DecentralizedOutcome> {
    run_decentralized_with(
        instance,
        config,
        drop_policy,
        DelayModel::Immediate,
        max_rounds,
    )
}

/// Like [`run_decentralized`], with an explicit message-delay model.
///
/// Delays exercise the UE-side retry timeout: a proposal answered after
/// more than two silent rounds is re-sent, and BSs answer duplicates with
/// an idempotent re-`Accept`. Safety (no over-commitment) holds for any
/// delay; under `DelayModel::Immediate` the result is bit-identical to
/// the centralized matcher.
///
/// # Errors
///
/// Returns [`dmra_types::Error::NonTermination`] if the protocol does not
/// quiesce within `max_rounds`.
pub fn run_decentralized_with(
    instance: &ProblemInstance,
    config: &DmraConfig,
    drop_policy: DropPolicy,
    delay: DelayModel,
    max_rounds: usize,
) -> Result<DecentralizedOutcome> {
    run_protocol(
        instance,
        config,
        ProtocolOptions {
            drop_policy,
            delay,
            max_rounds,
            ..ProtocolOptions::default()
        },
    )
}

/// The fully-general protocol runner: loss, delays and BS crashes.
///
/// A crashed BS stops responding; UEs that proposed to it time out, retry
/// twice, then presume it dead and fail over to their next candidate (or
/// the cloud). Resources the dead BS had already committed stay committed
/// — exactly the state a real fail-stop leaves behind.
///
/// # Errors
///
/// Returns [`dmra_types::Error::NonTermination`] if the protocol does not
/// quiesce within `options.max_rounds`.
pub fn run_protocol(
    instance: &ProblemInstance,
    config: &DmraConfig,
    options: ProtocolOptions,
) -> Result<DecentralizedOutcome> {
    let board: Board = Rc::new(RefCell::new(BoardState {
        assigned: vec![None; instance.n_ues()],
        conflicts: 0,
    }));
    let max_rounds = options.max_rounds;
    let mut engine: RoundEngine<DmraMsg> = RoundEngine::with_drop_policy(options.drop_policy);
    engine.set_delay_model(options.delay);
    engine.set_quiescence_grace(options.quiescence_grace);
    for (bs, round) in options.crashed_bss {
        engine.crash_at(Address::Bs(bs), round);
    }
    for u in 0..instance.n_ues() {
        engine.register(Box::new(UeAgent::new(
            instance,
            UeId::new(u as u32),
            config,
        )));
    }
    for i in 0..instance.n_bss() {
        engine.register(Box::new(BsAgent::new(
            instance,
            BsId::new(i as u32),
            config,
            Rc::clone(&board),
        )));
    }
    let stats = engine.run(max_rounds)?;
    drop(engine);
    let board = Rc::try_unwrap(board)
        .expect("engine dropped its agents, board is unique")
        .into_inner();
    Ok(DecentralizedOutcome {
        allocation: Allocation::from_assignments(board.assigned),
        stats,
        conflicting_accepts: board.conflicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Allocator;
    use crate::dmra::Dmra;
    use crate::instance::tests::two_sp_instance;

    #[test]
    fn reliable_run_matches_centralized_matcher() {
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        let central = Dmra::new(config).allocate(&inst);
        let out = run_decentralized(&inst, &config, DropPolicy::reliable(), 1000).unwrap();
        assert_eq!(out.allocation, central);
        assert_eq!(out.conflicting_accepts, 0);
        out.allocation.validate(&inst).unwrap();
    }

    #[test]
    fn message_kinds_are_counted() {
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        let out = run_decentralized(&inst, &config, DropPolicy::reliable(), 1000).unwrap();
        assert!(out.stats.by_kind.contains_key("service-request"));
        assert!(out.stats.by_kind.contains_key("accept"));
        assert!(out.stats.by_kind.contains_key("resource-update"));
        assert_eq!(out.stats.by_kind.get("accept"), Some(&2));
    }

    #[test]
    fn lossy_run_stays_safe() {
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        for seed in 0..20 {
            let out =
                run_decentralized(&inst, &config, DropPolicy::new(0.3, seed), 10_000).unwrap();
            out.allocation.validate(&inst).unwrap();
        }
    }

    #[test]
    fn fixed_delay_runs_complete_and_validate() {
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        for extra in [1u32, 2, 4] {
            let out = run_decentralized_with(
                &inst,
                &config,
                DropPolicy::reliable(),
                DelayModel::Fixed { extra },
                10_000,
            )
            .unwrap();
            out.allocation.validate(&inst).unwrap();
            // Everything still gets served; latency only slows convergence.
            assert_eq!(out.allocation.edge_served(), 2, "extra = {extra}");
        }
    }

    #[test]
    fn random_delay_is_safe() {
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        for seed in 0..10u64 {
            let out = run_decentralized_with(
                &inst,
                &config,
                DropPolicy::reliable(),
                DelayModel::Random { max_extra: 3, seed },
                10_000,
            )
            .unwrap();
            out.allocation.validate(&inst).unwrap();
        }
    }

    #[test]
    fn delay_plus_loss_is_safe() {
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        for seed in 0..10u64 {
            let out = run_decentralized_with(
                &inst,
                &config,
                DropPolicy::new(0.2, seed),
                DelayModel::Random { max_extra: 2, seed },
                10_000,
            )
            .unwrap();
            out.allocation.validate(&inst).unwrap();
        }
    }

    #[test]
    fn crashed_bs_triggers_failover() {
        // Both UEs can reach bs0; crash it before it ever answers. UE0
        // (service 0) fails over to bs1; UE1 (service 1, which bs1 does
        // not host) ends at the cloud. The run must terminate.
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        let out = run_protocol(
            &inst,
            &config,
            ProtocolOptions {
                crashed_bss: vec![(BsId::new(0), 0)],
                ..ProtocolOptions::default()
            },
        )
        .unwrap();
        out.allocation.validate(&inst).unwrap();
        // Nobody is served by the dead BS.
        assert!(out
            .allocation
            .edge_pairs()
            .all(|(_, bs)| bs != BsId::new(0)));
        // UE0 found bs1.
        assert_eq!(out.allocation.bs_of(UeId::new(0)), Some(BsId::new(1)));
        assert_eq!(out.allocation.bs_of(UeId::new(1)), None);
    }

    #[test]
    fn late_crash_strands_only_in_flight_work() {
        // Crash after the protocol has already quiesced-equivalent work:
        // round 100 is far beyond convergence, so the outcome matches the
        // crash-free run.
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        let healthy = run_decentralized(&inst, &config, DropPolicy::reliable(), 1000).unwrap();
        let out = run_protocol(
            &inst,
            &config,
            ProtocolOptions {
                crashed_bss: vec![(BsId::new(0), 100)],
                ..ProtocolOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.allocation, healthy.allocation);
    }

    #[test]
    fn crash_with_loss_and_delay_is_safe() {
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        for seed in 0..5u64 {
            let out = run_protocol(
                &inst,
                &config,
                ProtocolOptions {
                    drop_policy: DropPolicy::new(0.15, seed),
                    delay: DelayModel::Random { max_extra: 2, seed },
                    crashed_bss: vec![(BsId::new(0), 3)],
                    ..ProtocolOptions::default()
                },
            )
            .unwrap();
            out.allocation.validate(&inst).unwrap();
        }
    }

    #[test]
    fn combined_faults_quiesce_safely_under_a_wide_grace() {
        // Loss, delay and a crash in one run, with a quiescence grace wide
        // enough that a retry delayed by the full random spread still
        // counts as activity. Safety: the allocation validates, no BS is
        // over-committed, and conflicting accepts stay bounded by the UE
        // count (a UE can be double-booked at most once per extra BS).
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        for seed in 0..10u64 {
            let out = run_protocol(
                &inst,
                &config,
                ProtocolOptions {
                    drop_policy: DropPolicy::new(0.25, seed),
                    delay: DelayModel::Random { max_extra: 4, seed },
                    crashed_bss: vec![(BsId::new(1), 4)],
                    max_rounds: 100_000,
                    // Retry timeout (2 silent rounds) + max delay (4) + 1:
                    // nothing alive can be mistaken for quiescence.
                    quiescence_grace: 7,
                },
            )
            .expect("combined faults must still quiesce");
            out.allocation.validate(&inst).unwrap();
            // Explicit no-over-commitment check, independent of validate():
            // per-BS RRB and per-service CRU sums stay within budget.
            for (i, bs) in inst.bss().iter().enumerate() {
                let bs_id = BsId::new(i as u32);
                let mut rrbs = RrbCount::new(0);
                let mut crus = vec![Cru::ZERO; bs.cru_budget.len()];
                for (ue, assigned) in out.allocation.edge_pairs() {
                    if assigned == bs_id {
                        let spec = &inst.ues()[ue.as_usize()];
                        let link = inst.link(ue, bs_id).expect("assigned pairs are candidates");
                        rrbs += link.n_rrbs;
                        crus[spec.service.as_usize()] += spec.cru_demand;
                    }
                }
                assert!(rrbs <= bs.rrb_budget, "bs{i} RRBs over-committed");
                for (svc, used) in crus.iter().enumerate() {
                    assert!(
                        *used <= bs.cru_budget[svc],
                        "bs{i} service {svc} CRUs over-committed"
                    );
                }
            }
            assert!(
                out.conflicting_accepts <= inst.n_ues() as u64,
                "conflicts {} exceed UE count",
                out.conflicting_accepts
            );
        }
    }

    #[test]
    fn lossy_run_usually_still_serves_ues() {
        let inst = two_sp_instance();
        let config = DmraConfig::paper_defaults();
        let mut served = 0usize;
        for seed in 0..20 {
            let out =
                run_decentralized(&inst, &config, DropPolicy::new(0.2, seed), 10_000).unwrap();
            served += out.allocation.edge_served();
        }
        // 2 UEs × 20 seeds = 40 opportunities; the retry logic should
        // recover the vast majority of losses.
        assert!(served >= 30, "served only {served}/40");
    }
}
