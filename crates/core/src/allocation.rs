//! The allocation output `a_{u,i}` and its constraint checker.

use crate::instance::ProblemInstance;
use dmra_types::{BsId, Cru, Error, Result, RrbCount, UeId};
use serde::{Deserialize, Serialize};

/// A complete assignment of UEs to BSs (or to the remote cloud).
///
/// `assigned[u] = Some(i)` encodes `a_{u,i} = 1`; `None` means the task was
/// forwarded to the remote cloud. Constraint (15) — at most one BS per UE —
/// is structural: the representation cannot express anything else.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    assigned: Vec<Option<BsId>>,
}

impl Allocation {
    /// An allocation with every UE forwarded to the cloud.
    #[must_use]
    pub fn all_cloud(n_ues: usize) -> Self {
        Self {
            assigned: vec![None; n_ues],
        }
    }

    /// Builds an allocation from an explicit per-UE assignment vector.
    #[must_use]
    pub fn from_assignments(assigned: Vec<Option<BsId>>) -> Self {
        Self { assigned }
    }

    /// Number of UEs this allocation covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assigned.len()
    }

    /// Returns `true` if the allocation covers no UEs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assigned.is_empty()
    }

    /// The BS serving `ue`, or `None` if the task went to the cloud.
    ///
    /// # Panics
    ///
    /// Panics if `ue` is out of range for this allocation.
    #[must_use]
    pub fn bs_of(&self, ue: UeId) -> Option<BsId> {
        self.assigned[ue.as_usize()]
    }

    /// Assigns `ue` to `bs` (used by allocator implementations).
    ///
    /// # Panics
    ///
    /// Panics if `ue` is out of range.
    pub fn assign(&mut self, ue: UeId, bs: BsId) {
        self.assigned[ue.as_usize()] = Some(bs);
    }

    /// Iterates over `(ue, bs)` pairs for edge-served UEs.
    pub fn edge_pairs(&self) -> impl Iterator<Item = (UeId, BsId)> + '_ {
        self.assigned
            .iter()
            .enumerate()
            .filter_map(|(u, bs)| bs.map(|b| (UeId::new(u as u32), b)))
    }

    /// Iterates over cloud-forwarded UEs.
    pub fn cloud_ues(&self) -> impl Iterator<Item = UeId> + '_ {
        self.assigned
            .iter()
            .enumerate()
            .filter(|(_, bs)| bs.is_none())
            .map(|(u, _)| UeId::new(u as u32))
    }

    /// Number of UEs served at the edge.
    #[must_use]
    pub fn edge_served(&self) -> usize {
        self.assigned.iter().filter(|b| b.is_some()).count()
    }

    /// A 64-bit digest of the assignment vector, folding in each UE's
    /// slot (BS index + 1, or 0 for cloud) with one multiply–xorshift
    /// mix per slot (splitmix64-style, word-at-a-time — the recorder
    /// computes this every epoch, so the byte-wise FNV loop it replaced
    /// was the dominant recording cost). Equal allocations hash equal
    /// on every platform, so the flight recorder can expose one
    /// deterministic "allocator outcome" scalar per epoch that the
    /// engine-equality contract makes byte-comparable across the
    /// incremental, event and sharded engines.
    #[must_use]
    pub fn digest(&self) -> u64 {
        const SEED: u64 = 0xcbf2_9ce4_8422_2325;
        const MIX: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut h = SEED ^ (self.assigned.len() as u64).wrapping_mul(MIX);
        for slot in &self.assigned {
            let v: u64 = match slot {
                Some(bs) => u64::from(bs.index()) + 1,
                None => 0,
            };
            h = (h ^ v).wrapping_mul(MIX);
            h ^= h >> 29;
        }
        h
    }

    /// Checks every constraint of the TPM problem (Definition 1) against an
    /// instance:
    ///
    /// * (12) per-service CRU budgets are respected at every BS,
    /// * (13) every assignment uses a candidate link (service hosted and in
    ///   coverage),
    /// * (14) per-BS RRB budgets are respected,
    /// * (15) structural (one BS per UE),
    /// * (16) was validated at instance construction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] describing the first violated
    /// constraint, or [`Error::UnknownUe`] on a length mismatch.
    pub fn validate(&self, instance: &ProblemInstance) -> Result<()> {
        if self.assigned.len() != instance.n_ues() {
            return Err(Error::UnknownUe(UeId::new(self.assigned.len() as u32)));
        }
        let n_bss = instance.n_bss();
        let n_svcs = instance.catalog().len() as usize;
        let mut cru_used = vec![vec![Cru::ZERO; n_svcs]; n_bss];
        let mut rrb_used = vec![RrbCount::ZERO; n_bss];
        for (ue_id, bs_id) in self.edge_pairs() {
            if bs_id.as_usize() >= n_bss {
                return Err(Error::UnknownBs(bs_id));
            }
            let ue = &instance.ues()[ue_id.as_usize()];
            let Some(link) = instance.link(ue_id, bs_id) else {
                return Err(Error::InvalidConfig(format!(
                    "constraint (13): {ue_id} assigned to {bs_id}, which is not a candidate"
                )));
            };
            cru_used[bs_id.as_usize()][ue.service.as_usize()] += ue.cru_demand;
            rrb_used[bs_id.as_usize()] += link.n_rrbs;
        }
        for bs in instance.bss() {
            let i = bs.id.as_usize();
            for svc in instance.catalog().iter() {
                let used = cru_used[i][svc.as_usize()];
                let budget = bs.cru_budget_for(svc);
                if used > budget {
                    return Err(Error::InvalidConfig(format!(
                        "constraint (12): {} uses {used} of {svc} but budget is {budget}",
                        bs.id
                    )));
                }
            }
            if rrb_used[i] > bs.rrb_budget {
                return Err(Error::InvalidConfig(format!(
                    "constraint (14): {} uses {} but budget is {}",
                    bs.id, rrb_used[i], bs.rrb_budget
                )));
            }
        }
        Ok(())
    }

    /// Summary statistics of this allocation under an instance.
    ///
    /// # Panics
    ///
    /// Panics if the allocation uses non-candidate links; validate first.
    #[must_use]
    pub fn stats(&self, instance: &ProblemInstance) -> AllocationStats {
        let mut same_sp = 0usize;
        let mut rrbs_used = RrbCount::ZERO;
        for (ue_id, bs_id) in self.edge_pairs() {
            let link = instance
                .link(ue_id, bs_id)
                .expect("allocation must use candidate links");
            if link.same_sp {
                same_sp += 1;
            }
            rrbs_used += link.n_rrbs;
        }
        AllocationStats {
            n_ues: self.len(),
            edge_served: self.edge_served(),
            cloud_forwarded: self.len() - self.edge_served(),
            same_sp_served: same_sp,
            rrbs_used,
        }
    }
}

/// Headline numbers describing one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationStats {
    /// Total UEs in the batch.
    pub n_ues: usize,
    /// UEs served by a BS.
    pub edge_served: usize,
    /// UEs forwarded to the remote cloud.
    pub cloud_forwarded: usize,
    /// Edge-served UEs attached to a BS of their own SP.
    pub same_sp_served: usize,
    /// Total RRBs consumed across BSs.
    pub rrbs_used: RrbCount,
}

impl AllocationStats {
    /// Fraction of UEs served at the edge.
    #[must_use]
    pub fn edge_fraction(&self) -> f64 {
        if self.n_ues == 0 {
            return 0.0;
        }
        self.edge_served as f64 / self.n_ues as f64
    }

    /// Fraction of edge-served UEs attached to their own SP's BSs.
    #[must_use]
    pub fn same_sp_fraction(&self) -> f64 {
        if self.edge_served == 0 {
            return 0.0;
        }
        self.same_sp_served as f64 / self.edge_served as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::two_sp_instance;

    #[test]
    fn all_cloud_is_valid_and_empty() {
        let inst = two_sp_instance();
        let alloc = Allocation::all_cloud(inst.n_ues());
        alloc.validate(&inst).unwrap();
        assert_eq!(alloc.edge_served(), 0);
        assert_eq!(alloc.cloud_ues().count(), 2);
        assert_eq!(inst.total_profit(&alloc).get(), 0.0);
    }

    #[test]
    fn assigning_candidate_links_validates() {
        let inst = two_sp_instance();
        let mut alloc = Allocation::all_cloud(inst.n_ues());
        alloc.assign(UeId::new(0), BsId::new(0));
        alloc.assign(UeId::new(1), BsId::new(0));
        alloc.validate(&inst).unwrap();
        assert_eq!(alloc.edge_served(), 2);
        let stats = alloc.stats(&inst);
        assert_eq!(stats.same_sp_served, 1); // UE0 is sp0 on a sp0 BS.
        assert!((stats.same_sp_fraction() - 0.5).abs() < 1e-12);
        assert!(stats.rrbs_used.get() > 0);
    }

    #[test]
    fn non_candidate_assignment_is_rejected() {
        let inst = two_sp_instance();
        let mut alloc = Allocation::all_cloud(inst.n_ues());
        // UE 1 requests service 1, which bs1 does not host.
        alloc.assign(UeId::new(1), BsId::new(1));
        let err = alloc.validate(&inst).unwrap_err();
        assert!(err.to_string().contains("constraint (13)"), "{err}");
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let inst = two_sp_instance();
        let alloc = Allocation::all_cloud(5);
        assert!(alloc.validate(&inst).is_err());
    }

    #[test]
    fn profit_prefers_same_sp_assignment() {
        let inst = two_sp_instance();
        let mut own = Allocation::all_cloud(inst.n_ues());
        own.assign(UeId::new(0), BsId::new(0)); // same SP, nearer
        let mut cross = Allocation::all_cloud(inst.n_ues());
        cross.assign(UeId::new(0), BsId::new(1)); // other SP, farther
        assert!(inst.total_profit(&own) > inst.total_profit(&cross));
    }

    #[test]
    fn forwarded_load_counts_cloud_demand() {
        let inst = two_sp_instance();
        let alloc = Allocation::all_cloud(inst.n_ues());
        // 3 + 2 Mbit/s.
        assert!((inst.forwarded_load(&alloc).to_mbps() - 5.0).abs() < 1e-9);
        let mut partial = Allocation::all_cloud(inst.n_ues());
        partial.assign(UeId::new(0), BsId::new(0));
        assert!((inst.forwarded_load(&partial).to_mbps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn digest_distinguishes_assignments_and_cloud() {
        let mut a = Allocation::all_cloud(3);
        let b = Allocation::all_cloud(3);
        assert_eq!(a.digest(), b.digest());
        a.assign(UeId::new(1), BsId::new(0));
        assert_ne!(a.digest(), b.digest(), "edge vs cloud must differ");
        let mut c = Allocation::all_cloud(3);
        c.assign(UeId::new(1), BsId::new(1));
        assert_ne!(a.digest(), c.digest(), "different BS must differ");
        let mut a2 = Allocation::all_cloud(3);
        a2.assign(UeId::new(1), BsId::new(0));
        assert_eq!(a.digest(), a2.digest(), "equal allocations hash equal");
        assert_ne!(
            Allocation::all_cloud(2).digest(),
            Allocation::all_cloud(3).digest(),
            "length is part of the digest"
        );
    }

    #[test]
    fn edge_pairs_roundtrip() {
        let inst = two_sp_instance();
        let mut alloc = Allocation::all_cloud(inst.n_ues());
        alloc.assign(UeId::new(1), BsId::new(0));
        let pairs: Vec<_> = alloc.edge_pairs().collect();
        assert_eq!(pairs, vec![(UeId::new(1), BsId::new(0))]);
    }

    #[test]
    fn remaining_resources_reflect_assignment() {
        let inst = two_sp_instance();
        let mut alloc = Allocation::all_cloud(inst.n_ues());
        alloc.assign(UeId::new(0), BsId::new(0));
        let rem_cru = inst.remaining_cru(&alloc);
        assert_eq!(rem_cru[0][0], Cru::new(96)); // 100 − 4
        assert_eq!(rem_cru[1][0], Cru::new(100));
        let rem_rrb = inst.remaining_rrbs(&alloc);
        let n = inst.link(UeId::new(0), BsId::new(0)).unwrap().n_rrbs;
        assert_eq!(rem_rrb[0], RrbCount::new(55) - n);
    }
}
