//! The heart of the reproduction: problem instances, allocations, the
//! [`Allocator`] trait and the DMRA matching algorithm itself.
//!
//! # Structure
//!
//! * [`ProblemInstance`] — an immutable, validated snapshot of one batch of
//!   offloading requests: SPs, BSs, UEs and, crucially, the precomputed
//!   *candidate links* (every UE–BS pair that is in coverage and hosts the
//!   requested service, with its distance, RRB demand `n_{u,i}` and CRU
//!   price `p_{i,u}`). Precomputing links separates radio physics from
//!   matching logic and makes every allocator comparable on identical
//!   inputs.
//! * [`Allocation`] — the output `a_{u,i}`: each UE is either assigned to
//!   one BS or forwarded to the remote cloud. [`Allocation::validate`]
//!   checks every constraint of the TPM problem (Definition 1).
//! * [`Allocator`] — the object-safe strategy interface implemented by
//!   [`Dmra`] here and by the baselines in `dmra-baselines`.
//! * [`Dmra`] — the paper's Algorithm 1 in a fast centralized-state
//!   execution; [`agents`] runs the *same* protocol as genuinely
//!   message-passing UE/BS agents on `dmra-proto` and is tested to produce
//!   the identical allocation under reliable delivery.
//!
//! # Examples
//!
//! Build a tiny two-SP instance by hand and run DMRA on it:
//!
//! ```
//! use dmra_core::{Allocator, CoverageModel, Dmra, ProblemInstance};
//! use dmra_econ::PricingConfig;
//! use dmra_radio::RadioConfig;
//! use dmra_types::*;
//!
//! let sps = vec![
//!     SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0)),
//!     SpSpec::new(SpId::new(1), Money::new(10.0), Money::new(1.0)),
//! ];
//! let catalog = ServiceCatalog::new(2);
//! let bss = vec![BsSpec::new(
//!     BsId::new(0),
//!     SpId::new(0),
//!     Point::new(0.0, 0.0),
//!     vec![Cru::new(100), Cru::new(100)],
//!     Hertz::from_mhz(10.0),
//!     RrbCount::new(55),
//! )];
//! let ues = vec![UeSpec::new(
//!     UeId::new(0),
//!     SpId::new(1),
//!     Point::new(50.0, 0.0),
//!     ServiceId::new(1),
//!     Cru::new(4),
//!     BitsPerSec::from_mbps(3.0),
//!     Dbm::new(10.0),
//! )];
//! let instance = ProblemInstance::build(
//!     sps,
//!     bss,
//!     ues,
//!     catalog,
//!     PricingConfig::paper_defaults(),
//!     RadioConfig::paper_defaults(),
//!     CoverageModel::default(),
//! )?;
//! let allocation = Dmra::default().allocate(&instance);
//! assert_eq!(allocation.bs_of(UeId::new(0)), Some(BsId::new(0)));
//! # Ok::<(), dmra_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
mod allocation;
mod allocator;
pub mod analysis;
pub mod components;
mod dmra;
mod instance;
mod online;

pub use allocation::{Allocation, AllocationStats};
pub use allocator::{Allocator, AllocatorSession};
pub use components::{
    decompose, set_solve_mode_default, solve_mode_default, Component, Decomposer, Decomposition,
    SolveMode,
};
pub use dmra::{Dmra, DmraConfig, DmraOutcome, DmraWorkspace};
pub use dmra_par::Threads;
pub use dmra_radio::{batch_mode_default, set_batch_mode_default, BatchMode};
pub use instance::{CandidateLink, CandidateScan, CoverageModel, DeltaInfo, ProblemInstance};
pub use online::DeploymentContext;
