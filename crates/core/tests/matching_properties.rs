//! Property-based tests of the matching core on randomized, hand-built
//! instances — independent of `dmra-sim`'s scenario generator, so bugs in
//! the generator cannot mask bugs in the matcher (and vice versa).

use dmra_core::{Allocator, CoverageModel, Dmra, DmraConfig, ProblemInstance};
use dmra_econ::PricingConfig;
use dmra_radio::RadioConfig;
use dmra_types::*;
use proptest::prelude::*;

/// Strategy: a small instance with arbitrary topology and demands.
fn arb_instance() -> impl Strategy<Value = ProblemInstance> {
    let bs = (
        0.0f64..1000.0,
        0.0f64..1000.0,
        1u32..3,
        50u32..150,
        5u32..55,
    );
    let ue = (
        0.0f64..1000.0,
        0.0f64..1000.0,
        0u32..3, // sp
        0u32..2, // service
        1u32..8, // cru demand
        0.5f64..8.0,
    );
    (
        proptest::collection::vec(bs, 1..6),
        proptest::collection::vec(ue, 0..25),
    )
        .prop_map(|(bss_raw, ues_raw)| {
            let sps: Vec<SpSpec> = (0..3)
                .map(|k| SpSpec::new(SpId::new(k), Money::new(9.0), Money::new(1.0)))
                .collect();
            let catalog = ServiceCatalog::new(2);
            let bss: Vec<BsSpec> = bss_raw
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, sp, cru, rrb))| {
                    BsSpec::new(
                        BsId::new(i as u32),
                        SpId::new(sp % 3),
                        Point::new(x, y),
                        vec![Cru::new(cru), Cru::new(cru / 2)],
                        Hertz::from_mhz(10.0),
                        RrbCount::new(rrb),
                    )
                })
                .collect();
            let ues: Vec<UeSpec> = ues_raw
                .into_iter()
                .enumerate()
                .map(|(u, (x, y, sp, svc, cru, mbps))| {
                    UeSpec::new(
                        UeId::new(u as u32),
                        SpId::new(sp),
                        Point::new(x, y),
                        ServiceId::new(svc),
                        Cru::new(cru),
                        BitsPerSec::from_mbps(mbps),
                        Dbm::new(10.0),
                    )
                })
                .collect();
            ProblemInstance::build(
                sps,
                bss,
                ues,
                catalog,
                PricingConfig::paper_defaults(),
                RadioConfig::paper_defaults(),
                CoverageModel::FixedRadius(Meters::new(400.0)),
            )
            .expect("constants satisfy constraint (16) within 400 m")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every DMRA run satisfies all TPM constraints and its diagnostics
    /// are internally consistent.
    #[test]
    fn prop_dmra_output_is_always_valid(inst in arb_instance()) {
        let out = Dmra::default().solve(&inst).unwrap();
        prop_assert!(out.allocation.validate(&inst).is_ok());
        prop_assert!(out.iterations <= inst.n_ues() + 1);
        let accepted: usize = out.acceptances.iter().sum();
        prop_assert_eq!(accepted, out.allocation.edge_served());
        prop_assert!(out.proposals >= accepted as u64);
    }

    /// Served + cloud partitions the UE population exactly.
    #[test]
    fn prop_allocation_partitions_population(inst in arb_instance()) {
        let alloc = Dmra::default().allocate(&inst);
        let served = alloc.edge_pairs().count();
        let cloud = alloc.cloud_ues().count();
        prop_assert_eq!(served + cloud, inst.n_ues());
        prop_assert_eq!(served, alloc.edge_served());
    }

    /// Non-wastefulness on arbitrary topologies: no cloud UE has a
    /// candidate BS with enough leftover resources.
    #[test]
    fn prop_no_stranded_ues(inst in arb_instance()) {
        let alloc = Dmra::default().allocate(&inst);
        let rem_cru = inst.remaining_cru(&alloc);
        let rem_rrb = inst.remaining_rrbs(&alloc);
        for ue in alloc.cloud_ues() {
            let spec = &inst.ues()[ue.as_usize()];
            for link in inst.candidates(ue) {
                let i = link.bs.as_usize();
                let fits = rem_cru[i][spec.service.as_usize()] >= spec.cru_demand
                    && rem_rrb[i] >= link.n_rrbs;
                prop_assert!(!fits, "{ue} stranded while {} fits it", link.bs);
            }
        }
    }

    /// Monotonicity: adding radio capacity never reduces the number of
    /// served UEs (build the same instance with doubled RRB budgets).
    /// Deferred-acceptance heuristics carry no formal monotonicity
    /// guarantee, but DMRA's prune-on-incapacity structure makes capacity
    /// strictly helpful in practice; a single-UE tolerance keeps the test
    /// robust against a yet-unseen pathological topology.
    #[test]
    fn prop_more_radio_never_serves_fewer(inst in arb_instance()) {
        let served_before = Dmra::default().allocate(&inst).edge_served();
        let doubled_bss: Vec<BsSpec> = inst
            .bss()
            .iter()
            .map(|b| {
                let mut spec = b.clone();
                spec.rrb_budget = RrbCount::new(b.rrb_budget.get() * 2);
                spec
            })
            .collect();
        let bigger = ProblemInstance::build(
            inst.sps().to_vec(),
            doubled_bss,
            inst.ues().to_vec(),
            inst.catalog(),
            *inst.pricing(),
            *inst.radio(),
            inst.coverage(),
        )
        .unwrap();
        let served_after = Dmra::default().allocate(&bigger).edge_served();
        prop_assert!(
            served_after + 1 >= served_before,
            "doubling RRBs dropped served from {served_before} to {served_after}"
        );
    }

    /// The ρ = 0 envy-freeness theorem holds on arbitrary topologies, not
    /// just the paper scenario.
    #[test]
    fn prop_rho_zero_envy_free_everywhere(inst in arb_instance()) {
        let dmra = Dmra::new(DmraConfig::paper_defaults().with_rho(0.0));
        let alloc = dmra.allocate(&inst);
        let pairs = dmra_core::analysis::price_envy_pairs(&inst, &alloc);
        prop_assert!(pairs.is_empty(), "{} envy pairs", pairs.len());
    }

    /// An empty UE population yields the empty allocation and zero profit.
    #[test]
    fn prop_empty_population_is_trivial(inst in arb_instance()) {
        let empty = ProblemInstance::build(
            inst.sps().to_vec(),
            inst.bss().to_vec(),
            Vec::new(),
            inst.catalog(),
            *inst.pricing(),
            *inst.radio(),
            inst.coverage(),
        )
        .unwrap();
        let out = Dmra::default().solve(&empty).unwrap();
        prop_assert_eq!(out.allocation.len(), 0);
        prop_assert_eq!(out.iterations, 1);
        prop_assert_eq!(empty.total_profit(&out.allocation).get(), 0.0);
    }
}
