//! A minimal leveled logging facade replacing ad-hoc `eprintln!`
//! progress lines in the CLI and bench binaries.
//!
//! Messages at or below the current [`Level`] go to stderr (keeping
//! stdout clean for machine-readable command output). Tests can
//! install a capture sink with [`capture_start`] / [`capture_take`].

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 0,
    /// Suspicious conditions that do not stop the run.
    Warn = 1,
    /// Progress reporting (the default).
    Info = 2,
    /// Verbose diagnostics (`-v`).
    Debug = 3,
}

impl Level {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }

    /// Lower-case name (`"error"`, `"warn"`, `"info"`, `"debug"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Error returned when parsing an unknown level name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(pub String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown log level '{}' (expected error|warn|info|debug)",
            self.0
        )
    }
}

impl std::str::FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" | "verbose" => Ok(Level::Debug),
            other => Err(ParseLevelError(other.to_owned())),
        }
    }
}

/// Current max level; messages above it are discarded. Default Info.
static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Optional capture sink for tests.
static CAPTURE: Mutex<Option<Vec<String>>> = Mutex::new(None);

/// Sets the maximum level that will be emitted.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum emitted level.
#[must_use]
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Starts capturing log lines into memory instead of stderr (tests).
pub fn capture_start() {
    *CAPTURE.lock().expect("obs log capture poisoned") = Some(Vec::new());
}

/// Stops capturing and returns the captured lines.
#[must_use]
pub fn capture_take() -> Vec<String> {
    CAPTURE
        .lock()
        .expect("obs log capture poisoned")
        .take()
        .unwrap_or_default()
}

/// Emits a message at `msg_level` if it passes the current filter.
/// Prefer the [`obs_error!`] / [`obs_warn!`] / [`obs_info!`] /
/// [`obs_debug!`] macros.
pub fn log_at(msg_level: Level, args: fmt::Arguments<'_>) {
    if msg_level > level() {
        return;
    }
    let line = if msg_level <= Level::Warn {
        format!("[{}] {args}", msg_level.name())
    } else {
        format!("{args}")
    };
    let mut capture = CAPTURE.lock().expect("obs log capture poisoned");
    if let Some(lines) = capture.as_mut() {
        lines.push(line);
    } else {
        drop(capture);
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! obs_error {
    ($($t:tt)*) => { $crate::log_at($crate::Level::Error, format_args!($($t)*)) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! obs_warn {
    ($($t:tt)*) => { $crate::log_at($crate::Level::Warn, format_args!($($t)*)) };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! obs_info {
    ($($t:tt)*) => { $crate::log_at($crate::Level::Info, format_args!($($t)*)) };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! obs_debug {
    ($($t:tt)*) => { $crate::log_at($crate::Level::Debug, format_args!($($t)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn level_parse_and_name_round_trip() {
        for lvl in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::from_str(lvl.name()).unwrap(), lvl);
        }
        assert_eq!(Level::from_str("WARNING").unwrap(), Level::Warn);
        assert!(Level::from_str("loud").is_err());
    }

    #[test]
    fn filtering_and_capture() {
        // Single test covering the capture sink end to end: capture is
        // global state, so exercising it from one test avoids
        // interleaving with parallel test threads.
        capture_start();
        set_level(Level::Warn);
        obs_error!("e{}", 1);
        obs_warn!("w");
        obs_info!("dropped");
        obs_debug!("dropped");
        set_level(Level::Debug);
        obs_debug!("kept");
        let lines = capture_take();
        set_level(Level::Info);
        assert_eq!(lines, vec!["[error] e1", "[warn] w", "kept"]);
    }
}
