//! Lazily-bound handles to metrics in the [global](crate::global)
//! registry.
//!
//! A hot instrumentation site (once per solve/epoch) should not pay a
//! mutex + `BTreeMap` lookup per recording. These types resolve the
//! named metric **once** on first use and cache the `Arc` in a
//! `OnceLock`, so steady-state recording is a single atomic op. Safe
//! across [`Registry::reset`](crate::Registry::reset), which zeroes
//! metrics in place and keeps existing handles live.
//!
//! ```
//! static SOLVES: dmra_obs::LazyCounter = dmra_obs::LazyCounter::new("my.solves");
//! SOLVES.get().inc();
//! ```

use crate::metrics::{Counter, Gauge, Histogram};
use crate::registry::global;
use std::sync::{Arc, OnceLock};

/// A named counter in the global registry, resolved on first use.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Creates an unresolved handle (const, usable in a `static`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying counter, registering it on the first call.
    #[must_use]
    pub fn get(&self) -> &Counter {
        self.cell.get_or_init(|| global().counter(self.name))
    }
}

/// A named gauge in the global registry, resolved on first use.
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Creates an unresolved handle (const, usable in a `static`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying gauge, registering it on the first call.
    #[must_use]
    pub fn get(&self) -> &Gauge {
        self.cell.get_or_init(|| global().gauge(self.name))
    }
}

/// A named histogram in the global registry, resolved on first use.
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Creates an unresolved handle (const, usable in a `static`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying histogram, registering it on the first call.
    #[must_use]
    pub fn get(&self) -> &Histogram {
        self.cell.get_or_init(|| global().histogram(self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_counter_registers_in_the_global_registry() {
        static C: LazyCounter = LazyCounter::new("handles.test.counter");
        C.get().add(3);
        assert_eq!(
            global().counter("handles.test.counter").get(),
            C.get().get()
        );
    }

    #[test]
    fn lazy_handle_survives_reset() {
        static H: LazyHistogram = LazyHistogram::new("handles.test.hist");
        H.get().record(5);
        global().reset();
        assert_eq!(H.get().count(), 0);
        H.get().record(7);
        assert_eq!(global().histogram("handles.test.hist").count(), 1);
    }
}
