//! Bounded convergence-trace event log.
//!
//! Instrumentation appends one [`TraceEvent`] per solve / epoch /
//! sweep cell; the CLI drains the log into `trace.json`. The log is
//! bounded so a runaway sweep cannot exhaust memory — overflow is
//! counted, never silently dropped.

use crate::registry::json_escape;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Default capacity of the global trace log (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// One traced occurrence: a name, a sequence index within that name,
/// and a flat list of numeric fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event kind, e.g. `"sim.epoch"` or `"dmra.solve"`.
    pub name: &'static str,
    /// Sequence number within the kind (epoch index, solve ordinal,
    /// sweep cell index, ...).
    pub index: u64,
    /// Named numeric payload fields.
    pub fields: Vec<(&'static str, f64)>,
}

impl TraceEvent {
    /// Renders the event as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| {
                let val = if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_owned()
                };
                format!("\"{}\": {val}", json_escape(k))
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"name\": \"{}\", \"index\": {}, \"fields\": {{{fields}}}}}",
            json_escape(self.name),
            self.index
        )
    }
}

/// A bounded, thread-safe, append-only event log.
#[derive(Debug)]
pub struct TraceLog {
    events: Mutex<Vec<TraceEvent>>,
    capacity: usize,
    dropped: std::sync::atomic::AtomicU64,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// Creates a log holding at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            capacity,
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Appends an event, or counts it as dropped when the log is full.
    pub fn record(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("obs trace log poisoned");
        if events.len() < self.capacity {
            events.push(event);
        } else {
            drop(events);
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("obs trace log poisoned").len()
    }

    /// `true` when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events rejected because the log was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Removes and returns every retained event (drop counter is
    /// reset too).
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.dropped.store(0, std::sync::atomic::Ordering::Relaxed);
        std::mem::take(&mut *self.events.lock().expect("obs trace log poisoned"))
    }

    /// Clears the log without returning the events.
    pub fn clear(&self) {
        let _ = self.drain();
    }

    /// Renders the retained events as a JSON array (one event per
    /// line for scannability).
    #[must_use]
    pub fn to_json(&self) -> String {
        let events = self.events.lock().expect("obs trace log poisoned");
        let body = events
            .iter()
            .map(|e| format!("    {}", e.to_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        if body.is_empty() {
            "[]".to_owned()
        } else {
            format!("[\n{body}\n  ]")
        }
    }
}

/// The process-wide trace log used by workspace instrumentation.
#[must_use]
pub fn global_trace() -> &'static TraceLog {
    static GLOBAL: OnceLock<TraceLog> = OnceLock::new();
    GLOBAL.get_or_init(TraceLog::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(i: u64) -> TraceEvent {
        TraceEvent {
            name: "test.event",
            index: i,
            fields: vec![("x", 1.5), ("y", 2.0)],
        }
    }

    #[test]
    fn record_and_drain_round_trip() {
        let log = TraceLog::with_capacity(8);
        log.record(event(0));
        log.record(event(1));
        assert_eq!(log.len(), 2);
        let events = log.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].index, 1);
        assert!(log.is_empty());
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let log = TraceLog::with_capacity(1);
        log.record(event(0));
        log.record(event(1));
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn event_json_shape() {
        let json = event(3).to_json();
        assert_eq!(
            json,
            "{\"name\": \"test.event\", \"index\": 3, \"fields\": {\"x\": 1.5, \"y\": 2}}"
        );
    }

    #[test]
    fn log_json_is_an_array() {
        let log = TraceLog::with_capacity(8);
        assert_eq!(log.to_json(), "[]");
        log.record(event(0));
        let json = log.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"index\": 0"));
    }
}
