//! Atomic metric primitives: counters, gauges and fixed-bucket
//! histograms. All operations are lock-free and safe to call from any
//! thread; cross-registry aggregation goes through `merge` methods so
//! per-worker registries never contend on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// Folds another counter's value into this one.
    pub fn merge(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A last-value / high-water-mark gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the gauge with `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the gauge to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// Folds another gauge into this one, keeping the maximum.
    pub fn merge(&self, other: &Gauge) {
        self.set_max(other.get());
    }
}

/// Number of histogram buckets. Bucket `i` counts observations `v`
/// with `2^(i-1) ≤ v < 2^i` (bucket 0 holds `v == 0`), so the range
/// spans `[0, 2^46)` — about 20 hours when observations are
/// nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A fixed power-of-two-bucket histogram for latency-style values.
///
/// Recording is a handful of relaxed atomic RMWs: one bucket
/// increment plus count/sum/min/max updates. Bucket boundaries are
/// powers of two, which is plenty of resolution for wall-clock spans
/// and makes merging across worker registries a plain element-wise
/// add.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the bucket that holds `v`.
    #[inline]
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Resets the histogram to empty.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Folds another histogram into this one (element-wise bucket add,
    /// min/max fold).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Summarizes the histogram (count, sum, min/mean/max, bucket
    /// percentiles). Percentiles are bucket upper bounds, i.e. exact to
    /// within a factor of two — enough to rank phases and spot
    /// regressions without per-observation storage.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        HistogramSummary {
            count,
            sum,
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// observation (0 when empty).
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i: 2^i - 1 (bucket 0 is {0}).
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max.load(Ordering::Relaxed)
    }
}

/// A point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median bucket upper bound.
    pub p50: u64,
    /// 90th-percentile bucket upper bound.
    pub p90: u64,
    /// 99th-percentile bucket upper bound.
    pub p99: u64,
    /// Raw per-bucket observation counts. Carrying these in the
    /// summary lets downstream code subtract two snapshots
    /// ([`crate::Snapshot::delta`]) and recompute windowed percentiles,
    /// and lets the Prometheus exposition emit cumulative buckets.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSummary {
    /// Upper bound of the bucket holding the `q`-quantile observation
    /// according to this summary's bucket counts (0 when empty).
    /// Mirrors [`Histogram::percentile`] but works on an immutable
    /// summary — including one produced by bucket-wise subtraction.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max
    }

    /// Bucket-wise difference `self - prev`, summarizing only the
    /// observations recorded after `prev` was taken. Saturates to an
    /// empty summary if `prev` is not actually an earlier snapshot of
    /// the same histogram. `min` is unrecoverable from cumulative
    /// buckets, so the window's min is approximated by the lower bound
    /// of the window's lowest occupied bucket.
    #[must_use]
    pub fn delta(&self, prev: &HistogramSummary) -> HistogramSummary {
        let count = self.count.saturating_sub(prev.count);
        let sum = self.sum.saturating_sub(prev.sum);
        let buckets: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].saturating_sub(prev.buckets[i]));
        let lowest = buckets.iter().position(|&b| b > 0);
        let mut out = HistogramSummary {
            count,
            sum,
            min: match lowest {
                Some(0) | None => 0,
                Some(i) => 1u64 << (i - 1),
            },
            max: self.max,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: 0,
            p90: 0,
            p99: 0,
            buckets,
        };
        if count == 0 {
            out.max = 0;
            return out;
        }
        out.p50 = out.percentile(0.50);
        out.p90 = out.percentile(0.90);
        out.p99 = out.percentile(0.99);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_get_reset_merge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let d = Counter::new();
        d.add(7);
        c.merge(&d);
        assert_eq!(c.get(), 12);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_max_merges_as_high_water() {
        let g = Gauge::new();
        g.set(10);
        g.set_max(3);
        assert_eq!(g.get(), 10);
        g.set_max(42);
        assert_eq!(g.get(), 42);
        let h = Gauge::new();
        h.set(7);
        g.merge(&h);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_tracks_min_mean_max() {
        let h = Histogram::new();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert!((s.mean - 25.0).abs() < 1e-9);
        assert!(s.p50 >= 20 && s.p50 <= 31, "p50 = {}", s.p50);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p90: 0,
                p99: 0,
                buckets: [0; HISTOGRAM_BUCKETS],
            }
        );
    }

    #[test]
    fn summary_delta_isolates_the_window() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let before = h.summary();
        h.record(1000);
        h.record(2000);
        h.record(3000);
        let d = h.summary().delta(&before);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 6000);
        assert!(d.min >= 512 && d.min <= 1000, "window min = {}", d.min);
        assert!(d.p50 >= 1000, "window p50 = {}", d.p50);
        assert_eq!(d.percentile(0.99), d.p99);
        let empty = before.delta(&before);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
        assert_eq!(empty.p99, 0);
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(100);
        b.record(2);
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 107);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 100);
    }
}
