//! `dmra-obs` — zero-dependency telemetry for the DMRA workspace.
//!
//! The matcher, the incremental online engine and the parallel sweep
//! runner are all argued about in terms of *trajectories* — proposal
//! rounds, candidate prunes, per-epoch rebuild costs — yet the rest of
//! the workspace only reports final outcomes. This crate provides the
//! missing instrumentation layer with **no external dependencies**
//! (crates.io is unreachable in the build environment; everything here
//! is `std`-only):
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic scalars,
//! * [`Histogram`] — fixed power-of-two-bucket latency histogram,
//! * [`SpanTimer`] — RAII wall-clock span recorder,
//! * [`Registry`] — a named, thread-safe collection of the above that
//!   per-worker registries can [`Registry::merge`] into without
//!   contending on the hot path,
//! * [`TraceLog`] — a bounded, append-only event log for convergence
//!   traces (`trace.json`),
//! * a logging facade ([`Level`], [`obs_error!`], [`obs_warn!`],
//!   [`obs_info!`], [`obs_debug!`]) replacing ad-hoc `eprintln!` lines.
//!
//! # Cost model
//!
//! Telemetry is **off by default**. Every instrumentation site in the
//! workspace is guarded by [`enabled()`], which reads one relaxed
//! atomic when the `telemetry` cargo feature (default on) is present
//! and is a compile-time `false` when it is not — so a
//! `--no-default-features` build deletes the branches entirely.
//! Instrumented code records once per *solve/epoch/cell*, never inside
//! inner matcher loops; measured overhead when enabled is <2%
//! (see `BENCH_obs_overhead.json` and DESIGN.md §10).
//!
//! # Determinism
//!
//! Everything in this crate is observe-only: no instrumentation path
//! feeds back into allocation decisions, RNG draws or iteration order,
//! so the workspace's bit-identical equality tests hold with telemetry
//! enabled or disabled.

#![forbid(unsafe_code)]

mod expose;
mod handles;
mod log;
mod metrics;
mod observer;
mod recorder;
mod registry;
mod span;
mod timeseries;
mod trace;

pub use crate::expose::{
    register_scrape_sources, render_prometheus, sanitize_metric_name, scrape_snapshot,
    MetricsServer, ScrapeGuard,
};
pub use crate::handles::{LazyCounter, LazyGauge, LazyHistogram};
pub use crate::log::{
    capture_start, capture_take, level, log_at, set_level, Level, ParseLevelError,
};
pub use crate::metrics::{Counter, Gauge, Histogram, HistogramSummary, HISTOGRAM_BUCKETS};
pub use crate::observer::{
    det_projection, epoch_observer, set_epoch_observer, EpochObserver, EpochRecord, FanoutObserver,
    FieldValue,
};
pub use crate::recorder::{Recorder, SharedBuf};
pub use crate::registry::{global, Registry, Snapshot};
pub use crate::span::SpanTimer;
pub use crate::timeseries::{Sample, TimeSeries, TimeSeriesCollector};
pub use crate::trace::{global_trace, TraceEvent, TraceLog};

use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime master switch. Default off; flipped by [`set_enabled`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns `true` when telemetry should be recorded.
///
/// Compiled to a constant `false` without the `telemetry` feature; with
/// it, a single relaxed atomic load. Instrumentation sites branch on
/// this before touching any registry or clock.
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "telemetry") && ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry recording on or off at runtime.
///
/// A no-op (telemetry stays off) when the crate was built without the
/// `telemetry` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Starts a [`SpanTimer`] recording into `hist` — or an inert timer
/// when telemetry is disabled (no clock read, no record on drop).
#[must_use]
pub fn time(hist: &std::sync::Arc<Histogram>) -> SpanTimer {
    if enabled() {
        SpanTimer::start(std::sync::Arc::clone(hist))
    } else {
        SpanTimer::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_time_records_nothing() {
        let hist = std::sync::Arc::new(Histogram::new());
        drop(SpanTimer::disabled());
        {
            let _t = if false {
                SpanTimer::start(std::sync::Arc::clone(&hist))
            } else {
                SpanTimer::disabled()
            };
        }
        assert_eq!(hist.count(), 0);
    }
}
