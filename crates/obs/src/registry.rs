//! The named metric registry, snapshots, and their JSON / table
//! renderers.
//!
//! Lookup (`counter`/`gauge`/`histogram`) takes a short mutex on a
//! `BTreeMap` and hands back an `Arc` handle; recording through the
//! handle is lock-free. Instrumented code looks a handle up once per
//! solve/epoch/cell — never inside inner loops — so the mutex is cold.
//! Parallel workers may either record straight into the global
//! registry (atomics scale fine at per-cell granularity) or into a
//! private `Registry` that the coordinating thread [`Registry::merge`]s
//! after the join, which keeps the fan-out entirely contention-free.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A thread-safe collection of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs registry poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Returns (creating on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("obs registry poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Returns (creating on first use) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs registry poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Folds every metric of `other` into this registry: counters and
    /// histogram buckets add, gauges keep the maximum. Used to absorb
    /// per-worker registries after a `dmra-par` join.
    pub fn merge(&self, other: &Registry) {
        for (name, theirs) in other.counters.lock().expect("obs registry poisoned").iter() {
            self.counter(name).merge(theirs);
        }
        for (name, theirs) in other.gauges.lock().expect("obs registry poisoned").iter() {
            self.gauge(name).merge(theirs);
        }
        for (name, theirs) in other
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
        {
            self.histogram(name).merge(theirs);
        }
    }

    /// Resets every registered metric to its empty state (names are
    /// kept so existing handles stay live).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .values()
        {
            c.reset();
        }
        for g in self.gauges.lock().expect("obs registry poisoned").values() {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .values()
        {
            h.reset();
        }
    }

    /// Takes a point-in-time snapshot of every metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("obs registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("obs registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("obs registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// The process-wide registry used by workspace instrumentation.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time copy of a [`Registry`]'s metrics, sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// Formats an `f64` for JSON output (finite values only; anything else
/// becomes `null`, which keeps the document parseable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Looks up a counter's value by name (`None` if it was never
    /// touched). The vectors are sorted by name, so this is a binary
    /// search — cheap enough for report code that reads a handful of
    /// counters out of a large snapshot.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Looks up a gauge's value by name (`None` if it was never set).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Looks up a histogram's summary by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// The per-window difference `self - prev`: counters subtract by
    /// name (a counter absent from `prev` keeps its current value),
    /// gauges keep their current reading (they are levels, not flows),
    /// and histograms subtract bucket-wise with window percentiles
    /// recomputed from the bucket difference. This is the primitive the
    /// flight recorder's time series is built from — each per-epoch
    /// [`crate::Sample`] is `snapshot.delta(&previous_snapshot)`.
    #[must_use]
    pub fn delta(&self, prev: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(prev.counter(k).unwrap_or(0))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, s)| match prev.histogram(k) {
                    Some(p) => (k.clone(), s.delta(p)),
                    None => (k.clone(), *s),
                })
                .collect(),
        }
    }

    /// Folds `other` into this snapshot: counters and histogram buckets
    /// add, gauges keep the maximum. Mirrors [`Registry::merge`] but on
    /// immutable copies — the live `/metrics` endpoint uses this to
    /// combine per-shard registries at scrape time without touching the
    /// workers' hot path.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, theirs) in &other.counters {
            match self.counters.binary_search_by(|(k, _)| k.cmp(name)) {
                Ok(i) => self.counters[i].1 += theirs,
                Err(i) => self.counters.insert(i, (name.clone(), *theirs)),
            }
        }
        for (name, theirs) in &other.gauges {
            match self.gauges.binary_search_by(|(k, _)| k.cmp(name)) {
                Ok(i) => self.gauges[i].1 = self.gauges[i].1.max(*theirs),
                Err(i) => self.gauges.insert(i, (name.clone(), *theirs)),
            }
        }
        for (name, theirs) in &other.histograms {
            match self.histograms.binary_search_by(|(k, _)| k.cmp(name)) {
                Ok(i) => {
                    let mine = &mut self.histograms[i].1;
                    let count = mine.count + theirs.count;
                    let sum = mine.sum + theirs.sum;
                    let mut merged = HistogramSummary {
                        count,
                        sum,
                        min: match (mine.count, theirs.count) {
                            (0, _) => theirs.min,
                            (_, 0) => mine.min,
                            _ => mine.min.min(theirs.min),
                        },
                        max: mine.max.max(theirs.max),
                        mean: if count == 0 {
                            0.0
                        } else {
                            sum as f64 / count as f64
                        },
                        p50: 0,
                        p90: 0,
                        p99: 0,
                        buckets: std::array::from_fn(|b| mine.buckets[b] + theirs.buckets[b]),
                    };
                    merged.p50 = merged.percentile(0.50);
                    merged.p90 = merged.percentile(0.90);
                    merged.p99 = merged.percentile(0.99);
                    *mine = merged;
                }
                Err(i) => self.histograms.insert(i, (name.clone(), *theirs)),
            }
        }
    }

    /// Renders the snapshot as a JSON object (hand-rolled: the
    /// workspace's vendored serde stub cannot derive serialization).
    /// Schema: `{"counters": {name: u64, ...}, "gauges": {...},
    /// "histograms": {name: {count,sum,min,max,mean,p50,p90,p99}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        let histograms = self
            .histograms
            .iter()
            .map(|(k, s)| {
                format!(
                    "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    json_escape(k),
                    s.count,
                    s.sum,
                    s.min,
                    s.max,
                    json_f64(s.mean),
                    s.p50,
                    s.p90,
                    s.p99
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"counters\": {{{counters}}}, \"gauges\": {{{gauges}}}, \
             \"histograms\": {{{histograms}}}}}"
        )
    }

    /// Renders the snapshot as an aligned human-readable table.
    /// Histogram values are assumed to be nanoseconds and printed in
    /// adaptive units.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(0)
            .max(6);
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str(&format!("{:<width$}  {:>14}\n", "metric", "value"));
            for (k, v) in &self.counters {
                out.push_str(&format!("{k:<width$}  {v:>14}\n"));
            }
            for (k, v) in &self.gauges {
                out.push_str(&format!("{k:<width$}  {v:>14} (gauge)\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                "span", "count", "mean", "p50", "p99", "total"
            ));
            for (k, s) in &self.histograms {
                out.push_str(&format!(
                    "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                    k,
                    s.count,
                    fmt_ns(s.mean),
                    fmt_ns(s.p50 as f64),
                    fmt_ns(s.p99 as f64),
                    fmt_ns(s.sum as f64),
                ));
            }
        }
        out
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
#[must_use]
pub(crate) fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::new();
        reg.counter("x").add(2);
        reg.counter("x").add(3);
        assert_eq!(reg.counter("x").get(), 5);
    }

    #[test]
    fn snapshot_counter_lookup_finds_by_name() {
        let reg = Registry::new();
        reg.counter("b.hits").add(7);
        reg.counter("a.misses").add(2);
        reg.counter("c.evictions").add(1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.misses"), Some(2));
        assert_eq!(snap.counter("b.hits"), Some(7));
        assert_eq!(snap.counter("c.evictions"), Some(1));
        assert_eq!(snap.counter("never.touched"), None);
    }

    #[test]
    fn merge_folds_worker_registries() {
        let main = Registry::new();
        main.counter("cells").add(1);
        main.gauge("hw").set(5);
        main.histogram("ns").record(100);
        let worker = Registry::new();
        worker.counter("cells").add(9);
        worker.gauge("hw").set(3);
        worker.histogram("ns").record(300);
        main.merge(&worker);
        assert_eq!(main.counter("cells").get(), 10);
        assert_eq!(main.gauge("hw").get(), 5);
        let s = main.histogram("ns").summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 400);
    }

    #[test]
    fn reset_clears_values_but_keeps_handles() {
        let reg = Registry::new();
        let c = reg.counter("a");
        c.add(7);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.counter("a").get(), 1);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms() {
        let reg = Registry::new();
        reg.counter("sim.arrivals").add(5);
        reg.gauge("sim.in_service").set(3);
        reg.histogram("sim.solve_ns").record(100);
        let prev = reg.snapshot();
        reg.counter("sim.arrivals").add(7);
        reg.counter("cache.hits").add(2);
        reg.gauge("sim.in_service").set(9);
        reg.histogram("sim.solve_ns").record(4000);
        let d = reg.snapshot().delta(&prev);
        assert_eq!(d.counter("sim.arrivals"), Some(7));
        assert_eq!(d.counter("cache.hits"), Some(2), "new counter kept");
        assert_eq!(d.gauge("sim.in_service"), Some(9), "gauges stay levels");
        let h = d.histogram("sim.solve_ns").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 4000);
        assert!(h.p50 >= 4000, "window p50 = {}", h.p50);
    }

    #[test]
    fn snapshot_merge_matches_registry_merge() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("cells").add(1);
        b.counter("cells").add(9);
        b.counter("only_b").add(4);
        a.gauge("hw").set(5);
        b.gauge("hw").set(3);
        a.histogram("ns").record(100);
        b.histogram("ns").record(300);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        a.merge(&b);
        assert_eq!(merged, a.snapshot());
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let reg = Registry::new();
        reg.counter("dmra.rounds").add(4);
        reg.gauge("sweep.workers").set(8);
        reg.histogram("sim.epoch_ns").record(1500);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"dmra.rounds\": 4"));
        assert!(json.contains("\"sweep.workers\": 8"));
        assert!(json.contains("\"sim.epoch_ns\": {\"count\": 1"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn table_renders_all_sections() {
        let reg = Registry::new();
        reg.counter("c").add(1);
        reg.gauge("g").set(2);
        reg.histogram("h").record(2_500_000);
        let table = reg.snapshot().render_table();
        assert!(table.contains("metric"));
        assert!(table.contains("span"));
        assert!(table.contains("2.50ms"), "table was:\n{table}");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1500.0), "1.50us");
        assert_eq!(fmt_ns(2.5e6), "2.50ms");
        assert_eq!(fmt_ns(3.2e9), "3.20s");
    }
}
