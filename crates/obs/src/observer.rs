//! The per-epoch observation hook: a structured [`EpochRecord`] built
//! by an engine at the end of each epoch (or protocol round, or sweep
//! cell) and handed to whatever [`EpochObserver`]s are attached — the
//! JSONL flight recorder, the in-memory time series collector, or
//! both via [`FanoutObserver`].
//!
//! Records split their fields into two sections:
//!
//! * **det** — deterministic, engine-independent quantities (epoch
//!   index, arrivals, admissions, occupancy, outcome digest). The
//!   workspace's engine-equality contract guarantees these are
//!   bit-identical across the incremental, event and sharded engines
//!   and across thread counts, so their serialized projection can be
//!   byte-compared in tests.
//! * **aux** — timing and engine-specific quantities (wall-clock
//!   spans, cache hit deltas, per-shard loads) that legitimately vary
//!   run to run and are excluded from determinism checks.
//!
//! Engines hold an optional observer directly (`with_observer`); code
//! that cannot be reached through a constructor — the proto round
//! engine deep inside `run_decentralized` — falls back to the
//! process-wide slot installed by [`set_epoch_observer`].

use crate::registry::json_escape;
use std::sync::{Arc, RwLock};

/// A single record field value. `u64` keeps exact integers (digests do
/// not survive an `f64` round-trip); `f64` carries ratios and
/// occupancies and serializes via Rust's shortest-round-trip `Display`,
/// so bit-identical values produce byte-identical text. The sequence
/// variants carry small per-entity vectors (per-shard loads, per-cell
/// output rows) as JSON arrays.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An exact unsigned integer.
    U64(u64),
    /// A floating-point quantity.
    F64(f64),
    /// A vector of exact unsigned integers.
    U64Seq(Vec<u64>),
    /// A vector of floating-point quantities.
    F64Seq(Vec<f64>),
}

/// Appends `s` JSON-escaped, without allocating when no character
/// needs escaping — the common case: field keys and stream names are
/// static ASCII identifiers, and the recorder renders one record per
/// epoch on the engines' accounting path.
fn escape_into(s: &str, out: &mut String) {
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        out.push_str(s);
    } else {
        out.push_str(&json_escape(s));
    }
}

fn render_f64(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl FieldValue {
    fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => render_f64(*v, out),
            FieldValue::U64Seq(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
            FieldValue::F64Seq(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_f64(*v, out);
                }
                out.push(']');
            }
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<Vec<u64>> for FieldValue {
    fn from(v: Vec<u64>) -> Self {
        FieldValue::U64Seq(v)
    }
}

impl From<Vec<f64>> for FieldValue {
    fn from(v: Vec<f64>) -> Self {
        FieldValue::F64Seq(v)
    }
}

/// One structured observation: a record stream name (`"sim.epoch"`,
/// `"proto.round"`, `"sweep.cell"`), a monotone index within that
/// stream, and the det/aux field sections. Field order is insertion
/// order and is part of the serialized format, so producers of the
/// same stream must build fields in the same order.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Which record stream this belongs to.
    pub stream: &'static str,
    /// Monotone index within the stream (epoch, round or cell number).
    pub index: u64,
    /// Deterministic fields — byte-stable across engines and threads.
    pub det: Vec<(&'static str, FieldValue)>,
    /// Timing / engine-specific fields — excluded from determinism.
    pub aux: Vec<(&'static str, FieldValue)>,
}

impl EpochRecord {
    /// Starts an empty record for `stream` at `index`.
    #[must_use]
    pub fn new(stream: &'static str, index: u64) -> Self {
        Self {
            stream,
            index,
            det: Vec::new(),
            aux: Vec::new(),
        }
    }

    /// Appends a deterministic field (builder style).
    #[must_use]
    pub fn det(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.det.push((key, value.into()));
        self
    }

    /// Appends an auxiliary (timing / engine-specific) field.
    #[must_use]
    pub fn aux(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.aux.push((key, value.into()));
        self
    }

    fn render_section(fields: &[(&'static str, FieldValue)], out: &mut String) {
        out.push('{');
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_into(k, out);
            out.push_str("\": ");
            v.render(out);
        }
        out.push('}');
    }

    /// Serializes the record as one JSON line (no trailing newline).
    /// The `aux` object is always last, which is what lets
    /// [`det_projection`] strip it with plain string handling.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(192);
        self.render_into(&mut out);
        out
    }

    /// Serializes the record into `out` (same format as
    /// [`Self::to_json_line`], no trailing newline). The recorder
    /// serializes whole batches through one reused buffer with this.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"schema\": \"dmra-flight/1\", \"stream\": \"");
        escape_into(self.stream, out);
        out.push_str("\", \"index\": ");
        let _ = write!(out, "{}", self.index);
        out.push_str(", \"det\": ");
        Self::render_section(&self.det, out);
        out.push_str(", \"aux\": ");
        Self::render_section(&self.aux, out);
        out.push('}');
    }
}

/// Reduces a flight-recorder JSONL document to its deterministic
/// projection: every line keeps `schema`, `stream`, `index` and `det`
/// and drops the `aux` object. Byte-comparing two projections is the
/// workspace's recorder-determinism check.
#[must_use]
pub fn det_projection(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        if line.is_empty() {
            continue;
        }
        match line.rfind(", \"aux\": ") {
            Some(pos) => {
                out.push_str(&line[..pos]);
                out.push('}');
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// A sink for [`EpochRecord`]s. Implementations must be cheap and
/// non-blocking-ish: engines call `on_record` once per epoch on the
/// simulation thread. `&self` because the sharded engines may invoke
/// observers from coordinator context while workers are parked;
/// implementors serialize internally.
pub trait EpochObserver: Send + Sync {
    /// Receives one record. Implementations must not panic.
    fn on_record(&self, record: &EpochRecord);
}

/// Broadcasts each record to several observers in order — e.g. a
/// [`crate::Recorder`] and a [`crate::TimeSeriesCollector`] at once.
pub struct FanoutObserver {
    sinks: Vec<Arc<dyn EpochObserver>>,
}

impl FanoutObserver {
    /// Builds a fanout over `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn EpochObserver>>) -> Self {
        Self { sinks }
    }
}

impl EpochObserver for FanoutObserver {
    fn on_record(&self, record: &EpochRecord) {
        for s in &self.sinks {
            s.on_record(record);
        }
    }
}

/// Process-wide observer slot (`None` by default).
static OBSERVER: RwLock<Option<Arc<dyn EpochObserver>>> = RwLock::new(None);

/// Installs (or clears, with `None`) the process-wide epoch observer.
/// Engines consult their own `with_observer` attachment first and fall
/// back to this slot, which is how the CLI attaches the flight
/// recorder to everything — including the proto round engine — with a
/// single call. No-op without the `telemetry` feature.
pub fn set_epoch_observer(observer: Option<Arc<dyn EpochObserver>>) {
    if cfg!(feature = "telemetry") {
        *OBSERVER.write().expect("observer slot poisoned") = observer;
    }
}

/// The currently installed process-wide observer, if any. Always
/// `None` without the `telemetry` feature, so instrumentation guarded
/// by `if let Some(..)` compiles out.
#[must_use]
pub fn epoch_observer() -> Option<Arc<dyn EpochObserver>> {
    if cfg!(feature = "telemetry") {
        OBSERVER.read().expect("observer slot poisoned").clone()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn record_renders_det_before_aux() {
        let r = EpochRecord::new("sim.epoch", 3)
            .det("arrivals", 7u64)
            .det("occupancy", 0.25)
            .aux("wall_ns", 1234u64);
        let line = r.to_json_line();
        assert_eq!(
            line,
            "{\"schema\": \"dmra-flight/1\", \"stream\": \"sim.epoch\", \"index\": 3, \
             \"det\": {\"arrivals\": 7, \"occupancy\": 0.25}, \"aux\": {\"wall_ns\": 1234}}"
        );
    }

    #[test]
    fn sequence_fields_render_as_arrays() {
        let r = EpochRecord::new("sim.epoch", 0)
            .aux("shard_load", vec![3u64, 0, 5])
            .aux("values", vec![1.5f64, 2.0]);
        let line = r.to_json_line();
        assert!(line.contains("\"shard_load\": [3, 0, 5]"), "{line}");
        assert!(line.contains("\"values\": [1.5, 2]"), "{line}");
    }

    #[test]
    fn det_projection_strips_only_aux() {
        let a = EpochRecord::new("sim.epoch", 0)
            .det("arrivals", 1u64)
            .aux("wall_ns", 10u64);
        let b = EpochRecord::new("sim.epoch", 0)
            .det("arrivals", 1u64)
            .aux("wall_ns", 99_999u64);
        let doc_a = format!("{}\n", a.to_json_line());
        let doc_b = format!("{}\n", b.to_json_line());
        assert_ne!(doc_a, doc_b);
        assert_eq!(det_projection(&doc_a), det_projection(&doc_b));
        assert!(det_projection(&doc_a).contains("\"arrivals\": 1"));
        assert!(!det_projection(&doc_a).contains("wall_ns"));
    }

    #[test]
    fn fanout_delivers_in_order() {
        struct Tally(Mutex<Vec<u64>>);
        impl EpochObserver for Tally {
            fn on_record(&self, r: &EpochRecord) {
                self.0.lock().unwrap().push(r.index);
            }
        }
        let a = Arc::new(Tally(Mutex::new(Vec::new())));
        let b = Arc::new(Tally(Mutex::new(Vec::new())));
        let fan = FanoutObserver::new(vec![
            Arc::clone(&a) as Arc<dyn EpochObserver>,
            Arc::clone(&b) as Arc<dyn EpochObserver>,
        ]);
        fan.on_record(&EpochRecord::new("s", 5));
        fan.on_record(&EpochRecord::new("s", 6));
        assert_eq!(*a.0.lock().unwrap(), vec![5, 6]);
        assert_eq!(*b.0.lock().unwrap(), vec![5, 6]);
    }
}
