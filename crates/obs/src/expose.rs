//! Prometheus text exposition: render a [`Snapshot`] in the
//! `text/plain; version=0.0.4` format and (optionally) serve it from a
//! std-only `TcpListener` (`--metrics-addr 127.0.0.1:PORT`). Zero
//! dependencies — the handler speaks just enough HTTP/1.0 for a
//! scraper or `curl`, one request per connection.
//!
//! A scrape renders the *live merged* view: the global registry plus
//! every registered scrape source. The sharded engines register their
//! per-worker registries for the duration of a run
//! ([`register_scrape_sources`] returns an RAII guard), so `/metrics`
//! reflects shard-local counters mid-run even though those registries
//! are only folded into the global one after the final epoch.

use crate::metrics::HISTOGRAM_BUCKETS;
use crate::registry::{global, Registry, Snapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Maps a registry metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other foreign characters
/// become underscores and everything gains a `dmra_` prefix.
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("dmra_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a HELP text per the exposition format (backslash and
/// newline).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders `snapshot` in the Prometheus text exposition format.
/// Counters and gauges map directly; histograms emit cumulative
/// `_bucket{le="..."}` series (bucket *i*'s upper bound is `2^i − 1`,
/// bucket 0 is `{0}`) plus `_sum` and `_count`. Only occupied buckets
/// and the mandatory `+Inf` bound are emitted — 48 mostly-empty
/// power-of-two buckets per histogram would dwarf the payload.
#[must_use]
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, value) in &snapshot.counters {
        let p = sanitize_metric_name(name);
        out.push_str(&format!(
            "# HELP {p} {}\n# TYPE {p} counter\n{p} {value}\n",
            escape_help(name)
        ));
    }
    for (name, value) in &snapshot.gauges {
        let p = sanitize_metric_name(name);
        out.push_str(&format!(
            "# HELP {p} {}\n# TYPE {p} gauge\n{p} {value}\n",
            escape_help(name)
        ));
    }
    for (name, s) in &snapshot.histograms {
        let p = sanitize_metric_name(name);
        out.push_str(&format!(
            "# HELP {p} {} (nanoseconds)\n# TYPE {p} histogram\n",
            escape_help(name)
        ));
        let mut cumulative = 0u64;
        for (i, &b) in s.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS) {
            if b == 0 {
                continue;
            }
            cumulative += b;
            let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
            out.push_str(&format!("{p}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", s.count));
        out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", s.sum, s.count));
    }
    out
}

/// Live scrape sources: weak handles to per-worker registries that
/// should be merged into scrapes while a sharded run is in flight.
static SOURCES: Mutex<Vec<(u64, Weak<Registry>)>> = Mutex::new(Vec::new());
static NEXT_SOURCE_ID: AtomicU64 = AtomicU64::new(0);

/// Unregisters its registries when dropped. Engines drop (or
/// explicitly `drop(guard)`) *before* folding worker registries into
/// the global one, so a scrape never double-counts.
#[derive(Debug, Default)]
pub struct ScrapeGuard {
    ids: Vec<u64>,
}

impl Drop for ScrapeGuard {
    fn drop(&mut self) {
        let mut sources = SOURCES.lock().expect("scrape sources poisoned");
        sources.retain(|(id, _)| !self.ids.contains(id));
    }
}

/// Registers `registries` as live scrape sources until the returned
/// guard is dropped. Holds weak references only, so a leaked guard
/// cannot keep a worker registry alive.
#[must_use]
pub fn register_scrape_sources(registries: &[Arc<Registry>]) -> ScrapeGuard {
    let mut sources = SOURCES.lock().expect("scrape sources poisoned");
    let mut ids = Vec::with_capacity(registries.len());
    for r in registries {
        let id = NEXT_SOURCE_ID.fetch_add(1, Ordering::Relaxed);
        sources.push((id, Arc::downgrade(r)));
        ids.push(id);
    }
    ScrapeGuard { ids }
}

/// The merged live view served by `/metrics`: the global registry plus
/// every currently registered scrape source (dead sources are pruned).
#[must_use]
pub fn scrape_snapshot() -> Snapshot {
    let mut snap = global().snapshot();
    let mut sources = SOURCES.lock().expect("scrape sources poisoned");
    sources.retain(|(_, w)| {
        if let Some(r) = w.upgrade() {
            snap.merge(&r.snapshot());
            true
        } else {
            false
        }
    });
    snap
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(2000)));
    // Drain the request line + headers (best effort — the response is
    // the same for every path, there is only one resource here).
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = render_prometheus(&scrape_snapshot());
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// A minimal background `/metrics` HTTP endpoint.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving scrapes on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be
    /// bound.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("dmra-metrics".to_owned())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            handle_connection(stream);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(Self {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn snapshot_with(f: impl Fn(&Registry)) -> Snapshot {
        let reg = Registry::new();
        f(&reg);
        reg.snapshot()
    }

    #[test]
    fn sanitize_prefixes_and_replaces_dots() {
        assert_eq!(sanitize_metric_name("sim.epoch_ns"), "dmra_sim_epoch_ns");
        assert_eq!(
            sanitize_metric_name("sweep.worker.0.cells"),
            "dmra_sweep_worker_0_cells"
        );
        assert_eq!(sanitize_metric_name("weird name"), "dmra_weird_name");
    }

    #[test]
    fn counters_and_gauges_have_help_and_type() {
        let text = render_prometheus(&snapshot_with(|r| {
            r.counter("sim.arrivals").add(12);
            r.gauge("sweep.workers_used").set(4);
        }));
        assert!(text.contains("# HELP dmra_sim_arrivals sim.arrivals\n"));
        assert!(text.contains("# TYPE dmra_sim_arrivals counter\n"));
        assert!(text.contains("dmra_sim_arrivals 12\n"));
        assert!(text.contains("# TYPE dmra_sweep_workers_used gauge\n"));
        assert!(text.contains("dmra_sweep_workers_used 4\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = render_prometheus(&snapshot_with(|r| {
            let h = r.histogram("sim.solve_ns");
            h.record(3); // bucket le=3
            h.record(3);
            h.record(100); // bucket le=127
        }));
        assert!(text.contains("# TYPE dmra_sim_solve_ns histogram\n"));
        assert!(text.contains("dmra_sim_solve_ns_bucket{le=\"3\"} 2\n"));
        assert!(
            text.contains("dmra_sim_solve_ns_bucket{le=\"127\"} 3\n"),
            "buckets must be cumulative:\n{text}"
        );
        assert!(text.contains("dmra_sim_solve_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dmra_sim_solve_ns_sum 106\n"));
        assert!(text.contains("dmra_sim_solve_ns_count 3\n"));
        // +Inf must come last among buckets and match _count.
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("dmra_sim_solve_ns_bucket"))
            .collect();
        assert!(bucket_lines.last().unwrap().contains("+Inf"));
        let counts: Vec<u64> = bucket_lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "non-monotone");
    }

    #[test]
    fn help_escapes_newlines_and_backslashes() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    fn empty_histogram_renders_inf_bucket_only() {
        let summary = Histogram::new().summary();
        let snap = Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: vec![("idle.ns".to_owned(), summary)],
        };
        let text = render_prometheus(&snap);
        assert!(text.contains("dmra_idle_ns_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("dmra_idle_ns_count 0\n"));
    }

    #[test]
    fn scrape_sources_merge_and_unregister() {
        let worker = Arc::new(Registry::new());
        worker.counter("test.expose.shard_rows").add(41);
        let before = scrape_snapshot().counter("test.expose.shard_rows");
        {
            let _guard = register_scrape_sources(&[Arc::clone(&worker)]);
            let live = scrape_snapshot().counter("test.expose.shard_rows");
            assert_eq!(
                live.unwrap_or(0),
                before.unwrap_or(0) + 41,
                "live scrape merges the worker registry"
            );
        }
        let after = scrape_snapshot().counter("test.expose.shard_rows");
        assert_eq!(after, before, "guard drop unregisters the source");
    }

    #[test]
    fn metrics_server_serves_valid_exposition() {
        global().counter("test.expose.served").add(7);
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("dmra_test_expose_served 7\n"));
        server.shutdown();
    }
}
