//! The JSONL flight recorder: an [`EpochObserver`] that appends one
//! serialized [`EpochRecord`] per *sampled* epoch to a writer
//! (`--record out.jsonl`). Sampling is decimation by record index
//! (`--sample-every N` keeps indices `0, N, 2N, …` of every stream),
//! applied here rather than in the engines so all observers see the
//! same record stream and decimation cannot perturb engine behavior.
//!
//! Sampled records are *buffered as structured values* and serialized
//! in batches of [`BATCH`]: one cold per-epoch `to_json_line` between
//! two engine epochs costs an order of magnitude more than the same
//! serialization run back-to-back with warm caches, and batching is
//! what keeps `--record` inside the workspace's ≤2% telemetry
//! overhead budget (`figures -- obs_overhead`). The writer side is a
//! `Mutex<BufWriter>` — one short lock per sampled epoch — and both
//! the pending batch and the byte buffer are flushed on `finish` or
//! drop. Each line is self-describing (`"schema": "dmra-flight/1"`)
//! and keeps deterministic fields in a `det` object separate from the
//! timing-bearing `aux` object, so tests can byte-compare the
//! [`crate::det_projection`] of two recordings.

use crate::observer::{EpochObserver, EpochRecord};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A shared in-memory byte sink for recorder tests: cloning shares the
/// underlying buffer, so a test can hand one clone to the recorder and
/// read the written bytes back from the other.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// Creates an empty shared buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the bytes written so far into a `String` (UTF-8 lossy,
    /// though the recorder only ever writes ASCII-safe JSON).
    #[must_use]
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("shared buf poisoned")).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Records buffered before one batch serialization pass.
const BATCH: usize = 64;

struct RecorderInner {
    out: Box<dyn Write + Send>,
    pending: Vec<EpochRecord>,
    line_buf: String,
    lines: u64,
    error: bool,
}

impl RecorderInner {
    /// Serializes and writes every pending record through the reused
    /// line buffer. Sets (and sticks) the error flag on write failure.
    fn flush_pending(&mut self) {
        for record in self.pending.drain(..) {
            if self.error {
                continue;
            }
            self.line_buf.clear();
            record.render_into(&mut self.line_buf);
            self.line_buf.push('\n');
            if self.out.write_all(self.line_buf.as_bytes()).is_err() {
                // Disk-full mid-run must not kill the simulation; the
                // CLI reports the failure when `finish()` returns false.
                self.error = true;
            } else {
                self.lines += 1;
            }
        }
    }
}

impl Drop for RecorderInner {
    fn drop(&mut self) {
        self.flush_pending();
    }
}

/// The JSONL flight recorder. See the module docs.
pub struct Recorder {
    inner: Mutex<RecorderInner>,
    sample_every: u64,
}

impl Recorder {
    /// Opens (truncating) `path` and records every `sample_every`-th
    /// record of each stream into it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: &Path, sample_every: u64) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(
            Box::new(BufWriter::new(file)),
            sample_every,
        ))
    }

    /// Records into an arbitrary writer (tests use a [`SharedBuf`]).
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>, sample_every: u64) -> Self {
        Self {
            inner: Mutex::new(RecorderInner {
                out,
                pending: Vec::with_capacity(BATCH),
                line_buf: String::with_capacity(256),
                lines: 0,
                error: false,
            }),
            sample_every: sample_every.max(1),
        }
    }

    /// The decimation interval (≥ 1).
    #[must_use]
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Number of lines written so far (serializes any pending batch
    /// first, so the count covers every record received).
    ///
    /// # Panics
    ///
    /// Panics if the recorder mutex was poisoned.
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.flush_pending();
        inner.lines
    }

    /// Flushes buffered lines to the underlying writer. Returns `true`
    /// if every write so far succeeded.
    ///
    /// # Panics
    ///
    /// Panics if the recorder mutex was poisoned.
    pub fn finish(&self) -> bool {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.flush_pending();
        if inner.out.flush().is_err() {
            inner.error = true;
        }
        !inner.error
    }
}

impl EpochObserver for Recorder {
    fn on_record(&self, record: &EpochRecord) {
        if !record.index.is_multiple_of(self.sample_every) {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        if inner.error {
            return;
        }
        inner.pending.push(record.clone());
        if inner.pending.len() >= BATCH {
            inner.flush_pending();
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            inner.flush_pending();
            let _ = inner.out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::det_projection;

    fn record(i: u64) -> EpochRecord {
        EpochRecord::new("sim.epoch", i)
            .det("arrivals", i + 1)
            .aux("wall_ns", 17u64 * i)
    }

    #[test]
    fn writes_one_line_per_record() {
        let buf = SharedBuf::new();
        let rec = Recorder::to_writer(Box::new(buf.clone()), 1);
        for i in 0..4 {
            rec.on_record(&record(i));
        }
        assert!(rec.finish());
        let text = buf.contents();
        assert_eq!(text.lines().count(), 4);
        assert_eq!(rec.lines_written(), 4);
        assert!(text.lines().all(|l| l.contains("\"dmra-flight/1\"")));
    }

    #[test]
    fn decimation_keeps_every_nth_index() {
        let every = SharedBuf::new();
        let third = SharedBuf::new();
        let rec1 = Recorder::to_writer(Box::new(every.clone()), 1);
        let rec3 = Recorder::to_writer(Box::new(third.clone()), 3);
        for i in 0..10 {
            let r = record(i);
            rec1.on_record(&r);
            rec3.on_record(&r);
        }
        rec1.finish();
        rec3.finish();
        let expected: Vec<String> = every
            .contents()
            .lines()
            .step_by(3)
            .map(str::to_owned)
            .collect();
        let kept: Vec<String> = third.contents().lines().map(str::to_owned).collect();
        assert_eq!(kept, expected, "every-3rd decimation is a line subset");
        assert_eq!(kept.len(), 4, "indices 0, 3, 6, 9");
    }

    #[test]
    fn sample_every_zero_is_clamped() {
        let rec = Recorder::to_writer(Box::new(SharedBuf::new()), 0);
        assert_eq!(rec.sample_every(), 1);
    }

    #[test]
    fn det_projection_of_recording_drops_aux() {
        let buf = SharedBuf::new();
        let rec = Recorder::to_writer(Box::new(buf.clone()), 1);
        rec.on_record(&record(0));
        rec.finish();
        let proj = det_projection(&buf.contents());
        assert!(proj.contains("\"arrivals\": 1"));
        assert!(!proj.contains("wall_ns"));
    }
}
