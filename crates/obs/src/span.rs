//! RAII wall-clock span timers.

use crate::metrics::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Records the wall-clock time between construction and drop into a
/// [`Histogram`], in nanoseconds.
///
/// Construct through [`crate::time`], which returns an inert timer
/// (no clock read at all) when telemetry is disabled.
#[derive(Debug)]
pub struct SpanTimer {
    inner: Option<(Arc<Histogram>, Instant)>,
}

impl SpanTimer {
    /// Starts a live timer recording into `hist` on drop.
    #[must_use]
    pub fn start(hist: Arc<Histogram>) -> Self {
        Self {
            inner: Some((hist, Instant::now())),
        }
    }

    /// An inert timer: never reads the clock, records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Stops the timer and returns the elapsed nanoseconds (recording
    /// into the histogram as usual), or `None` if the timer was inert.
    pub fn stop(mut self) -> Option<u64> {
        let (hist, started) = self.inner.take()?;
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        hist.record(ns);
        Some(ns)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((hist, started)) = self.inner.take() {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_into_histogram() {
        let hist = Arc::new(Histogram::new());
        {
            let _t = SpanTimer::start(Arc::clone(&hist));
        }
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn stop_returns_elapsed_and_records() {
        let hist = Arc::new(Histogram::new());
        let t = SpanTimer::start(Arc::clone(&hist));
        let ns = t.stop();
        assert!(ns.is_some());
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn disabled_timer_is_inert() {
        let t = SpanTimer::disabled();
        assert_eq!(t.stop(), None);
    }
}
