//! A fixed-capacity ring buffer of per-epoch metric windows.
//!
//! Each [`Sample`] is the difference between consecutive registry
//! snapshots ([`crate::Snapshot::delta`]): a *flow* view (what
//! happened this window) of metrics that are stored cumulatively.
//! Deltas rather than cumulative values because (a) rates fall out of
//! a window without remembering the previous scrape, and (b) windowed
//! histogram percentiles — "p99 solve time over the last epoch", the
//! number regressions actually show up in — cannot be recovered from
//! cumulative buckets after the fact.
//!
//! [`TimeSeriesCollector`] is the [`EpochObserver`] adapter: on every
//! sampled record it snapshots the global registry, computes the delta
//! against the previous snapshot, and pushes a sample into a bounded
//! [`TimeSeries`] (old samples fall off the front; the drop count is
//! kept so consumers know the window is truncated).

use crate::observer::{EpochObserver, EpochRecord};
use crate::registry::{global, Snapshot};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One per-window sample: the record index it was taken at and the
/// metric flows observed since the previous sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Index of the record (epoch / round / cell) that closed the
    /// window.
    pub index: u64,
    /// Per-window metric difference (see [`crate::Snapshot::delta`]).
    pub delta: Snapshot,
}

impl Sample {
    /// Events per second: `counter`'s window delta divided by the
    /// window's wall time, taken from the sum of `ns_hist`'s window
    /// observations. `None` when the window recorded no time.
    #[must_use]
    pub fn rate_per_sec(&self, counter: &str, ns_hist: &str) -> Option<f64> {
        let events = self.delta.counter(counter)?;
        let ns = self.delta.histogram(ns_hist)?.sum;
        if ns == 0 {
            return None;
        }
        Some(events as f64 / (ns as f64 / 1e9))
    }

    /// `hits / (hits + misses)` over the window (`None` when neither
    /// counter moved).
    #[must_use]
    pub fn hit_rate(&self, hits: &str, misses: &str) -> Option<f64> {
        let h = self.delta.counter(hits).unwrap_or(0);
        let m = self.delta.counter(misses).unwrap_or(0);
        if h + m == 0 {
            return None;
        }
        Some(h as f64 / (h + m) as f64)
    }

    /// The `q`-quantile of `hist`'s observations within the window
    /// (bucket upper bound; `None` if the histogram is absent or the
    /// window is empty).
    #[must_use]
    pub fn percentile(&self, hist: &str, q: f64) -> Option<u64> {
        let s = self.delta.histogram(hist)?;
        if s.count == 0 {
            return None;
        }
        Some(s.percentile(q))
    }
}

/// A bounded ring buffer of [`Sample`]s.
#[derive(Debug, Default)]
pub struct TimeSeries {
    samples: VecDeque<Sample>,
    capacity: usize,
    dropped: u64,
}

impl TimeSeries {
    /// Creates a series that retains at most `capacity` samples
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            samples: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted so far due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained samples oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// The most recent sample, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// Mean over retained samples of a per-sample statistic (skipping
    /// samples where it is undefined). Used for end-of-run digests
    /// like "mean arrivals/s across the flight".
    pub fn mean_of(&self, f: impl Fn(&Sample) -> Option<f64>) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for s in &self.samples {
            if let Some(v) = f(s) {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

struct CollectorInner {
    prev: Option<Snapshot>,
    series: TimeSeries,
}

/// [`EpochObserver`] adapter that materializes a [`TimeSeries`] from
/// the global registry, one delta per sampled record.
pub struct TimeSeriesCollector {
    inner: Mutex<CollectorInner>,
    sample_every: u64,
}

impl TimeSeriesCollector {
    /// Collects every `sample_every`-th record into a series retaining
    /// `capacity` windows.
    #[must_use]
    pub fn new(capacity: usize, sample_every: u64) -> Self {
        Self {
            inner: Mutex::new(CollectorInner {
                prev: None,
                series: TimeSeries::new(capacity),
            }),
            sample_every: sample_every.max(1),
        }
    }

    /// Takes the collected series, leaving an empty one behind.
    ///
    /// # Panics
    ///
    /// Panics if the collector mutex was poisoned.
    #[must_use]
    pub fn take_series(&self) -> TimeSeries {
        let mut inner = self.inner.lock().expect("collector poisoned");
        let capacity = inner.series.capacity;
        std::mem::replace(&mut inner.series, TimeSeries::new(capacity))
    }
}

impl EpochObserver for TimeSeriesCollector {
    fn on_record(&self, record: &EpochRecord) {
        if !record.index.is_multiple_of(self.sample_every) {
            return;
        }
        let snap = global().snapshot();
        let mut inner = self.inner.lock().expect("collector poisoned");
        let delta = match &inner.prev {
            Some(prev) => snap.delta(prev),
            None => snap.clone(),
        };
        inner.series.push(Sample {
            index: record.index,
            delta,
        });
        inner.prev = Some(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_from(reg: &Registry, prev: &Snapshot, index: u64) -> (Sample, Snapshot) {
        let snap = reg.snapshot();
        (
            Sample {
                index,
                delta: snap.delta(prev),
            },
            snap,
        )
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ts = TimeSeries::new(2);
        let reg = Registry::new();
        let mut prev = reg.snapshot();
        for i in 0..5 {
            reg.counter("sim.arrivals").add(i + 1);
            let (s, snap) = sample_from(&reg, &prev, i);
            prev = snap;
            ts.push(s);
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dropped(), 3);
        let indices: Vec<u64> = ts.iter().map(|s| s.index).collect();
        assert_eq!(indices, vec![3, 4]);
        assert_eq!(ts.latest().unwrap().delta.counter("sim.arrivals"), Some(5));
    }

    #[test]
    fn derived_rates_use_window_deltas() {
        let reg = Registry::new();
        reg.counter("sim.arrivals").add(100);
        reg.counter("cache.hits").add(1);
        reg.counter("cache.misses").add(1);
        reg.histogram("sim.epoch_ns").record(1_000_000_000);
        let prev = reg.snapshot();
        reg.counter("sim.arrivals").add(50);
        reg.counter("cache.hits").add(3);
        reg.counter("cache.misses").add(1);
        reg.histogram("sim.epoch_ns").record(2_000_000_000);
        reg.histogram("sim.solve_ns").record(4096);
        let (s, _) = sample_from(&reg, &prev, 1);
        let rate = s.rate_per_sec("sim.arrivals", "sim.epoch_ns").unwrap();
        assert!((rate - 25.0).abs() < 1e-9, "rate = {rate}");
        let hit = s.hit_rate("cache.hits", "cache.misses").unwrap();
        assert!((hit - 0.75).abs() < 1e-9, "hit rate = {hit}");
        assert!(s.percentile("sim.solve_ns", 0.99).unwrap() >= 4096);
        assert_eq!(s.percentile("absent", 0.5), None);
    }

    #[test]
    fn mean_of_skips_undefined_windows() {
        let mut ts = TimeSeries::new(8);
        let reg = Registry::new();
        let mut prev = reg.snapshot();
        for i in 0..3 {
            if i != 1 {
                reg.counter("n").add(4);
                reg.histogram("ns").record(1_000_000_000);
            }
            let (s, snap) = sample_from(&reg, &prev, i);
            prev = snap;
            ts.push(s);
        }
        let mean = ts.mean_of(|s| s.rate_per_sec("n", "ns")).unwrap();
        assert!((mean - 4.0).abs() < 1e-9, "mean = {mean}");
    }
}
