//! End-to-end tests of the compiled `dmra` binary.

use std::process::Command;

fn dmra(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dmra"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = dmra(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("protocol"));
}

#[test]
fn run_command_end_to_end() {
    let out = dmra(&["run", "--ues", "80", "--algo", "dmra", "--seed", "1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DMRA"));
    assert!(text.contains("25 BSs"));
}

#[test]
fn unknown_command_exits_nonzero_with_message() {
    let out = dmra(&["explode"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn bad_option_value_exits_nonzero() {
    let out = dmra(&["run", "--ues", "many"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse"));
}

#[test]
fn run_is_reproducible_across_invocations() {
    let a = dmra(&["run", "--ues", "60", "--seed", "9"]);
    let b = dmra(&["run", "--ues", "60", "--seed", "9"]);
    assert_eq!(a.stdout, b.stdout);
}
