//! End-to-end exercise of `--candidate-batch approx`.
//!
//! This lives in its own integration-test binary (hence its own process)
//! because the flag sets the *process-global* default mode of the batched
//! link kernel — flipping it inside the shared unit-test process would
//! race every other test that compares two runs bit for bit.

use dmra_cli::{dispatch, ParsedArgs};

fn run(args: &[&str]) -> String {
    dispatch(&ParsedArgs::parse(args.iter().copied()).unwrap()).unwrap()
}

#[test]
fn approx_kernel_produces_a_close_but_complete_report() {
    // Approx substitutes polynomial transcendentals (~1e-10 relative
    // error); on paper-default scenarios the rounded CLI report almost
    // always coincides with exact, but the contract here is only that the
    // run succeeds and reports every algorithm.
    let approx = run(&[
        "run",
        "--ues",
        "150",
        "--candidate-batch",
        "approx",
        "--algo",
        "all",
    ]);
    for name in ["DMRA", "NonCo", "GreedyProfit"] {
        assert!(approx.contains(name), "approx report missing {name}");
    }
    // The sticky mobility loop drives the cached/batched epoch path under
    // approx as well. (No cross-engine equality here: the scratch engine
    // uses the scalar evaluator, whose exact transcendentals may round
    // differently from the approx kernel.)
    let mobility = run(&[
        "mobility",
        "--candidate-batch",
        "approx",
        "--ues",
        "80",
        "--speed",
        "10",
        "--epochs",
        "5",
        "--policy",
        "sticky",
    ]);
    assert!(mobility.contains("handover rate"));
}
